#!/usr/bin/env python3
"""Reproduce a slice of Fig. 3: outcome rates for uncore soft errors.

Runs an injection campaign for each uncore component over a small
benchmark subset and prints the five-category outcome table, including
95% confidence intervals for the headline erroneous-outcome rate.

At paper scale this would be >40,000 injections per cell (footnote 2);
adjust ``--n`` upward for tighter intervals.
"""

import argparse

from repro.analysis.figures import fig3_outcome_rates
from repro.system.machine import MachineConfig
from repro.system.outcome import OUTCOME_ORDER
from repro.utils.render import render_table
from repro.utils.stats import required_samples


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=60, help="injections per cell")
    parser.add_argument(
        "--benchmarks", nargs="+", default=["fft", "radi", "flui"],
    )
    parser.add_argument(
        "--components", nargs="+", default=["l2c", "mcu", "ccx"],
    )
    args = parser.parse_args()

    print(
        "campaign sizing note: observing a 1% rate to +-0.1% at 95% "
        f"confidence needs {required_samples(0.01, 0.001):,} samples "
        "(paper footnote 2); this demo uses "
        f"{args.n} per cell.\n"
    )
    config = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)
    for component in args.components:
        result = fig3_outcome_rates(
            component,
            args.benchmarks,
            n_injections=args.n,
            machine_config=config,
        )
        headers = ["benchmark"] + [o.value for o in OUTCOME_ORDER] + ["erroneous (95% CI)"]
        rows = []
        for cell in result.cells:
            row = cell.result.table.row()
            row.append(str(cell.result.table.erroneous))
            rows.append(row)
        print(render_table(headers, rows, title=f"Fig. 3 panel: {component.upper()}"))
        print(f"mean erroneous rate: {result.mean_erroneous():.2%}\n")


if __name__ == "__main__":
    main()
