#!/usr/bin/env python3
"""Reproduce a slice of Fig. 3: outcome rates for uncore soft errors.

Expands a component x benchmark grid through the unified experiment API
and runs it on a pluggable executor -- pass ``--workers 4`` to fan the
independent campaign cells out over a process pool.  Prints the
five-category outcome table per component, including 95% confidence
intervals for the headline erroneous-outcome rate.

At paper scale this would be >40,000 injections per cell (footnote 2);
adjust ``--n`` upward for tighter intervals.
"""

import argparse

from repro.api import Grid, make_executor
from repro.system.machine import MachineConfig
from repro.system.outcome import OUTCOME_ORDER
from repro.utils.render import render_table
from repro.utils.stats import required_samples


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=60, help="injections per cell")
    parser.add_argument(
        "--benchmarks", nargs="+", default=["fft", "radi", "flui"],
    )
    parser.add_argument(
        "--components", nargs="+", default=["l2c", "mcu", "ccx"],
    )
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size; 1 runs serially")
    args = parser.parse_args()

    print(
        "campaign sizing note: observing a 1% rate to +-0.1% at 95% "
        f"confidence needs {required_samples(0.01, 0.001):,} samples "
        "(paper footnote 2); this demo uses "
        f"{args.n} per cell.\n"
    )
    grid = Grid(
        components=tuple(args.components),
        benchmarks=tuple(args.benchmarks),
        n=args.n,
        machine=MachineConfig(
            cores=4, threads_per_core=2, l2_banks=8, l2_sets=16
        ),
        scale=1 / 100_000,
    )
    results = make_executor(workers=args.workers).run(grid.specs())

    for component in args.components:
        cells = [r for r in results if r.spec.component == component]
        if not cells:
            print(f"{component.upper()}: no valid campaign cells "
                  f"(PCIe needs benchmarks with an input file)\n")
            continue
        headers = (
            ["benchmark"]
            + [o.value for o in OUTCOME_ORDER]
            + ["erroneous (95% CI)"]
        )
        rows = []
        for cell in cells:
            table = cell.outcome_table()
            rows.append(table.row() + [str(table.erroneous)])
        print(render_table(headers, rows, title=f"Fig. 3 panel: {component.upper()}"))
        mean = sum(c.erroneous.rate for c in cells) / len(cells)
        print(f"mean erroneous rate: {mean:.2%}\n")


if __name__ == "__main__":
    main()
