#!/usr/bin/env python3
"""Checkpoint-recovery challenge analysis (paper Sec. 5, Figs. 8 and 9).

Runs L2C and MCU injection campaigns, collects error-propagation
latencies and required rollback distances, and prints the two CDFs that
show why core-oriented checkpoint recovery struggles with uncore errors:
propagation to the cores can take a large fraction of the run, and
recovering corrupted memory can require rolling back almost to the
beginning.
"""

import argparse

from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import MixedModePlatform
from repro.recovery.checkpoint import IncrementalCheckpointModel
from repro.recovery.propagation import PropagationAnalysis
from repro.recovery.rollback import RollbackAnalysis
from repro.system.machine import MachineConfig
from repro.utils.render import render_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=150, help="injections per component")
    parser.add_argument("--benchmark", default="flui")
    args = parser.parse_args()

    config = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)
    platform = MixedModePlatform(
        args.benchmark, machine_config=config, scale=1 / 60_000
    )
    print(f"golden run: {platform.golden.cycles} cycles\n")

    campaigns = {}
    for component in ("l2c", "mcu"):
        campaign = InjectionCampaign(platform, component, seed=3)
        campaigns[component] = campaign.run(args.n)

    for component, result in campaigns.items():
        prop = PropagationAnalysis.from_campaigns(component, [result])
        if prop.samples:
            print(render_series(
                f"Fig. 8 -- {component.upper()} propagation latency CDF "
                f"({len(prop.samples)} samples, mean {prop.mean:,.0f} cycles)",
                prop.decade_series(max_exponent=6),
            ))
        roll = RollbackAnalysis.from_campaigns(component, [result])
        if roll.samples:
            print(render_series(
                f"Fig. 9 -- {component.upper()} required rollback distance CDF "
                f"({len(roll.samples)} samples)",
                roll.decade_series(max_exponent=6),
            ))
        print()

    # incremental checkpoint log sizes for context (Sec. 5.2)
    model = IncrementalCheckpointModel(interval=1000)
    for addr, cycle in platform.machine.last_store_cycle.items():
        model.record_store(addr, cycle)
    stats = model.stats()
    print(f"incremental checkpoints every {stats.interval} cycles: "
          f"{stats.checkpoints} checkpoints, "
          f"mean log {stats.mean_words_per_checkpoint:.0f} words, "
          f"max {stats.max_words_per_checkpoint}")


if __name__ == "__main__":
    main()
