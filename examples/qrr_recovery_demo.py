#!/usr/bin/env python3
"""Quick Replay Recovery demonstration (paper Sec. 6).

Protects an L2 cache bank with parity + QRR, injects errors into
parity-covered flip-flops while an application runs, and shows every run
recovering to the correct output.  Also prints the coverage breakdown
and the analytic improvement factor (paper footnote 15: >100x).
"""

import argparse

from repro.api import ExperimentSpec, Session
from repro.physical import compute_table6
from repro.qrr.coverage import classify_coverage, improvement_factor
from repro.system.machine import MachineConfig
from repro.uncore.l2c import L2cRtl


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20, help="injections per component")
    parser.add_argument("--benchmark", default="flui")
    args = parser.parse_args()

    config = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)
    session = Session()  # both components reuse one platform + golden run

    for component in ("l2c", "mcu"):
        result = session.run(
            ExperimentSpec(
                benchmark=args.benchmark, component=component, mode="qrr",
                machine=config, scale=1 / 100_000, seed=1, n=args.n,
            )
        )
        print(
            f"{component.upper()}: {result.recovered}/{result.injections} "
            f"recovered (detected {result.detected}); "
            f"failures: {result.failures or 'none'}"
        )

    machine = session.platform(
        ExperimentSpec(benchmark=args.benchmark, component="l2c", mode="qrr",
                       machine=config, scale=1 / 100_000, seed=1, n=args.n)
    ).machine
    coverage = classify_coverage(
        L2cRtl(0, machine.amap, config.l2_ways, send_mcu=lambda r: None),
        "l2c",
    )
    print(f"\nL2C coverage: {coverage.parity_covered:,} parity-covered, "
          f"{coverage.hardened_timing:,} timing-hardened, "
          f"{coverage.hardened_config:,} config-hardened, "
          f"{coverage.qrr_controller:,} controller FFs")
    print(f"analytic improvement factor: {improvement_factor(coverage):,.0f}x "
          f"(paper: >100x)")

    t6 = compute_table6()
    print(f"\nTable 6 costs: QRR {t6.qrr.total_area:.1%} area / "
          f"{t6.qrr.total_power:.1%} power at component level "
          f"({t6.qrr_chip_area:.2%} / {t6.qrr_chip_power:.2%} chip level); "
          f"hardening-only would cost {t6.hardening_only_area:.1%} / "
          f"{t6.hardening_only_power:.1%}")


if __name__ == "__main__":
    main()
