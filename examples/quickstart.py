#!/usr/bin/env python3
"""Quickstart: boot the SoC model, run a benchmark, inject one error.

Demonstrates the layers of the library in ~50 lines:

1. the full-system machine running a multi-threaded workload,
2. the mixed-mode platform (accelerated + RTL co-simulation),
3. a single flip-flop soft-error injection into the L2 cache controller,
4. the unified experiment API: spec in, canonical campaign result out.
"""

import random

from repro.api import ExperimentSpec, Session
from repro.mixedmode.platform import MixedModePlatform
from repro.system.machine import Machine, MachineConfig
from repro.workloads import build_workload


def main() -> None:
    config = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)

    # --- 1. run a workload error-free ---------------------------------
    image = build_workload("fft", threads=config.total_threads, scale=1 / 150_000)
    machine = Machine(config)
    machine.load_workload(image)
    result = machine.run()
    print(f"error-free run: {result.cycles} cycles, "
          f"{result.retired} instructions, {len(result.output)} output words")

    # --- 2. bring up the mixed-mode platform --------------------------
    platform = MixedModePlatform("fft", machine_config=config, scale=1 / 150_000)
    print(f"golden run cached: {platform.golden.cycles} cycles, "
          f"{len(platform.golden.snapshots)} snapshots")

    # --- 3. inject one soft error into the L2 cache controller --------
    rng = random.Random(42)
    cycle, instance, bit = platform.sample_injection_point("l2c", rng)
    run = platform.run_injection("l2c", cycle, bit, instance=instance, rng=rng)
    reg, entry, bitpos = run.flip_location
    print(f"injected bit flip: L2C bank {instance}, register {reg!r} "
          f"entry {entry} bit {bitpos}, at cycle {cycle}")
    print(f"outcome: {run.outcome.value if run.outcome else 'persistent'} "
          f"(co-simulated {run.cosim.cosim_cycles} cycles, "
          f"ended by {run.cosim.ended_by!r})")

    # --- 4. the same thing through the unified experiment API ---------
    spec = ExperimentSpec(
        benchmark="fft", component="l2c", machine=config,
        scale=1 / 150_000, n=10,
    )
    result = Session().run(spec)
    print(f"campaign cell {spec.label()}: {result.outcome_counts()} "
          f"(persistent: {result.persistent})")
    path = result.save("quickstart_result.json")
    print(f"canonical result saved to {path}")


if __name__ == "__main__":
    main()
