"""Full-system simulator (the accelerated-mode substrate).

:class:`repro.system.machine.Machine` binds the multi-threaded cores, the
crossbar, the high-level uncore models and DRAM into a cycle-steppable
SoC, detects the five application outcome categories of Sec. 3.2, and
supports the snapshots the mixed-mode platform fast-forwards from.
"""

from repro.system.machine import Machine, MachineConfig
from repro.system.outcome import Outcome, RunResult, classify_outcome

__all__ = ["Machine", "MachineConfig", "Outcome", "RunResult", "classify_outcome"]
