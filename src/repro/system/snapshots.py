"""Delta snapshot chains: checkpoint storage that scales with churn.

The mixed-mode platform checkpoints the whole machine every Cf cycles
(paper: 2M) so injection runs can restore near their injection point.
Full snapshots copy all of DRAM, the store log and every component every
time; at larger scales they dominate the platform's memory (the
ROADMAP's "shard the golden-run snapshots" item).

A :class:`SnapshotChain` stores the **first** checkpoint in full and
every later one as a delta: the DRAM words written since the previous
checkpoint (dirty-word tracking in :class:`repro.mem.dram.Dram`), the
store-log entries touched, and -- via per-component dirty flags -- only
the components whose architected state changed.  Halted cores, idle
banks and a finished PCIe engine cost nothing per checkpoint.

The chain quacks like the ``dict[int, dict]`` it replaces (a read-only
mapping from checkpoint cycle to a full machine snapshot); materialized
snapshots are bit-identical to what ``Machine.snapshot()`` would have
returned at the same cycle, which the delta-snapshot tests assert.

Compiled-engine interplay: every capture goes through the machine's
snapshot entry points, which settle any autopilot slot debt and flush
in-flight superinstruction continuations first -- so stored state is
always the exact per-slot architected state, and restoring a chain
entry into any engine (``Machine.restore`` clears compiled-core debt
and caches) resumes bit-identically.  Chains captured by different
engines are interchangeable.
"""

from __future__ import annotations

from collections.abc import Mapping


class SnapshotChain(Mapping):
    """Periodic machine checkpoints stored as base + deltas.

    Usage (what ``compute_golden`` does)::

        chain = SnapshotChain(machine)
        chain.checkpoint()          # full base at the current cycle
        while running:
            machine.step()
            if machine.cycle % cf == 0:
                chain.checkpoint()  # delta since the previous one
        chain.finalize()            # stop dirty tracking

    Checkpoints must be taken on a monotonically advancing machine (no
    ``restore`` between checkpoints); reads are valid at any time.
    """

    def __init__(self, machine) -> None:
        self._machine = machine
        self._order: list[int] = []
        #: cycle -> position in ``_order`` (O(1) fold-range lookup)
        self._index: dict[int, int] = {}
        self._base: "dict | None" = None
        self._deltas: dict[int, dict] = {}
        #: most recently materialized (cycle, snapshot) -- bounds the
        #: memory overhead of repeated restores to one full snapshot and
        #: serves as a fold anchor so later materializations do not
        #: restart from the base
        self._memo: "tuple[int, dict] | None" = None

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Record the machine state at its current cycle."""
        machine = self._machine
        cycle = machine.cycle
        if self._order and cycle <= self._order[-1]:
            raise ValueError(
                f"checkpoint cycle {cycle} not after {self._order[-1]} "
                f"(was the machine restored mid-chain?)"
            )
        if self._base is None:
            self._base = machine.snapshot()
            machine.delta_capture_begin()
        else:
            self._deltas[cycle] = machine.delta_snapshot()
        self._index[cycle] = len(self._order)
        self._order.append(cycle)
        return cycle

    def finalize(self) -> None:
        """Stop dirty tracking on the machine (capture is complete)."""
        self._machine.delta_capture_end()

    # ------------------------------------------------------------------
    # Mapping interface (cycle -> full snapshot)
    # ------------------------------------------------------------------
    def __getitem__(self, cycle: int) -> dict:
        if not self._order:
            raise KeyError(cycle)
        if cycle == self._order[0]:
            return self._base
        if cycle not in self._deltas:
            raise KeyError(cycle)
        if self._memo is not None and self._memo[0] == cycle:
            return self._memo[1]
        from repro import obs

        obs.counter("snapshots.materialized").inc()
        tracer = obs.tracer()
        if tracer is None:
            with obs.timer("snapshots.materialize_seconds").time():
                snap = self._materialize(cycle)
        else:
            with obs.timer("snapshots.materialize_seconds").time(), tracer.span(
                "snapshot_materialize", "snapshot", cycle=cycle
            ):
                snap = self._materialize(cycle)
        self._memo = (cycle, snap)
        return snap

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, cycle) -> bool:
        return cycle in self._deltas or (
            bool(self._order) and cycle == self._order[0]
        )

    # ------------------------------------------------------------------
    def _materialize(self, cycle: int) -> dict:
        """Fold up to ``cycle`` into a full snapshot.

        Folds forward from the nearest earlier materialized snapshot
        (the memo) when one exists, so a sequence of materializations
        does not restart from the base each time.
        """
        idx = self._index[cycle]
        base = self._base
        anchor_idx = 0
        if self._memo is not None:
            memo_cycle, memo_snap = self._memo
            memo_idx = self._index[memo_cycle]
            if memo_idx < idx:
                base = memo_snap
                anchor_idx = memo_idx
        dram = dict(base["dram"])
        store_log = dict(base["last_store_cycle"])
        l2banks = list(base["l2banks"])
        mcus = list(base["mcus"])
        pcie = base["pcie"]
        #: per-core: (latest partial record, merged L1 index overrides)
        core_folds: list = [None] * len(base["cores"])
        for c in self._order[anchor_idx + 1 : idx + 1]:
            delta = self._deltas[c]
            for addr, value in delta["dram"].items():
                if value is None:
                    dram.pop(addr, None)
                else:
                    dram[addr] = value
            store_log.update(delta["store_log"])
            for i, rec in enumerate(delta["cores"]):
                if rec is None:
                    continue
                fold = core_folds[i]
                if fold is None:
                    core_folds[i] = [rec, dict(rec["l1_delta"])]
                else:
                    fold[0] = rec
                    fold[1].update(rec["l1_delta"])
            for i, snap in enumerate(delta["l2banks"]):
                if snap is not None:
                    l2banks[i] = snap
            for i, snap in enumerate(delta["mcus"]):
                if snap is not None:
                    mcus[i] = snap
            if delta["pcie"] is not None:
                pcie = delta["pcie"]
        cores = []
        for i, fold in enumerate(core_folds):
            base_core = base["cores"][i]
            if fold is None:
                cores.append(base_core)
                continue
            rec, l1_overrides = fold
            tags = list(base_core["l1_tags"])
            vals = list(base_core["l1_vals"])
            for l1_idx, (tag, val) in l1_overrides.items():
                tags[l1_idx] = tag
                vals[l1_idx] = val
            cores.append(
                {
                    "rr": rec["rr"],
                    "l1_tags": tags,
                    "l1_vals": vals,
                    "dropped_cpx": rec["dropped_cpx"],
                    "invalidations": rec["invalidations"],
                    "threads": rec["threads"],
                }
            )
        last = self._deltas[cycle]
        return {
            "cycle": last["cycle"],
            "dram": dram,
            "output": last["output"],
            "last_store_cycle": store_log,
            "reqid": last["reqid"],
            "last_retire_cycle": last["last_retire_cycle"],
            "retired_total": last["retired_total"],
            "cores": cores,
            "l2banks": l2banks,
            "mcus": mcus,
            "ccx": last["ccx"],
            "pcie": pcie,
            "bank_ingress": last["bank_ingress"],
            "mcu_ingress": last["mcu_ingress"],
        }

    # ------------------------------------------------------------------
    def storage_stats(self) -> dict:
        """What the chain stores vs. what full snapshots would have.

        ``dram_words_stored`` counts base words plus delta entries;
        ``dram_words_full`` is what one-full-copy-per-checkpoint costs.
        ``components_stored``/``components_total`` count per-component
        snapshot entries actually kept vs. the full-copy count.
        """
        if self._base is None:
            return {
                "checkpoints": 0,
                "dram_words_stored": 0,
                "dram_words_full": 0,
                "components_stored": 0,
                "components_total": 0,
            }
        base = self._base
        per_ckpt_components = (
            len(base["cores"]) + len(base["l2banks"]) + len(base["mcus"]) + 1
        )
        dram_stored = len(base["dram"])
        dram_full = len(base["dram"])
        components = per_ckpt_components
        dram_now = dict(base["dram"])
        for c in self._order[1:]:
            delta = self._deltas[c]
            dram_stored += len(delta["dram"])
            for addr, value in delta["dram"].items():
                if value is None:
                    dram_now.pop(addr, None)
                else:
                    dram_now[addr] = value
            dram_full += len(dram_now)
            components += sum(
                1
                for snap in (
                    delta["cores"] + delta["l2banks"] + delta["mcus"]
                    + [delta["pcie"]]
                )
                if snap is not None
            )
        return {
            "checkpoints": len(self._order),
            "dram_words_stored": dram_stored,
            "dram_words_full": dram_full,
            "components_stored": components,
            "components_total": per_ckpt_components * len(self._order),
        }
