"""The full-system machine (accelerated mode, paper Fig. 1a).

Binds cores, crossbar, L2 banks, MCUs, the PCIe DMA engine and DRAM into
a cycle-steppable SoC.  All uncore components are pluggable: the
mixed-mode platform swaps a high-level model for an RTL adapter at
co-simulation entry and back at exit.  **Anything that swaps an uncore
component in or out must call :meth:`Machine.uncore_changed`** so the
event-driven engine reschedules it (the shipped adapters and QRR servers
do).

Three cycle engines share identical observable behaviour:

* ``engine="event"`` (default) -- an activity-tracked, event-driven
  stepper.  Each high-level uncore component reports its next-active
  cycle (:meth:`next_active_cycle`); ``step()`` only ticks components
  that are due and cores that can issue, and the batched run loops skip
  whole idle stretches (all uncore quiescent, no core issuable) in one
  hop.  Components without the protocol (RTL co-simulation adapters,
  QRR servers) are conservatively ticked every cycle.
* ``engine="compiled"`` -- the event engine plus the basic-block
  superinstruction core path (:mod:`repro.core.blocks`): straight-line
  instruction runs execute as one fused closure spread over their
  issue slots, falling back to threaded code at trap/branch/contention
  boundaries and while a live fault is held
  (:meth:`Machine.hold_live_fault`).  The fastest engine for long
  golden/replay phases.
* ``engine="reference"`` -- the original everything-every-cycle stepper,
  kept as the differential-testing and benchmarking baseline.

The machine also provides the services the analyses need:

* address-validity checking (a corrupted pointer dereference traps,
  which is how uncore errors become UT outcomes),
* the application output channel (OMM detection),
* a per-word last-store log (rollback-distance analysis, Fig. 9),
* a corrupted-line watch set (error-propagation latency, Fig. 8),
* whole-machine snapshots (the platform's 2M-cycle checkpoints), with
  delta capture support for :class:`repro.system.snapshots.SnapshotChain`.
"""

from __future__ import annotations

import bisect
import dataclasses
from collections import deque
from dataclasses import dataclass

from repro.core.cpu import Core, ThreadState
from repro.mem.dram import Dram
from repro.mem.l2state import L2BankState
from repro.soc.address import AddressMap
from repro.soc.packets import CpxPacket, CpxType, McuReply, McuRequest, PcxPacket
from repro.system.outcome import RunResult
from repro.uncore.highlevel.ccx import HighLevelCcx
from repro.uncore.highlevel.l2c import HighLevelL2Bank
from repro.uncore.highlevel.mcu import HighLevelMcu
from repro.uncore.highlevel.pcie import HighLevelPcieDma
from repro.workloads.base import WorkloadImage

#: Engines understood by :class:`Machine`.
ENGINES = ("event", "reference", "compiled")

#: The engine used when none is requested.
DEFAULT_ENGINE = "event"

#: Wake-cycle sentinels for the active-set scheduler.
_NEVER = 1 << 62
_ALWAYS = -1


@dataclass(frozen=True)
class MachineConfig:
    """Machine geometry and timing.

    Defaults are the reproduction-scale configuration: the T2's 8 cores
    and 8 L2 banks with scaled cache capacities.  Tests use smaller
    geometries.
    """

    cores: int = 8
    threads_per_core: int = 2
    l1_words: int = 512
    l2_banks: int = 8
    l2_sets: int = 32
    l2_ways: int = 8
    mcus: int = 4
    ccx_latency: int = 3
    #: machine-wide no-retirement window that declares a Hang
    watchdog_cycles: int = 30_000
    #: absolute cycle cap (safety net; campaigns also cap at a multiple
    #: of the error-free length)
    max_cycles: int = 2_000_000

    @property
    def total_threads(self) -> int:
        return self.cores * self.threads_per_core

    def to_dict(self) -> dict:
        """Plain-dict form for the experiment-spec JSON schema."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class _DmaPort:
    """Routes PCIe DMA writes through the machine's coherent path."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine

    def write_word(self, addr: int, value: int) -> None:
        self._machine.dma_write_word(addr, value)


class Machine:
    """A cycle-steppable SoC model."""

    def __init__(
        self,
        config: "MachineConfig | None" = None,
        engine: "str | None" = None,
    ) -> None:
        # a fresh config per machine -- a shared module-import-time
        # default instance would alias every machine built without one
        config = config if config is not None else MachineConfig()
        engine = engine if engine is not None else DEFAULT_ENGINE
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
        self.config = config
        self.engine = engine
        self._reference = engine == "reference"
        self._compiled = engine == "compiled"
        self.amap = AddressMap(
            l2_banks=config.l2_banks, l2_sets=config.l2_sets, mcus=config.mcus
        )
        self.cycle = 0
        #: total cycles this machine has advanced through (including
        #: event-engine idle hops); monotonic, never snapshot/restored --
        #: the benchmark harness's cycles/sec numerator
        self.cycles_advanced = 0
        self.dram = Dram()
        self.output: dict[int, int] = {}
        self.last_store_cycle: dict[int, int] = {}
        #: store cycles per word (kept only when rollback analysis is on)
        self.track_store_log = True
        self._reqid = 1
        self._regions: list[tuple[int, int, str]] = []
        self._region_starts: list[int] = []
        #: (base, end) of the most recently hit region (empty sentinel)
        self._region_cache = (1, 0)
        self._last_retire_cycle = 0
        self.retired_total = 0
        #: word addresses known to be corrupted by an injected error;
        #: first load touching one records the propagation cycle.
        self.corrupt_watch: set[int] = set()
        self.corrupt_read_cycle: "int | None" = None

        self.ccx = HighLevelCcx(latency=config.ccx_latency)
        self.cores: list[Core] = [
            Core(
                i,
                l1_words=config.l1_words,
                issue_pcx=self._issue_pcx,
                check_addr=self._check_addr,
                write_output=self._write_output,
                alloc_reqid=self._alloc_reqid,
                compiled=self._compiled,
            )
            for i in range(config.cores)
        ]
        #: machine-wide armed-autopilot core count, aliased into every
        #: core so the run loops can skip the per-core autopilot checks
        #: entirely while nothing is armed
        self._auto_count = [0]
        for core in self.cores:
            core.on_thread_stop = self._thread_stopped
            core._auto_count = self._auto_count
        self.l2states: list[L2BankState] = [
            L2BankState(b, self.amap, ways=config.l2_ways)
            for b in range(config.l2_banks)
        ]
        self.l2banks: list = [
            HighLevelL2Bank(
                b,
                self.l2states[b],
                send_mcu=self._send_mcu,
                log_store=self._log_store,
            )
            for b in range(config.l2_banks)
        ]
        self.mcus: list = [
            HighLevelMcu(m, self.dram, send_reply=self._route_mcu_reply)
            for m in range(config.mcus)
        ]
        self.pcie = HighLevelPcieDma(_DmaPort(self), log_store=self._log_store)
        #: per-bank ingress FIFOs preserving arrival order under
        #: back-pressure (per-bank total order is what TSO and QRR rely on)
        self._bank_ingress: list[deque[PcxPacket]] = [
            deque() for _ in range(config.l2_banks)
        ]
        self._mcu_ingress: list[deque[McuRequest]] = [
            deque() for _ in range(config.mcus)
        ]
        # -- event-engine bookkeeping ----------------------------------
        #: threads not yet HALTED/TRAPPED, and threads that trapped --
        #: the O(1) run-loop termination checks
        self._live_threads = 0
        self._trapped_threads = 0
        #: per-component next-due cycles and their global minimum
        self._wake_banks: list[int] = [_NEVER] * config.l2_banks
        self._wake_mcus: list[int] = [_NEVER] * config.mcus
        self._wake_ccx = _NEVER
        self._wake_pcie = _NEVER
        self._uncore_wake = _NEVER
        # -- delta-snapshot bookkeeping --------------------------------
        self._delta_tracking = False
        self._store_log_dirty: "set[int] | None" = None
        self._dirty_banks = [True] * config.l2_banks
        self._dirty_mcus = [True] * config.mcus
        self._dirty_pcie = True
        self._refresh_wakes()
        # per-instance dispatch: step() callers skip the engine branch
        if self._reference:
            self.step = self._step_reference
        elif self._compiled:
            self.step = self._step_event_compiled
        else:
            self.step = self._step_event
        # -- observability -----------------------------------------------
        # Handles are frozen here: preallocated counter objects mutated
        # via `c.value += 1` behind a single is-None check, so the
        # disabled path costs one attribute load at coarse chokepoints
        # (uncore wakes, autopilot jumps, snapshots) and nothing per
        # cycle.  Counters never feed back into simulated state -- the
        # engines stay bit-identical with obs on or off.
        from repro import obs

        if obs.enabled():
            labels = {"engine": engine}
            self._obs_uncore = obs.counter("machine.uncore_wakes", labels)
            self._obs_auto = obs.counter("machine.autopilot_jumps", labels)
            self._obs_deopt = obs.counter("machine.deopt_holds", labels)
            self._obs_snap = obs.counter("machine.snapshots", labels)
            self._obs_restore = obs.counter("machine.restores", labels)
            self._obs_cycles = obs.counter("machine.cycles", labels)
        else:
            self._obs_uncore = None
            self._obs_auto = None
            self._obs_deopt = None
            self._obs_snap = None
            self._obs_restore = None
            self._obs_cycles = None
        self._obs_cycles_flushed = 0

    # ------------------------------------------------------------------
    # Services wired into cores / uncore models
    # ------------------------------------------------------------------
    def _alloc_reqid(self) -> int:
        reqid = self._reqid
        self._reqid = (self._reqid + 1) & 0xFFFF or 1
        return reqid

    def _issue_pcx(self, pkt: PcxPacket) -> bool:
        bank = self.amap.bank_of(pkt.addr)
        self.ccx.send_pcx(bank, pkt, self.cycle)
        # a just-sent packet can only be ready at cycle + latency, and
        # anything older in the crossbar is already reflected in the
        # wake; fixed-latency models need no probe call here
        latency = self._ccx_latency
        wake = _ALWAYS if latency is None else self.cycle + latency
        if wake < self._wake_ccx:
            self._wake_ccx = wake
        if wake < self._uncore_wake:
            self._uncore_wake = wake
        return True

    def _check_addr(self, addr: int) -> bool:
        # most accesses land in the most recently hit region
        lo, hi = self._region_cache
        if lo <= addr < hi:
            return True
        if not self._region_starts:
            return False
        idx = bisect.bisect_right(self._region_starts, addr) - 1
        if idx < 0:
            return False
        base, size, _name = self._regions[idx]
        if base <= addr < base + size:
            self._region_cache = (base, base + size)
            return True
        return False

    def _write_output(self, slot: int, value: int) -> None:
        self.output[slot] = value

    def _log_store(self, word_addr: int, cycle: int) -> None:
        if self.track_store_log:
            self.last_store_cycle[word_addr] = cycle
            if self._store_log_dirty is not None:
                self._store_log_dirty.add(word_addr)

    def _send_mcu(self, req: McuRequest) -> None:
        # order-preserving per-MCU ingress; drained in step() so a
        # back-pressuring MCU (RTL request queue full) never loses requests
        idx = self.amap.mcu_of_bank(req.src_bank)
        self._mcu_ingress[idx].append(req)
        cycle = self.cycle
        if self._wake_mcus[idx] > cycle:
            self._wake_mcus[idx] = cycle
        if self._mcus_wake_min > cycle:
            self._mcus_wake_min = cycle
        if self._uncore_wake > cycle:
            self._uncore_wake = cycle

    def dma_write_word(self, addr: int, value: int) -> None:
        """Coherent device write (PCIe DMA): memory plus resident L2 copy."""
        self.dram.write_word(addr, value)
        bank = self.amap.bank_of(addr)
        server = self.l2banks[bank]
        if hasattr(server, "dma_update"):
            server.dma_update(addr, value)
            self._dirty_banks[bank] = True

    def _route_mcu_reply(self, reply: McuReply) -> None:
        bank = reply.src_bank
        self.l2banks[bank].deliver_mcu_reply(reply)
        self._dirty_banks[bank] = True
        wake = self.cycle + 1
        if self._wake_banks[bank] > wake:
            self._wake_banks[bank] = wake
        if self._banks_wake_min > wake:
            self._banks_wake_min = wake
        if self._uncore_wake > wake:
            self._uncore_wake = wake

    def _thread_stopped(self, trapped: bool) -> None:
        self._live_threads -= 1
        if trapped:
            self._trapped_threads += 1

    # ------------------------------------------------------------------
    # Activity tracking (the event engine's active set)
    # ------------------------------------------------------------------
    @staticmethod
    def _probe_of(comp):
        """The component's ``next_active_cycle`` method, or None for
        models without the protocol (RTL co-simulation adapters, QRR
        servers): those are conservatively ticked every cycle."""
        return getattr(comp, "next_active_cycle", None)

    @staticmethod
    def _wake_from(probe) -> int:
        if probe is None:
            return _ALWAYS
        nxt = probe()
        return _NEVER if nxt is None else nxt

    def _refresh_wakes(self) -> None:
        """Recompute the whole activity schedule from component state."""
        self._nac_ccx = self._probe_of(self.ccx)
        self._nac_banks = [self._probe_of(bank) for bank in self.l2banks]
        self._nac_mcus = [self._probe_of(mcu) for mcu in self.mcus]
        self._nac_pcie = self._probe_of(self.pcie)
        # dense-activity short-circuit: for the stock high-level models
        # the next-active probe is inlined into the step loop (their
        # wake rule is a queue-head read), so a busy component costs no
        # method call per cycle.  Swapped-in components of any other
        # type (RTL adapters, QRR servers, test doubles) keep the
        # next_active_cycle protocol -- exact type match only.
        self._ccx_stock = type(self.ccx) is HighLevelCcx
        self._bank_stock = [type(b) is HighLevelL2Bank for b in self.l2banks]
        self._mcu_stock = [type(m) is HighLevelMcu for m in self.mcus]
        #: fixed crossbar latency when known (None: probe every send)
        self._ccx_latency = (
            getattr(self.ccx, "latency", None)
            if self._nac_ccx is not None
            else None
        )
        self._wake_ccx = self._wake_from(self._nac_ccx)
        self._wake_banks = [
            _ALWAYS if self._bank_ingress[i] else self._wake_from(probe)
            for i, probe in enumerate(self._nac_banks)
        ]
        self._wake_mcus = [
            _ALWAYS if self._mcu_ingress[i] else self._wake_from(probe)
            for i, probe in enumerate(self._nac_mcus)
        ]
        self._wake_pcie = self._wake_from(self._nac_pcie)
        self._banks_wake_min = min(self._wake_banks)
        self._mcus_wake_min = min(self._wake_mcus)
        self._recompute_uncore_wake()

    def _recompute_uncore_wake(self) -> None:
        wake = self._wake_ccx
        if self._wake_pcie < wake:
            wake = self._wake_pcie
        if self._banks_wake_min < wake:
            wake = self._banks_wake_min
        if self._mcus_wake_min < wake:
            wake = self._mcus_wake_min
        self._uncore_wake = wake

    def _settle_cores(self) -> None:
        """Pay outstanding autopilot debt at a cycle boundary (the
        current cycle's issue stage has not run yet)."""
        through = self.cycle - 1
        for core in self.cores:
            if core._auto_until:
                core._auto_settle(through)

    def hold_live_fault(self, held: bool) -> None:
        """Assert/release the live-fault hold on the compiled engine.

        While a live fault (stuck-at, intermittent) is held, the fault
        model re-asserts corrupted state on its own schedule, so the
        platform forces the compiled cores to single-step through the
        threaded-code path: in-flight superinstructions are flushed and
        block entries de-optimize until the hold is released.  The
        event and reference engines are unaffected (no-op for them);
        observable behaviour is identical either way -- this keeps the
        "one instruction per issue slot" execution literal while fault
        state is live.
        """
        if held and self._compiled:
            self._settle_cores()
            c = self._obs_deopt
            if c is not None:
                c.value += 1
        for core in self.cores:
            core._compiled_hold = held
            if held and core._compiled:
                core.flush_compiled()

    def advance_until(self, target: int) -> bool:
        """Advance to absolute cycle ``target`` with exact early stop.

        Like :meth:`run_until_cycle`, but stops at the precise cycle at
        which every thread has halted/trapped (checked per advanced
        cycle, like the run loops).  Returns False on such an early
        stop.  Used by golden-run drivers to step checkpoint-to-
        checkpoint while keeping the event/compiled engines' idle hops.
        """
        if self._reference:
            while self.cycle < target:
                if self._live_threads == 0 or self._trapped_threads:
                    return False
                self.step()
            return True
        cores = self.cores
        compiled = self._compiled
        auto_count = self._auto_count
        while self.cycle < target:
            if self._live_threads == 0 or self._trapped_threads:
                return False
            cycle = self.cycle
            retired = 0
            active = False
            n_auto = 0
            if compiled:
                if auto_count[0]:
                    for core in cores:
                        if cycle < core._auto_until:
                            n_auto += 1
                        elif core._num_ready or core._num_atomic_wait:
                            active = True
                            if core.step(cycle):
                                retired += 1
                    retired += n_auto
                else:
                    for core in cores:
                        thread = core._head_debt
                        if thread is not None:
                            # head thread is paying continuation debt:
                            # apply the slot inline (no step call)
                            owed = thread.owed - 1
                            thread.owed = owed
                            if not owed:
                                core._debt -= 1
                            core.dirty = True
                            idx = core._rr + 1
                            if idx == core._nt:
                                idx = 0
                            core._rr = idx
                            nh = core.threads[idx]
                            core._head_debt = nh if nh.owed else None
                            active = True
                            retired += 1
                        elif core._num_ready or core._num_atomic_wait:
                            active = True
                            if core.step(cycle):
                                retired += 1
            else:
                for core in cores:
                    if core._num_ready or core._num_atomic_wait:
                        active = True
                        if core.step(cycle):
                            retired += 1
            if retired:
                self.retired_total += retired
                self._last_retire_cycle = cycle
            if self._uncore_wake <= cycle:
                self._step_uncore(cycle)
                self.cycle = cycle + 1
                self.cycles_advanced += 1
            elif active:
                self.cycle = cycle + 1
                self.cycles_advanced += 1
            elif n_auto:
                nxt = self._uncore_wake
                for core in cores:
                    au = core._auto_until
                    if au and au < nxt:
                        nxt = au
                if nxt > target:
                    nxt = target
                if nxt <= cycle:
                    nxt = cycle + 1
                jump = nxt - cycle
                if jump > 1:
                    self.retired_total += n_auto * (jump - 1)
                    self._last_retire_cycle = nxt - 1
                    c = self._obs_auto
                    if c is not None:
                        c.value += 1
                self.cycles_advanced += jump
                self.cycle = nxt
            else:
                nxt = self._uncore_wake
                if nxt > target:
                    nxt = target
                if nxt <= cycle:
                    nxt = cycle + 1
                self.cycles_advanced += nxt - cycle
                self.cycle = nxt
        return True

    def uncore_changed(self) -> None:
        """Reschedule after an uncore component swap.

        Must be called whenever ``machine.ccx``, ``machine.pcie`` or an
        entry of ``machine.l2banks``/``machine.mcus`` is replaced (the
        co-simulation adapters and QRR servers do this in their
        attach/detach/release paths); otherwise the event engine may keep
        an earlier component's sleep schedule for the new one.
        """
        self._refresh_wakes()

    def _recount_threads(self) -> None:
        live = trapped = 0
        for core in self.cores:
            for thread in core.threads:
                state = thread.state
                if state is not ThreadState.HALTED and (
                    state is not ThreadState.TRAPPED
                ):
                    live += 1
                if thread.trap is not None:
                    trapped += 1
        self._live_threads = live
        self._trapped_threads = trapped

    def live_threads(self) -> int:
        """Threads not yet halted or trapped (O(1))."""
        return self._live_threads

    def has_trap(self) -> bool:
        """Whether any thread has trapped (O(1); see :meth:`any_trap`)."""
        return self._trapped_threads > 0

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def alloc_region(self, base: int, size: int, name: str) -> None:
        """Register a valid memory region; overlaps are rejected."""
        if base & 7 or size <= 0:
            raise ValueError("regions must be word aligned with positive size")
        for obase, osize, oname in self._regions:
            if base < obase + osize and obase < base + size:
                raise ValueError(f"region {name!r} overlaps {oname!r}")
        self._regions.append((base, size, name))
        self._regions.sort()
        self._region_starts = [r[0] for r in self._regions]

    @property
    def regions(self) -> list[tuple[int, int, str]]:
        return list(self._regions)

    # ------------------------------------------------------------------
    # Workload loading
    # ------------------------------------------------------------------
    def load_workload(self, image: WorkloadImage, pcie_input: bool = False) -> None:
        """Install programs, regions and initial memory.

        With ``pcie_input`` set and an input file present, the file is
        DMA-transferred by the PCIe model while the application polls the
        completion flag; otherwise the input region is preloaded directly
        (the configuration used for L2C/MCU/CCX injection runs).
        """
        if image.threads() > self.config.total_threads:
            raise ValueError(
                f"workload has {image.threads()} threads; machine supports "
                f"{self.config.total_threads}"
            )
        for base, size, name in image.regions:
            self.alloc_region(base, size, name)
        for addr, value in image.init_words.items():
            self.dram.write_word(addr, value)
        tpc = self.config.threads_per_core
        for idx, program in enumerate(image.programs):
            core = self.cores[idx // tpc]
            thread = core.add_thread(program)
            if idx < len(image.thread_regs):
                for reg, value in image.thread_regs[idx].items():
                    thread.write_reg(reg, value)
        if image.input_file_words is not None:
            if pcie_input:
                self.pcie.begin_transfer(
                    image.input_file_words,
                    image.input_dest,
                    image.input_status_addr,
                    cycle=0,
                )
            else:
                for i, word in enumerate(image.input_file_words):
                    self.dram.write_word(image.input_dest + 8 * i, word)
                self.dram.write_word(image.input_status_addr, 1)
        self._recount_threads()
        self._refresh_wakes()

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole machine by one cycle.

        (``__init__`` shadows this dispatcher with the engine's bound
        step method, so per-cycle calls skip the engine branch.)
        """
        if self._reference:
            self._step_reference()
        else:
            self._step_event()

    def _step_event(self) -> None:
        cycle = self.cycle
        # 1. cores issue (only cores with an issuable thread)
        retired = 0
        for core in self.cores:
            if core._num_ready or core._num_atomic_wait:
                if core.step(cycle):
                    retired += 1
        if retired:
            self.retired_total += retired
            self._last_retire_cycle = cycle
        # 2-6. uncore, only when some component is due
        if self._uncore_wake <= cycle:
            self._step_uncore(cycle)
        self.cycle = cycle + 1
        self.cycles_advanced += 1

    def _step_event_compiled(self) -> None:
        """Event stepper with the compiled cores' fast slot paths: a
        debt-paying head thread is handled inline (no step call), and a
        core on autopilot retires this cycle without being touched."""
        cycle = self.cycle
        retired = 0
        if self._auto_count[0]:
            for core in self.cores:
                if cycle < core._auto_until:
                    retired += 1
                elif core._num_ready or core._num_atomic_wait:
                    if core.step(cycle):
                        retired += 1
        else:
            for core in self.cores:
                thread = core._head_debt
                if thread is not None:
                    owed = thread.owed - 1
                    thread.owed = owed
                    if not owed:
                        core._debt -= 1
                    core.dirty = True
                    idx = core._rr + 1
                    if idx == core._nt:
                        idx = 0
                    core._rr = idx
                    nh = core.threads[idx]
                    core._head_debt = nh if nh.owed else None
                    retired += 1
                elif core._num_ready or core._num_atomic_wait:
                    if core.step(cycle):
                        retired += 1
        if retired:
            self.retired_total += retired
            self._last_retire_cycle = cycle
        if self._uncore_wake <= cycle:
            self._step_uncore(cycle)
        self.cycle = cycle + 1
        self.cycles_advanced += 1

    def _step_uncore(self, cycle: int) -> None:
        """Tick every due uncore component, preserving the reference
        stage order (crossbar -> banks -> MCUs -> CPX delivery -> PCIe).

        Skipped components are provably no-ops this cycle: their
        :meth:`next_active_cycle` is in the future and nothing has been
        pushed at them since it was computed.

        Dense-activity short-circuit: for the stock high-level models
        the per-component reschedule is inlined (their wake rule is a
        queue-head read), a just-delivered PCX packet is accepted
        straight into the bank's input queue when its ingress FIFO is
        empty (identical queue content at tick time), and the stock
        crossbar's no-op ``tick`` is skipped -- so when every component
        is busy every cycle the active-set bookkeeping costs almost
        nothing over the reference stepper.
        """
        c = self._obs_uncore
        if c is not None:
            c.value += 1
        ccx = self.ccx
        wake_banks = self._wake_banks
        ccx_due = self._wake_ccx <= cycle
        ccx_stock = self._ccx_stock
        if ccx_due:
            if ccx_stock:
                # inlined HighLevelCcx.deliver_pcx: pop due packets
                # straight into the banks (counter kept in sync)
                pcxq = ccx._pcx
                if pcxq and pcxq[0][0] <= cycle:
                    banks = self.l2banks
                    bank_stock = self._bank_stock
                    bank_ingress = self._bank_ingress
                    delivered = 0
                    while pcxq and pcxq[0][0] <= cycle:
                        _ready, bank, pkt = pcxq.popleft()
                        delivered += 1
                        ingress = bank_ingress[bank]
                        if (
                            ingress
                            or not bank_stock[bank]
                            or not banks[bank].accept(pkt, cycle)
                        ):
                            ingress.append(pkt)
                        if wake_banks[bank] > cycle:
                            wake_banks[bank] = cycle
                    ccx.pcx_delivered += delivered
                    if self._banks_wake_min > cycle:
                        self._banks_wake_min = cycle
            else:
                ccx.tick(cycle)
                deliveries = ccx.deliver_pcx(cycle)
                if deliveries:
                    banks = self.l2banks
                    bank_stock = self._bank_stock
                    for bank, pkt in deliveries:
                        ingress = self._bank_ingress[bank]
                        if (
                            ingress
                            or not bank_stock[bank]
                            or not banks[bank].accept(pkt, cycle)
                        ):
                            ingress.append(pkt)
                        if wake_banks[bank] > cycle:
                            wake_banks[bank] = cycle
                    if self._banks_wake_min > cycle:
                        self._banks_wake_min = cycle
        if self._banks_wake_min <= cycle:
            banks = self.l2banks
            bank_stock = self._bank_stock
            dirty_banks = self._dirty_banks
            banks_min = _NEVER
            for bank_idx in range(len(banks)):
                wake = wake_banks[bank_idx]
                if wake > cycle:
                    if wake < banks_min:
                        banks_min = wake
                    continue
                server = banks[bank_idx]
                dirty_banks[bank_idx] = True
                ingress = self._bank_ingress[bank_idx]
                while ingress:
                    if not server.accept(ingress[0], cycle):
                        break
                    ingress.popleft()
                sent = False
                for cpx in server.tick(cycle):
                    ccx.send_cpx(cpx, cycle, src=bank_idx)
                    sent = True
                if sent:
                    latency = self._ccx_latency
                    wake = _ALWAYS if latency is None else cycle + latency
                    if wake < self._wake_ccx:
                        self._wake_ccx = wake
                if ingress:
                    wake = cycle + 1
                elif bank_stock[bank_idx]:
                    # inlined HighLevelL2Bank.next_active_cycle
                    if server._waiting_fill is not None:
                        wake = (
                            cycle + 1
                            if server._fill_data is not None
                            else _NEVER
                        )
                    elif server._queue:
                        wake = cycle + 1
                    else:
                        wake = _NEVER
                    out = server._out
                    if out:
                        ready = out[0][0]
                        if ready < wake:
                            wake = ready
                else:
                    probe = self._nac_banks[bank_idx]
                    wake = _ALWAYS if probe is None else probe()
                    if wake is None:
                        wake = _NEVER
                wake_banks[bank_idx] = wake
                if wake < banks_min:
                    banks_min = wake
            self._banks_wake_min = banks_min
        if self._mcus_wake_min <= cycle:
            wake_mcus = self._wake_mcus
            mcus = self.mcus
            mcu_stock = self._mcu_stock
            mcus_min = _NEVER
            for mcu_idx in range(len(mcus)):
                wake = wake_mcus[mcu_idx]
                if wake > cycle:
                    if wake < mcus_min:
                        mcus_min = wake
                    continue
                mcu = mcus[mcu_idx]
                self._dirty_mcus[mcu_idx] = True
                ingress = self._mcu_ingress[mcu_idx]
                while ingress:
                    if not mcu.accept(ingress[0], cycle):
                        break
                    ingress.popleft()
                mcu.tick(cycle)
                if ingress:
                    wake = cycle + 1
                elif mcu_stock[mcu_idx]:
                    # inlined HighLevelMcu.next_active_cycle
                    queue = mcu._queue
                    wake = queue[0][0] if queue else _NEVER
                else:
                    probe = self._nac_mcus[mcu_idx]
                    wake = _ALWAYS if probe is None else probe()
                    if wake is None:
                        wake = _NEVER
                wake_mcus[mcu_idx] = wake
                if wake < mcus_min:
                    mcus_min = wake
            self._mcus_wake_min = mcus_min
        if self._wake_ccx <= cycle:
            cores = self.cores
            ncores = len(cores)
            watch = self.corrupt_watch
            if ccx_stock:
                # inlined HighLevelCcx.deliver_cpx (counter kept in sync)
                cpxq = ccx._cpx
                delivered = 0
                while cpxq and cpxq[0][0] <= cycle:
                    cpx = cpxq.popleft()[1]
                    delivered += 1
                    ctype = cpx.ctype
                    if watch and self.corrupt_read_cycle is None:
                        if (cpx.addr & ~7) in watch and (
                            ctype is CpxType.LOAD_RET
                            or ctype is CpxType.ATOMIC_RET
                        ):
                            self.corrupt_read_cycle = cycle
                    if 0 <= cpx.core < ncores:
                        core = cores[cpx.core]
                        if core._auto_until and (
                            ctype is not CpxType.STORE_ACK
                            and ctype is not CpxType.INVALIDATE
                        ):
                            # a completion may wake a waiting thread and
                            # change the issue schedule: pay the
                            # autopilot debt through this cycle (its
                            # issue stage already ran) before the
                            # effects land.  STORE_ACK and INVALIDATE
                            # cannot change the issuable set (credits
                            # feed lazy atomic conversion, which blocks
                            # arming; L1 state is invisible to debt
                            # slots), so the window holds.
                            core._auto_settle(cycle)
                        core.deliver_cpx(cpx)
                if delivered:
                    ccx.cpx_delivered += delivered
                # inlined HighLevelCcx.next_active_cycle
                pcx = ccx._pcx
                wake = pcx[0][0] if pcx else _NEVER
                if cpxq:
                    ready = cpxq[0][0]
                    if ready < wake:
                        wake = ready
                self._wake_ccx = wake
            else:
                for cpx in ccx.deliver_cpx(cycle):
                    ctype = cpx.ctype
                    if watch and self.corrupt_read_cycle is None:
                        if (cpx.addr & ~7) in watch and (
                            ctype is CpxType.LOAD_RET
                            or ctype is CpxType.ATOMIC_RET
                        ):
                            self.corrupt_read_cycle = cycle
                    if 0 <= cpx.core < ncores:
                        core = cores[cpx.core]
                        if core._auto_until and (
                            ctype is not CpxType.STORE_ACK
                            and ctype is not CpxType.INVALIDATE
                        ):
                            core._auto_settle(cycle)
                        core.deliver_cpx(cpx)
                probe = self._nac_ccx
                wake = _ALWAYS if probe is None else probe()
                self._wake_ccx = _NEVER if wake is None else wake
        if self._wake_pcie <= cycle:
            self._dirty_pcie = True
            self.pcie.tick(cycle)
            probe = self._nac_pcie
            wake = _ALWAYS if probe is None else probe()
            self._wake_pcie = _NEVER if wake is None else wake
        wake = self._wake_ccx
        if self._wake_pcie < wake:
            wake = self._wake_pcie
        if self._banks_wake_min < wake:
            wake = self._banks_wake_min
        if self._mcus_wake_min < wake:
            wake = self._mcus_wake_min
        self._uncore_wake = wake

    def _step_reference(self) -> None:
        """The original everything-every-cycle stepper (baseline)."""
        cycle = self.cycle
        # 1. cores issue
        retired = 0
        for core in self.cores:
            if core.step(cycle):
                retired += 1
        if retired:
            self.retired_total += retired
            self._last_retire_cycle = cycle
        # 2. crossbar advances, then delivers toward banks
        #    (order-preserving per bank)
        self.ccx.tick(cycle)
        for bank, pkt in self.ccx.deliver_pcx(cycle):
            self._bank_ingress[bank].append(pkt)
        for bank_idx, ingress in enumerate(self._bank_ingress):
            server = self.l2banks[bank_idx]
            while ingress:
                if not server.accept(ingress[0], cycle):
                    break
                ingress.popleft()
        # 3. banks advance; returns go to the crossbar
        for bank_idx, server in enumerate(self.l2banks):
            for cpx in server.tick(cycle):
                self.ccx.send_cpx(cpx, cycle, src=bank_idx)
        # 4. MCUs accept queued requests and advance
        #    (replies delivered via _route_mcu_reply)
        for mcu_idx, mcu in enumerate(self.mcus):
            ingress = self._mcu_ingress[mcu_idx]
            while ingress:
                if not mcu.accept(ingress[0], cycle):
                    break
                ingress.popleft()
            mcu.tick(cycle)
        # 5. crossbar delivery toward cores
        for cpx in self.ccx.deliver_cpx(cycle):
            if self.corrupt_watch and self.corrupt_read_cycle is None:
                ctype = cpx.ctype
                if (cpx.addr & ~7) in self.corrupt_watch and (
                    ctype is CpxType.LOAD_RET or ctype is CpxType.ATOMIC_RET
                ):
                    self.corrupt_read_cycle = cycle
            if 0 <= cpx.core < len(self.cores):
                self.cores[cpx.core].deliver_cpx(cpx)
        # 6. PCIe DMA
        self.pcie.tick(cycle)
        self.cycle = cycle + 1
        self.cycles_advanced += 1

    def run(
        self,
        max_cycles: "int | None" = None,
        hang_factor_cycles: "int | None" = None,
    ) -> RunResult:
        """Run until completion, trap, hang or the cycle cap.

        ``hang_factor_cycles``, when given, is an absolute cycle count
        beyond which the run is declared hung (campaigns set it to a
        multiple of the error-free length).
        """
        if not self._reference:
            return self.run_fast(max_cycles, hang_factor_cycles)
        cap = max_cycles if max_cycles is not None else self.config.max_cycles
        if hang_factor_cycles is not None:
            cap = min(cap, hang_factor_cycles)
        watchdog = self.config.watchdog_cycles
        while True:
            done = True
            for core in self.cores:
                trap = core.any_trapped()
                if trap is not None:
                    return RunResult(
                        completed=False,
                        cycles=self.cycle,
                        output=dict(self.output),
                        trap=trap,
                        retired=self.retired_total,
                    )
                if not core.all_halted():
                    done = False
            if done:
                self._drain_uncore(limit=10_000)
                return RunResult(
                    completed=True,
                    cycles=self.cycle,
                    output=dict(self.output),
                    retired=self.retired_total,
                )
            if self.cycle >= cap or self.cycle - self._last_retire_cycle > watchdog:
                return RunResult(
                    completed=False,
                    cycles=self.cycle,
                    output=dict(self.output),
                    hung=True,
                    retired=self.retired_total,
                )
            self.step()

    def run_fast(
        self,
        max_cycles: "int | None" = None,
        hang_factor_cycles: "int | None" = None,
    ) -> RunResult:
        """Event-driven :meth:`run`: O(1) termination checks per cycle
        and one-hop skips over stretches where no core can issue and the
        uncore sleeps.  Bit-identical observables to the reference loop
        (enforced by the differential test suite)."""
        cap = max_cycles if max_cycles is not None else self.config.max_cycles
        if hang_factor_cycles is not None:
            cap = min(cap, hang_factor_cycles)
        watchdog = self.config.watchdog_cycles
        cores = self.cores
        compiled = self._compiled
        auto_count = self._auto_count
        while True:
            if self._trapped_threads:
                return RunResult(
                    completed=False,
                    cycles=self.cycle,
                    output=dict(self.output),
                    trap=self.any_trap(),
                    retired=self.retired_total,
                )
            if self._live_threads == 0:
                self._drain_uncore(limit=10_000)
                return RunResult(
                    completed=True,
                    cycles=self.cycle,
                    output=dict(self.output),
                    retired=self.retired_total,
                )
            cycle = self.cycle
            if cycle >= cap or cycle - self._last_retire_cycle > watchdog:
                return RunResult(
                    completed=False,
                    cycles=cycle,
                    output=dict(self.output),
                    hung=True,
                    retired=self.retired_total,
                )
            retired = 0
            active = False
            n_auto = 0
            if compiled:
                if auto_count[0]:
                    for core in cores:
                        if cycle < core._auto_until:
                            n_auto += 1
                        elif core._num_ready or core._num_atomic_wait:
                            active = True
                            if core.step(cycle):
                                retired += 1
                    retired += n_auto
                else:
                    for core in cores:
                        thread = core._head_debt
                        if thread is not None:
                            # head thread is paying continuation debt:
                            # apply the slot inline (no step call)
                            owed = thread.owed - 1
                            thread.owed = owed
                            if not owed:
                                core._debt -= 1
                            core.dirty = True
                            idx = core._rr + 1
                            if idx == core._nt:
                                idx = 0
                            core._rr = idx
                            nh = core.threads[idx]
                            core._head_debt = nh if nh.owed else None
                            active = True
                            retired += 1
                        elif core._num_ready or core._num_atomic_wait:
                            active = True
                            if core.step(cycle):
                                retired += 1
            else:
                for core in cores:
                    if core._num_ready or core._num_atomic_wait:
                        active = True
                        if core.step(cycle):
                            retired += 1
            if retired:
                self.retired_total += retired
                self._last_retire_cycle = cycle
            if self._uncore_wake <= cycle:
                self._step_uncore(cycle)
                self.cycle = cycle + 1
                self.cycles_advanced += 1
            elif active:
                self.cycle = cycle + 1
                self.cycles_advanced += 1
            elif n_auto:
                # every active core is paying autopilot debt: jump to
                # the next schedule event (first debt expiry, uncore
                # wake or the cap), accounting one retirement per core
                # per skipped cycle -- exactly what per-cycle stepping
                # would have recorded
                target = self._uncore_wake
                for core in cores:
                    au = core._auto_until
                    if au and au < target:
                        target = au
                if cap < target:
                    target = cap
                if target <= cycle:
                    target = cycle + 1
                jump = target - cycle
                if jump > 1:
                    self.retired_total += n_auto * (jump - 1)
                    self._last_retire_cycle = target - 1
                    c = self._obs_auto
                    if c is not None:
                        c.value += 1
                self.cycles_advanced += jump
                self.cycle = target
            else:
                # idle stretch: nothing can change until the uncore's
                # next event, the watchdog limit or the cap -- the
                # intervening cycles are provably no-ops
                target = self._uncore_wake
                limit = self._last_retire_cycle + watchdog + 1
                if limit < target:
                    target = limit
                if cap < target:
                    target = cap
                if target <= cycle:
                    target = cycle + 1
                self.cycles_advanced += target - cycle
                self.cycle = target

    def uncore_idle(self) -> bool:
        """Whether all uncore components and ingress queues are empty."""
        if any(self._bank_ingress) or any(self._mcu_ingress):
            return False
        if self.ccx.in_flight() or self.pcie.in_flight():
            return False
        if any(bank.in_flight() for bank in self.l2banks):
            return False
        return not any(mcu.in_flight() for mcu in self.mcus)

    def _drain_uncore(self, limit: int) -> None:
        """Let posted stores / writebacks / DMA complete after halt."""
        for _ in range(limit):
            if self.uncore_idle():
                return
            self.step()

    def run_cycles(self, n: int) -> None:
        """Advance exactly ``n`` cycles (no termination checks)."""
        if self._reference:
            for _ in range(n):
                self.step()
            return
        self.run_until_cycle(self.cycle + n)

    def run_until_cycle(self, target: int) -> None:
        """Advance to an absolute cycle count."""
        if self._reference:
            while self.cycle < target:
                self.step()
            return
        cores = self.cores
        compiled = self._compiled
        auto_count = self._auto_count
        while self.cycle < target:
            cycle = self.cycle
            retired = 0
            active = False
            n_auto = 0
            if compiled:
                if auto_count[0]:
                    for core in cores:
                        if cycle < core._auto_until:
                            n_auto += 1
                        elif core._num_ready or core._num_atomic_wait:
                            active = True
                            if core.step(cycle):
                                retired += 1
                    retired += n_auto
                else:
                    for core in cores:
                        thread = core._head_debt
                        if thread is not None:
                            # head thread is paying continuation debt:
                            # apply the slot inline (no step call)
                            owed = thread.owed - 1
                            thread.owed = owed
                            if not owed:
                                core._debt -= 1
                            core.dirty = True
                            idx = core._rr + 1
                            if idx == core._nt:
                                idx = 0
                            core._rr = idx
                            nh = core.threads[idx]
                            core._head_debt = nh if nh.owed else None
                            active = True
                            retired += 1
                        elif core._num_ready or core._num_atomic_wait:
                            active = True
                            if core.step(cycle):
                                retired += 1
            else:
                for core in cores:
                    if core._num_ready or core._num_atomic_wait:
                        active = True
                        if core.step(cycle):
                            retired += 1
            if retired:
                self.retired_total += retired
                self._last_retire_cycle = cycle
            if self._uncore_wake <= cycle:
                self._step_uncore(cycle)
                self.cycle = cycle + 1
                self.cycles_advanced += 1
            elif active:
                self.cycle = cycle + 1
                self.cycles_advanced += 1
            elif n_auto:
                nxt = self._uncore_wake
                for core in cores:
                    au = core._auto_until
                    if au and au < nxt:
                        nxt = au
                if nxt > target:
                    nxt = target
                if nxt <= cycle:
                    nxt = cycle + 1
                jump = nxt - cycle
                if jump > 1:
                    self.retired_total += n_auto * (jump - 1)
                    self._last_retire_cycle = nxt - 1
                    c = self._obs_auto
                    if c is not None:
                        c.value += 1
                self.cycles_advanced += jump
                self.cycle = nxt
            else:
                nxt = self._uncore_wake
                if nxt > target:
                    nxt = target
                if nxt <= cycle:
                    nxt = cycle + 1
                self.cycles_advanced += nxt - cycle
                self.cycle = nxt

    # ------------------------------------------------------------------
    # Observability (digest-neutral; see repro.obs)
    # ------------------------------------------------------------------
    def obs_flush(self) -> None:
        """Publish the cycles advanced since the last flush into the
        metrics registry.  Called at coarse boundaries (end of a golden
        chunk, end of a campaign run) so the hot loops never touch the
        counter -- they keep incrementing the plain ``cycles_advanced``
        int they always had."""
        c = self._obs_cycles
        if c is not None:
            c.value += self.cycles_advanced - self._obs_cycles_flushed
            self._obs_cycles_flushed = self.cycles_advanced

    def instrument_phases(self, uncore=None, snapshot=None):
        """Install per-phase timers on this machine's chokepoints.

        ``uncore`` times :meth:`_step_uncore`; ``snapshot`` times
        :meth:`snapshot` and :meth:`delta_snapshot`.  Pass
        :class:`repro.obs.Timer` objects (their :meth:`~repro.obs.Timer.
        wrap` provides the timing shim).  Returns a zero-argument
        callable that removes the instrumentation.  This is the
        sanctioned phase-timing API -- the bench harness uses it for its
        golden phase breakdown instead of monkey-patching.

        Timing shims observe, never alter: wrapped methods run the
        originals unchanged, so instrumented runs stay bit-identical.
        The reference engine drives its uncore inline rather than
        through :meth:`_step_uncore`, so ``uncore`` only measures the
        event/compiled engines (callers skip phase timing for
        reference, as the bench always has).
        """
        originals = []
        if uncore is not None:
            originals.append(("_step_uncore", self._step_uncore))
            self._step_uncore = uncore.wrap(self._step_uncore)
        if snapshot is not None:
            originals.append(("snapshot", self.snapshot))
            originals.append(("delta_snapshot", self.delta_snapshot))
            self.snapshot = snapshot.wrap(self.snapshot)
            self.delta_snapshot = snapshot.wrap(self.delta_snapshot)

        def remove() -> None:
            for name, fn in originals:
                # the instance attribute shadowed the bound method;
                # deleting it restores normal class dispatch
                if getattr(fn, "__self__", None) is self:
                    delattr(self, name)
                else:  # pragma: no cover - nested instrumentation
                    setattr(self, name, fn)

        return remove

    def all_halted(self) -> bool:
        return all(core.all_halted() for core in self.cores)

    def any_trap(self):
        for core in self.cores:
            trap = core.any_trapped()
            if trap is not None:
                return trap
        return None

    # ------------------------------------------------------------------
    # Snapshots (the platform's periodic checkpoints, Sec. 2.2 phase 1)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        if self._compiled:
            self._settle_cores()
        c = self._obs_snap
        if c is not None:
            c.value += 1
        return {
            "cycle": self.cycle,
            "dram": self.dram.snapshot(),
            "output": dict(self.output),
            "last_store_cycle": dict(self.last_store_cycle),
            "reqid": self._reqid,
            "last_retire_cycle": self._last_retire_cycle,
            "retired_total": self.retired_total,
            "cores": [core.snapshot() for core in self.cores],
            "l2banks": [bank.snapshot() for bank in self.l2banks],
            "mcus": [mcu.snapshot() for mcu in self.mcus],
            "ccx": self.ccx.snapshot(),
            "pcie": self.pcie.snapshot(),
            "bank_ingress": [list(q) for q in self._bank_ingress],
            "mcu_ingress": [list(q) for q in self._mcu_ingress],
        }

    def restore(self, snap: dict) -> None:
        if self._delta_tracking:
            raise RuntimeError(
                "cannot restore while a delta snapshot capture is active"
            )
        c = self._obs_restore
        if c is not None:
            c.value += 1
        self.cycle = snap["cycle"]
        self.dram.restore(snap["dram"])
        self.output = dict(snap["output"])
        self.last_store_cycle = dict(snap["last_store_cycle"])
        self._reqid = snap["reqid"]
        self._last_retire_cycle = snap["last_retire_cycle"]
        self.retired_total = snap["retired_total"]
        for core, cstate in zip(self.cores, snap["cores"]):
            core.restore(cstate)
        for bank, bstate in zip(self.l2banks, snap["l2banks"]):
            bank.restore(bstate)
        for mcu, mstate in zip(self.mcus, snap["mcus"]):
            mcu.restore(mstate)
        self.ccx.restore(snap["ccx"])
        self.pcie.restore(snap["pcie"])
        self._bank_ingress = [deque(q) for q in snap["bank_ingress"]]
        self._mcu_ingress = [deque(q) for q in snap["mcu_ingress"]]
        self.corrupt_watch = set()
        self.corrupt_read_cycle = None
        self._recount_threads()
        self._refresh_wakes()
        self._dirty_banks = [True] * len(self.l2banks)
        self._dirty_mcus = [True] * len(self.mcus)
        self._dirty_pcie = True

    # ------------------------------------------------------------------
    # Delta capture (driven by repro.system.snapshots.SnapshotChain)
    # ------------------------------------------------------------------
    def delta_capture_begin(self) -> None:
        """Arm dirty tracking: the next :meth:`delta_snapshot` captures
        exactly what changed from this point on."""
        self.dram.start_dirty_tracking()
        for core in self.cores:
            core.delta_capture_begin()
        self._store_log_dirty = set()
        self._delta_tracking = True
        self._clear_dirty_flags()

    def delta_capture_end(self) -> None:
        """Disarm dirty tracking (no more delta captures)."""
        self.dram.stop_dirty_tracking()
        for core in self.cores:
            core.delta_capture_end()
        self._store_log_dirty = None
        self._delta_tracking = False

    def _clear_dirty_flags(self) -> None:
        for core in self.cores:
            core.dirty = False
        self._dirty_banks = [False] * len(self.l2banks)
        self._dirty_mcus = [False] * len(self.mcus)
        self._dirty_pcie = False

    def delta_snapshot(self) -> dict:
        """State changed since the previous capture (see SnapshotChain).

        Components whose dirty flag is clear are recorded as ``None``
        (the chain folds forward from the previous stored entry).  The
        reference engine cannot attribute mutations to components, so it
        conservatively treats everything as dirty -- correct, just
        without the storage savings.
        """
        if not self._delta_tracking:
            raise RuntimeError("delta_capture_begin() was not called")
        if self._compiled:
            self._settle_cores()
        c = self._obs_snap
        if c is not None:
            c.value += 1
        all_dirty = self._reference
        store_dirty = self._store_log_dirty
        last_store = self.last_store_cycle
        delta = {
            "cycle": self.cycle,
            "reqid": self._reqid,
            "last_retire_cycle": self._last_retire_cycle,
            "retired_total": self.retired_total,
            "output": dict(self.output),
            "ccx": self.ccx.snapshot(),
            "bank_ingress": [list(q) for q in self._bank_ingress],
            "mcu_ingress": [list(q) for q in self._mcu_ingress],
            "dram": self.dram.take_dirty_delta(),
            "store_log": {a: last_store[a] for a in store_dirty},
            "cores": [
                core.delta_snapshot() if (all_dirty or core.dirty) else None
                for core in self.cores
            ],
            "l2banks": [
                bank.snapshot() if (all_dirty or dirty) else None
                for bank, dirty in zip(self.l2banks, self._dirty_banks)
            ],
            "mcus": [
                mcu.snapshot() if (all_dirty or dirty) else None
                for mcu, dirty in zip(self.mcus, self._dirty_mcus)
            ],
            "pcie": (
                self.pcie.snapshot()
                if (all_dirty or self._dirty_pcie)
                else None
            ),
        }
        self._store_log_dirty = set()
        self._clear_dirty_flags()
        return delta
