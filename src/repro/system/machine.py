"""The full-system machine (accelerated mode, paper Fig. 1a).

Binds cores, crossbar, L2 banks, MCUs, the PCIe DMA engine and DRAM into
a cycle-steppable SoC.  All uncore components are pluggable: the
mixed-mode platform swaps a high-level model for an RTL adapter at
co-simulation entry and back at exit.

The machine also provides the services the analyses need:

* address-validity checking (a corrupted pointer dereference traps,
  which is how uncore errors become UT outcomes),
* the application output channel (OMM detection),
* a per-word last-store log (rollback-distance analysis, Fig. 9),
* a corrupted-line watch set (error-propagation latency, Fig. 8),
* whole-machine snapshots (the platform's 2M-cycle checkpoints).
"""

from __future__ import annotations

import bisect
import dataclasses
from collections import deque
from dataclasses import dataclass, field

from repro.core.cpu import Core, ThreadState
from repro.mem.dram import Dram
from repro.mem.l2state import L2BankState
from repro.soc.address import AddressMap
from repro.soc.packets import CpxPacket, McuReply, McuRequest, PcxPacket
from repro.system.outcome import RunResult
from repro.uncore.highlevel.ccx import HighLevelCcx
from repro.uncore.highlevel.l2c import HighLevelL2Bank
from repro.uncore.highlevel.mcu import HighLevelMcu
from repro.uncore.highlevel.pcie import HighLevelPcieDma
from repro.workloads.base import WorkloadImage


@dataclass(frozen=True)
class MachineConfig:
    """Machine geometry and timing.

    Defaults are the reproduction-scale configuration: the T2's 8 cores
    and 8 L2 banks with scaled cache capacities.  Tests use smaller
    geometries.
    """

    cores: int = 8
    threads_per_core: int = 2
    l1_words: int = 512
    l2_banks: int = 8
    l2_sets: int = 32
    l2_ways: int = 8
    mcus: int = 4
    ccx_latency: int = 3
    #: machine-wide no-retirement window that declares a Hang
    watchdog_cycles: int = 30_000
    #: absolute cycle cap (safety net; campaigns also cap at a multiple
    #: of the error-free length)
    max_cycles: int = 2_000_000

    @property
    def total_threads(self) -> int:
        return self.cores * self.threads_per_core

    def to_dict(self) -> dict:
        """Plain-dict form for the experiment-spec JSON schema."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class _DmaPort:
    """Routes PCIe DMA writes through the machine's coherent path."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine

    def write_word(self, addr: int, value: int) -> None:
        self._machine.dma_write_word(addr, value)


class Machine:
    """A cycle-steppable SoC model."""

    def __init__(self, config: MachineConfig = MachineConfig()) -> None:
        self.config = config
        self.amap = AddressMap(
            l2_banks=config.l2_banks, l2_sets=config.l2_sets, mcus=config.mcus
        )
        self.cycle = 0
        self.dram = Dram()
        self.output: dict[int, int] = {}
        self.last_store_cycle: dict[int, int] = {}
        #: store cycles per word (kept only when rollback analysis is on)
        self.track_store_log = True
        self._reqid = 1
        self._regions: list[tuple[int, int, str]] = []
        self._region_starts: list[int] = []
        self._last_retire_cycle = 0
        self.retired_total = 0
        #: word addresses known to be corrupted by an injected error;
        #: first load touching one records the propagation cycle.
        self.corrupt_watch: set[int] = set()
        self.corrupt_read_cycle: "int | None" = None

        self.ccx = HighLevelCcx(latency=config.ccx_latency)
        self.cores: list[Core] = [
            Core(
                i,
                l1_words=config.l1_words,
                issue_pcx=self._issue_pcx,
                check_addr=self._check_addr,
                write_output=self._write_output,
                alloc_reqid=self._alloc_reqid,
            )
            for i in range(config.cores)
        ]
        self.l2states: list[L2BankState] = [
            L2BankState(b, self.amap, ways=config.l2_ways)
            for b in range(config.l2_banks)
        ]
        self.l2banks: list = [
            HighLevelL2Bank(
                b,
                self.l2states[b],
                send_mcu=self._send_mcu,
                log_store=self._log_store,
            )
            for b in range(config.l2_banks)
        ]
        self.mcus: list = [
            HighLevelMcu(m, self.dram, send_reply=self._route_mcu_reply)
            for m in range(config.mcus)
        ]
        self.pcie = HighLevelPcieDma(_DmaPort(self), log_store=self._log_store)
        #: per-bank ingress FIFOs preserving arrival order under
        #: back-pressure (per-bank total order is what TSO and QRR rely on)
        self._bank_ingress: list[deque[PcxPacket]] = [
            deque() for _ in range(config.l2_banks)
        ]
        self._mcu_ingress: list[deque[McuRequest]] = [
            deque() for _ in range(config.mcus)
        ]

    # ------------------------------------------------------------------
    # Services wired into cores / uncore models
    # ------------------------------------------------------------------
    def _alloc_reqid(self) -> int:
        reqid = self._reqid
        self._reqid = (self._reqid + 1) & 0xFFFF or 1
        return reqid

    def _issue_pcx(self, pkt: PcxPacket) -> bool:
        bank = self.amap.bank_of(pkt.addr)
        self.ccx.send_pcx(bank, pkt, self.cycle)
        return True

    def _check_addr(self, addr: int) -> bool:
        if not self._region_starts:
            return False
        idx = bisect.bisect_right(self._region_starts, addr) - 1
        if idx < 0:
            return False
        base, size, _name = self._regions[idx]
        return base <= addr < base + size

    def _write_output(self, slot: int, value: int) -> None:
        self.output[slot] = value

    def _log_store(self, word_addr: int, cycle: int) -> None:
        if self.track_store_log:
            self.last_store_cycle[word_addr] = cycle

    def _send_mcu(self, req: McuRequest) -> None:
        # order-preserving per-MCU ingress; drained in step() so a
        # back-pressuring MCU (RTL request queue full) never loses requests
        self._mcu_ingress[self.amap.mcu_of_bank(req.src_bank)].append(req)

    def dma_write_word(self, addr: int, value: int) -> None:
        """Coherent device write (PCIe DMA): memory plus resident L2 copy."""
        self.dram.write_word(addr, value)
        bank = self.amap.bank_of(addr)
        server = self.l2banks[bank]
        if hasattr(server, "dma_update"):
            server.dma_update(addr, value)

    def _route_mcu_reply(self, reply: McuReply) -> None:
        self.l2banks[reply.src_bank].deliver_mcu_reply(reply)

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def alloc_region(self, base: int, size: int, name: str) -> None:
        """Register a valid memory region; overlaps are rejected."""
        if base & 7 or size <= 0:
            raise ValueError("regions must be word aligned with positive size")
        for obase, osize, oname in self._regions:
            if base < obase + osize and obase < base + size:
                raise ValueError(f"region {name!r} overlaps {oname!r}")
        self._regions.append((base, size, name))
        self._regions.sort()
        self._region_starts = [r[0] for r in self._regions]

    @property
    def regions(self) -> list[tuple[int, int, str]]:
        return list(self._regions)

    # ------------------------------------------------------------------
    # Workload loading
    # ------------------------------------------------------------------
    def load_workload(self, image: WorkloadImage, pcie_input: bool = False) -> None:
        """Install programs, regions and initial memory.

        With ``pcie_input`` set and an input file present, the file is
        DMA-transferred by the PCIe model while the application polls the
        completion flag; otherwise the input region is preloaded directly
        (the configuration used for L2C/MCU/CCX injection runs).
        """
        if image.threads() > self.config.total_threads:
            raise ValueError(
                f"workload has {image.threads()} threads; machine supports "
                f"{self.config.total_threads}"
            )
        for base, size, name in image.regions:
            self.alloc_region(base, size, name)
        for addr, value in image.init_words.items():
            self.dram.write_word(addr, value)
        tpc = self.config.threads_per_core
        for idx, program in enumerate(image.programs):
            core = self.cores[idx // tpc]
            thread = core.add_thread(program)
            if idx < len(image.thread_regs):
                for reg, value in image.thread_regs[idx].items():
                    thread.write_reg(reg, value)
        if image.input_file_words is not None:
            if pcie_input:
                self.pcie.begin_transfer(
                    image.input_file_words,
                    image.input_dest,
                    image.input_status_addr,
                    cycle=0,
                )
            else:
                for i, word in enumerate(image.input_file_words):
                    self.dram.write_word(image.input_dest + 8 * i, word)
                self.dram.write_word(image.input_status_addr, 1)

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole machine by one cycle."""
        cycle = self.cycle
        # 1. cores issue
        retired = 0
        for core in self.cores:
            if core.step(cycle):
                retired += 1
        if retired:
            self.retired_total += retired
            self._last_retire_cycle = cycle
        # 2. crossbar advances, then delivers toward banks
        #    (order-preserving per bank)
        self.ccx.tick(cycle)
        for bank, pkt in self.ccx.deliver_pcx(cycle):
            self._bank_ingress[bank].append(pkt)
        for bank_idx, ingress in enumerate(self._bank_ingress):
            server = self.l2banks[bank_idx]
            while ingress:
                if not server.accept(ingress[0], cycle):
                    break
                ingress.popleft()
        # 3. banks advance; returns go to the crossbar
        for bank_idx, server in enumerate(self.l2banks):
            for cpx in server.tick(cycle):
                self.ccx.send_cpx(cpx, cycle, src=bank_idx)
        # 4. MCUs accept queued requests and advance
        #    (replies delivered via _route_mcu_reply)
        for mcu_idx, mcu in enumerate(self.mcus):
            ingress = self._mcu_ingress[mcu_idx]
            while ingress:
                if not mcu.accept(ingress[0], cycle):
                    break
                ingress.popleft()
            mcu.tick(cycle)
        # 5. crossbar delivery toward cores
        for cpx in self.ccx.deliver_cpx(cycle):
            if self.corrupt_watch and self.corrupt_read_cycle is None:
                if (cpx.addr & ~7) in self.corrupt_watch and cpx.ctype.name in (
                    "LOAD_RET",
                    "ATOMIC_RET",
                ):
                    self.corrupt_read_cycle = cycle
            if 0 <= cpx.core < len(self.cores):
                self.cores[cpx.core].deliver_cpx(cpx)
        # 6. PCIe DMA
        self.pcie.tick(cycle)
        self.cycle = cycle + 1

    def run(
        self,
        max_cycles: "int | None" = None,
        hang_factor_cycles: "int | None" = None,
    ) -> RunResult:
        """Run until completion, trap, hang or the cycle cap.

        ``hang_factor_cycles``, when given, is an absolute cycle count
        beyond which the run is declared hung (campaigns set it to a
        multiple of the error-free length).
        """
        cap = max_cycles if max_cycles is not None else self.config.max_cycles
        if hang_factor_cycles is not None:
            cap = min(cap, hang_factor_cycles)
        watchdog = self.config.watchdog_cycles
        while True:
            done = True
            for core in self.cores:
                trap = core.any_trapped()
                if trap is not None:
                    return RunResult(
                        completed=False,
                        cycles=self.cycle,
                        output=dict(self.output),
                        trap=trap,
                        retired=self.retired_total,
                    )
                if not core.all_halted():
                    done = False
            if done:
                self._drain_uncore(limit=10_000)
                return RunResult(
                    completed=True,
                    cycles=self.cycle,
                    output=dict(self.output),
                    retired=self.retired_total,
                )
            if self.cycle >= cap or self.cycle - self._last_retire_cycle > watchdog:
                return RunResult(
                    completed=False,
                    cycles=self.cycle,
                    output=dict(self.output),
                    hung=True,
                    retired=self.retired_total,
                )
            self.step()

    def uncore_idle(self) -> bool:
        """Whether all uncore components and ingress queues are empty."""
        if any(self._bank_ingress) or any(self._mcu_ingress):
            return False
        if self.ccx.in_flight() or self.pcie.in_flight():
            return False
        if any(bank.in_flight() for bank in self.l2banks):
            return False
        return not any(mcu.in_flight() for mcu in self.mcus)

    def _drain_uncore(self, limit: int) -> None:
        """Let posted stores / writebacks / DMA complete after halt."""
        for _ in range(limit):
            if self.uncore_idle():
                return
            self.step()

    def run_cycles(self, n: int) -> None:
        """Advance exactly ``n`` cycles (no termination checks)."""
        for _ in range(n):
            self.step()

    def run_until_cycle(self, target: int) -> None:
        """Advance to an absolute cycle count."""
        while self.cycle < target:
            self.step()

    def all_halted(self) -> bool:
        return all(core.all_halted() for core in self.cores)

    def any_trap(self):
        for core in self.cores:
            trap = core.any_trapped()
            if trap is not None:
                return trap
        return None

    # ------------------------------------------------------------------
    # Snapshots (the platform's periodic checkpoints, Sec. 2.2 phase 1)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "cycle": self.cycle,
            "dram": self.dram.snapshot(),
            "output": dict(self.output),
            "last_store_cycle": dict(self.last_store_cycle),
            "reqid": self._reqid,
            "last_retire_cycle": self._last_retire_cycle,
            "retired_total": self.retired_total,
            "cores": [core.snapshot() for core in self.cores],
            "l2banks": [bank.snapshot() for bank in self.l2banks],
            "mcus": [mcu.snapshot() for mcu in self.mcus],
            "ccx": self.ccx.snapshot(),
            "pcie": self.pcie.snapshot(),
            "bank_ingress": [list(q) for q in self._bank_ingress],
            "mcu_ingress": [list(q) for q in self._mcu_ingress],
        }

    def restore(self, snap: dict) -> None:
        self.cycle = snap["cycle"]
        self.dram.restore(snap["dram"])
        self.output = dict(snap["output"])
        self.last_store_cycle = dict(snap["last_store_cycle"])
        self._reqid = snap["reqid"]
        self._last_retire_cycle = snap["last_retire_cycle"]
        self.retired_total = snap["retired_total"]
        for core, cstate in zip(self.cores, snap["cores"]):
            core.restore(cstate)
        for bank, bstate in zip(self.l2banks, snap["l2banks"]):
            bank.restore(bstate)
        for mcu, mstate in zip(self.mcus, snap["mcus"]):
            mcu.restore(mstate)
        self.ccx.restore(snap["ccx"])
        self.pcie.restore(snap["pcie"])
        self._bank_ingress = [deque(q) for q in snap["bank_ingress"]]
        self._mcu_ingress = [deque(q) for q in snap["mcu_ingress"]]
        self.corrupt_watch = set()
        self.corrupt_read_cycle = None
