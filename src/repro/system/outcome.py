"""Application-level outcome categories (paper Sec. 3.2).

The five categories, as used in the paper and the studies it follows
([Cho 13, Sanda 08, Wang 04]):

* **ONA** -- application output not affected: the run completed and the
  output matches the error-free output, but architected state was touched
  by the error (erroneous packets reached the cores or memory diverged).
* **OMM** -- application output mismatch.
* **UT** -- unexpected termination (a thread trapped).
* **HANG** -- the application stopped making progress.
* **VANISHED** -- the error disappeared without affecting anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.cpu import Trap


class Outcome(enum.Enum):
    ONA = "ONA"
    OMM = "OMM"
    UT = "UT"
    HANG = "Hang"
    VANISHED = "Vanished"

    @property
    def is_erroneous(self) -> bool:
        """Non-Vanished outcomes (the paper's erroneous-outcome metric)."""
        return self is not Outcome.VANISHED


#: Ordering used in the paper's Fig. 3 legends.
OUTCOME_ORDER = (Outcome.ONA, Outcome.OMM, Outcome.UT, Outcome.HANG, Outcome.VANISHED)


@dataclass
class RunResult:
    """Result of executing a workload to completion (or failure).

    Attributes:
        completed: every thread halted normally.
        cycles: cycle count at termination.
        output: application output slots (slot -> value).
        trap: first trap, if any thread trapped.
        hung: the watchdog or cycle cap fired.
        retired: total instructions retired.
    """

    completed: bool
    cycles: int
    output: dict[int, int] = field(default_factory=dict)
    trap: Trap | None = None
    hung: bool = False
    retired: int = 0

    @property
    def outcome_kind(self) -> str:
        if self.trap is not None:
            return "trap"
        if self.hung:
            return "hang"
        return "completed"


def classify_outcome(
    result: RunResult,
    golden_output: dict[int, int],
    error_touched_system: bool,
) -> Outcome:
    """Map a run result to the five-category outcome.

    ``error_touched_system`` is True when the injected error propagated
    beyond the target component (erroneous return packets reached the
    cores, or memory/cache state diverged from the golden copy); without
    it a matching output means the error vanished entirely.
    """
    if result.trap is not None:
        return Outcome.UT
    if result.hung:
        return Outcome.HANG
    if result.output != golden_output:
        return Outcome.OMM
    if error_touched_system:
        return Outcome.ONA
    return Outcome.VANISHED
