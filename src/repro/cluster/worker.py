"""The ``repro worker`` agent: shard cells in, bus results + events out.

One worker process owns one :class:`~repro.api.session.Session` (so
cells sharing a platform key amortize their golden run, exactly like a
process-pool worker) and loops over protocol messages on stdin:

* For each cell of a shard it first consults the shared result bus --
  a prior sweep, a peer, or an earlier attempt of a re-dispatched cell
  may already have landed the digest, making the cell a free cache hit.
* Misses run through the session and are published with the atomic
  unique-temp rename of :func:`repro.api.executor.store_cached_result`;
  ``cell_result`` is sent strictly *after* the rename, so the
  coordinator only ever counts durable results as landed.
* Executor telemetry (``cell_start``/``cell_done``/``cache_*``, the
  shapes every backend emits) is forwarded as ``event`` messages with
  the cell's grid index, and a daemon thread heartbeats liveness + RSS.

A cell that raises reports ``cell_error`` and the worker moves on; the
coordinator decides whether to retry elsewhere or compute it locally.
The agent exits on ``shutdown`` or EOF (coordinator death), never
killing the host it runs on.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

from repro.api.executor import (
    _cell_events,
    _done_event,
    load_cached_result,
    result_cache_path,
    store_cached_result,
)
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    LineChannel,
    parse_line,
)
from repro.system.machine import DEFAULT_ENGINE

from pathlib import Path


def _heartbeat_loop(channel: LineChannel, stop: threading.Event, interval: float) -> None:
    from repro.obs import rss_kb

    pid = os.getpid()
    while not stop.wait(interval):
        ok = channel.send(
            {
                "type": "heartbeat",
                "pid": pid,
                "rss_kb": rss_kb(),
                "t": round(time.time(), 6),
            }
        )
        if not ok:
            return  # stdout gone: the coordinator died; the main loop
            # will see EOF on stdin and exit


def _run_cell(
    session: Session,
    cache_dir: Path,
    spec: ExperimentSpec,
    index: int,
    total: int,
    emit,
) -> str:
    """Resolve one cell against the bus (hit) or the session (miss).

    Returns the spec digest once the result is durable in the bus.
    Event shapes mirror :class:`~repro.api.executor.CachingExecutor` and
    the serial executor exactly -- a cluster sweep's stream is the same
    dialect every other backend speaks.
    """
    path = result_cache_path(cache_dir, spec)
    digest = spec.digest()
    cached, stale = load_cached_result(path, spec)
    if cached is not None:
        emit(
            {
                "type": "cache_hit",
                "index": index,
                "total": total,
                "digest": digest,
                "label": spec.label(),
            }
        )
        return digest
    if stale:
        emit(
            {
                "type": "cache_stale",
                "index": index,
                "digest": digest,
                "label": spec.label(),
            }
        )
    emit(
        {
            "type": "cache_miss",
            "index": index,
            "digest": digest,
            "label": spec.label(),
        }
    )
    start = _cell_events(spec, index, total)
    emit(start)
    t0, cpu0 = time.perf_counter(), time.process_time()
    result = session.run(spec)
    done = _done_event(
        start,
        time.perf_counter() - t0,
        time.process_time() - cpu0,
        len(result.records),
    )
    store_cached_result(path, result)
    emit(done)
    return digest


def _run_shard(
    session: Session,
    cache_dir: Path,
    cells,
    channel: LineChannel,
    drain: "threading.Event | None" = None,
) -> None:
    def emit(event: dict) -> None:
        channel.send({"type": "event", "event": event})

    landed = 0
    for cell in cells:
        if drain is not None and drain.is_set():
            # graceful shutdown: stop *between* cells; everything
            # already run is durable on the bus and reported
            break
        index = cell.get("index", -1)
        total = cell.get("total", 0)
        try:
            spec = ExperimentSpec.from_dict(cell["spec"])
            digest = _run_cell(session, cache_dir, spec, index, total, emit)
        except Exception as exc:  # a broken cell must not kill the shard
            channel.send(
                {
                    "type": "cell_error",
                    "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            continue
        channel.send({"type": "cell_result", "index": index, "digest": digest})
        landed += 1
    channel.send({"type": "shard_done", "count": landed})


def run_worker(
    cache_dir: "str | Path",
    *,
    engine: "str | None" = None,
    worker_id: int = 0,
    heartbeat: float = 2.0,
    in_stream=None,
    out_stream=None,
) -> int:
    """The agent main loop (the body of ``repro worker``).

    ``in_stream``/``out_stream`` default to stdin/stdout; tests inject
    in-memory streams to exercise the protocol without a subprocess.
    ``heartbeat <= 0`` disables the beacon thread.

    SIGTERM/SIGINT request a graceful drain: the worker finishes the
    cell it is running (which lands durably on the bus), skips the rest
    of its shard, and exits -- the coordinator's ``stop`` path counts on
    exactly this to leave a resumable state.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    channel = LineChannel(out_stream)
    cache_dir = Path(cache_dir)
    drain = threading.Event()
    if threading.current_thread() is threading.main_thread():
        def _drain_handler(signum, frame) -> None:
            drain.set()

        try:
            signal.signal(signal.SIGTERM, _drain_handler)
            signal.signal(signal.SIGINT, _drain_handler)
        except (ValueError, OSError):
            pass  # exotic host (no signal support); drain stays inert
    session = Session(engine=engine if engine is not None else DEFAULT_ENGINE)
    channel.send(
        {
            "type": "ready",
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "worker_id": worker_id,
        }
    )
    stop = threading.Event()
    if heartbeat > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(channel, stop, heartbeat),
            name="repro-worker-heartbeat",
            daemon=True,
        ).start()
    try:
        for line in in_stream:
            message = parse_line(line)
            if message is None:
                if line.strip():
                    channel.send(
                        {
                            "type": "error",
                            "message": f"malformed message: {line[:80]!r}",
                        }
                    )
                continue
            mtype = message.get("type")
            if mtype == "shutdown":
                break
            if mtype == "shard":
                _run_shard(
                    session, cache_dir, message.get("cells", ()), channel,
                    drain=drain,
                )
                if drain.is_set():
                    break
            else:
                channel.send(
                    {
                        "type": "error",
                        "message": f"unknown message type {mtype!r}",
                    }
                )
    finally:
        stop.set()
    return 0
