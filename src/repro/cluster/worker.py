"""The ``repro worker`` agent: shard cells in, bus results + events out.

One worker process owns one :class:`~repro.api.session.Session` (so
cells sharing a platform key amortize their golden run, exactly like a
process-pool worker) and loops over protocol messages on stdin:

* For each cell of a shard it first consults the shared result bus --
  a prior sweep, a peer, or an earlier attempt of a re-dispatched cell
  may already have landed the digest, making the cell a free cache hit.
* Misses run through the session and are published with the atomic
  unique-temp rename of :func:`repro.api.executor.store_cached_result`;
  ``cell_result`` is sent strictly *after* the rename, so the
  coordinator only ever counts durable results as landed.
* Executor telemetry (``cell_start``/``cell_done``/``cache_*``, the
  shapes every backend emits) is forwarded as ``event`` messages with
  the cell's grid index, and a daemon thread heartbeats liveness + RSS.

A cell that raises reports ``cell_error`` and the worker moves on; the
coordinator decides whether to retry elsewhere or compute it locally.
The agent exits on ``shutdown`` or EOF (coordinator death), never
killing the host it runs on.

``repro worker --workers N`` upgrades the agent from a serial loop to
a supervised :class:`~repro.api.executor.ParallelExecutor` pool against
the same bus (``workers x worker_procs`` total fan-out under one
coordinator).  The protocol contract is unchanged: ``cell_result`` is
sent strictly after a result is durable (the caching layer's
``on_result`` fires after the atomic rename; a bus hit is durable by
definition), and every cell of a shard is acknowledged with
``cell_result`` or ``cell_error`` unless the agent is draining -- the
coordinator's monitor loop counts on exactly that to terminate.  Like
process-pool sweeps, pool workers fall back to the default engine
(canonical spec JSON deliberately omits it; engines are digest-neutral
so results are unaffected).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

from repro.api.executor import (
    _cell_events,
    _done_event,
    load_cached_result,
    result_cache_path,
    store_cached_result,
)
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    LineChannel,
    parse_line,
)
from repro.system.machine import DEFAULT_ENGINE

from pathlib import Path


def _heartbeat_loop(channel: LineChannel, stop: threading.Event, interval: float) -> None:
    from repro.obs import rss_kb

    pid = os.getpid()
    while not stop.wait(interval):
        ok = channel.send(
            {
                "type": "heartbeat",
                "pid": pid,
                "rss_kb": rss_kb(),
                "t": round(time.time(), 6),
            }
        )
        if not ok:
            return  # stdout gone: the coordinator died; the main loop
            # will see EOF on stdin and exit


def _run_cell(
    session: Session,
    cache_dir: Path,
    spec: ExperimentSpec,
    index: int,
    total: int,
    emit,
) -> str:
    """Resolve one cell against the bus (hit) or the session (miss).

    Returns the spec digest once the result is durable in the bus.
    Event shapes mirror :class:`~repro.api.executor.CachingExecutor` and
    the serial executor exactly -- a cluster sweep's stream is the same
    dialect every other backend speaks.
    """
    path = result_cache_path(cache_dir, spec)
    digest = spec.digest()
    cached, stale = load_cached_result(path, spec)
    if cached is not None:
        emit(
            {
                "type": "cache_hit",
                "index": index,
                "total": total,
                "digest": digest,
                "label": spec.label(),
            }
        )
        return digest
    if stale:
        emit(
            {
                "type": "cache_stale",
                "index": index,
                "digest": digest,
                "label": spec.label(),
            }
        )
    emit(
        {
            "type": "cache_miss",
            "index": index,
            "digest": digest,
            "label": spec.label(),
        }
    )
    start = _cell_events(spec, index, total)
    emit(start)
    t0, cpu0 = time.perf_counter(), time.process_time()
    result = session.run(spec)
    done = _done_event(
        start,
        time.perf_counter() - t0,
        time.process_time() - cpu0,
        len(result.records),
    )
    store_cached_result(path, result)
    emit(done)
    return digest


def _run_shard(
    session: Session,
    cache_dir: Path,
    cells,
    channel: LineChannel,
    drain: "threading.Event | None" = None,
) -> None:
    def emit(event: dict) -> None:
        channel.send({"type": "event", "event": event})

    landed = 0
    for cell in cells:
        if drain is not None and drain.is_set():
            # graceful shutdown: stop *between* cells; everything
            # already run is durable on the bus and reported
            break
        index = cell.get("index", -1)
        total = cell.get("total", 0)
        try:
            spec = ExperimentSpec.from_dict(cell["spec"])
            digest = _run_cell(session, cache_dir, spec, index, total, emit)
        except Exception as exc:  # a broken cell must not kill the shard
            channel.send(
                {
                    "type": "cell_error",
                    "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            continue
        channel.send({"type": "cell_result", "index": index, "digest": digest})
        landed += 1
    channel.send({"type": "shard_done", "count": landed})


def _run_shard_pooled(
    cache_dir: Path,
    cells,
    channel: LineChannel,
    workers: int,
    drain: "threading.Event | None" = None,
) -> None:
    """Run one shard through a supervised process pool against the bus.

    Coordinates are remapped shard-position -> grid index before any
    message leaves the agent, so the coordinator sees the exact dialect
    the serial loop speaks.  The hard invariant is the ack sweep at the
    end: every cell must report ``cell_result`` (durable) or
    ``cell_error`` (re-queueable) -- a silently dropped cell would spin
    the coordinator's monitor loop forever.  Draining is the one
    exception; the coordinator is draining too and EOF-requeues.
    """
    from repro.api.executor import (
        CachingExecutor,
        CellFailure,
        ParallelExecutor,
    )
    from repro.resilience import RetryPolicy, SweepInterrupted

    specs: list[ExperimentSpec] = []
    grid_index: list[int] = []
    grid_total = 0
    for cell in cells:
        index = cell.get("index", -1)
        try:
            spec = ExperimentSpec.from_dict(cell["spec"])
        except Exception as exc:  # malformed cell: report, keep the shard
            channel.send(
                {
                    "type": "cell_error",
                    "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            continue
        specs.append(spec)
        grid_index.append(index)
        grid_total = max(grid_total, cell.get("total", 0))
    acked: set[int] = set()  # positions in the shard's spec list
    ack_lock = threading.Lock()

    def ack(pos: int, digest: str) -> None:
        with ack_lock:
            if pos in acked:
                return
            acked.add(pos)
        channel.send(
            {"type": "cell_result", "index": grid_index[pos], "digest": digest}
        )

    def emit(event: dict) -> None:
        pos = event.get("index")
        mapped = event
        if isinstance(pos, int) and 0 <= pos < len(grid_index):
            mapped = {**event, "index": grid_index[pos]}
            if "total" in mapped:
                mapped["total"] = grid_total
        channel.send({"type": "event", "event": mapped})
        if (
            mapped.get("type") == "cache_hit"
            and isinstance(pos, int)
            and 0 <= pos < len(grid_index)
        ):
            # a bus hit is durable by definition
            ack(pos, mapped.get("digest", specs[pos].digest()))

    def on_result(pos: int, _result) -> None:
        # the caching layer calls this strictly after the atomic rename
        ack(pos, specs[pos].digest())

    executor = CachingExecutor(
        cache_dir,
        # one attempt per cell inside the agent: re-dispatch budget and
        # deadlines belong to the coordinator, which sees every failure
        ParallelExecutor(workers=workers, retry=RetryPolicy(max_attempts=1)),
    )
    failure: "str | None" = None
    if specs:
        try:
            executor.run(
                specs, on_event=emit, on_result=on_result, stop=drain
            )
        except SweepInterrupted:
            pass  # draining: unacked cells are the coordinator's to requeue
        except CellFailure as exc:
            failure = exc.reason
        except Exception as exc:  # pool machinery broke; cells survive
            failure = f"{type(exc).__name__}: {exc}"
    if drain is None or not drain.is_set():
        reason = failure or "pooled shard ended without landing this cell"
        with ack_lock:
            unacked = [
                pos for pos in range(len(specs)) if pos not in acked
            ]
        for pos in unacked:
            channel.send(
                {
                    "type": "cell_error",
                    "index": grid_index[pos],
                    "error": reason,
                }
            )
    channel.send({"type": "shard_done", "count": len(acked)})


def run_worker(
    cache_dir: "str | Path",
    *,
    engine: "str | None" = None,
    worker_id: int = 0,
    heartbeat: float = 2.0,
    workers: int = 1,
    in_stream=None,
    out_stream=None,
) -> int:
    """The agent main loop (the body of ``repro worker``).

    ``in_stream``/``out_stream`` default to stdin/stdout; tests inject
    in-memory streams to exercise the protocol without a subprocess.
    ``heartbeat <= 0`` disables the beacon thread.  ``workers > 1``
    runs each shard through a supervised process pool
    (:func:`_run_shard_pooled`) instead of the serial session loop.

    SIGTERM/SIGINT request a graceful drain: the worker finishes the
    cell it is running (which lands durably on the bus), skips the rest
    of its shard, and exits -- the coordinator's ``stop`` path counts on
    exactly this to leave a resumable state.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    channel = LineChannel(out_stream)
    cache_dir = Path(cache_dir)
    drain = threading.Event()
    if threading.current_thread() is threading.main_thread():
        def _drain_handler(signum, frame) -> None:
            drain.set()

        try:
            signal.signal(signal.SIGTERM, _drain_handler)
            signal.signal(signal.SIGINT, _drain_handler)
        except (ValueError, OSError):
            pass  # exotic host (no signal support); drain stays inert
    session = Session(engine=engine if engine is not None else DEFAULT_ENGINE)
    channel.send(
        {
            "type": "ready",
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "worker_id": worker_id,
        }
    )
    stop = threading.Event()
    if heartbeat > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(channel, stop, heartbeat),
            name="repro-worker-heartbeat",
            daemon=True,
        ).start()
    try:
        for line in in_stream:
            message = parse_line(line)
            if message is None:
                if line.strip():
                    channel.send(
                        {
                            "type": "error",
                            "message": f"malformed message: {line[:80]!r}",
                        }
                    )
                continue
            mtype = message.get("type")
            if mtype == "shutdown":
                break
            if mtype == "shard":
                if workers > 1:
                    _run_shard_pooled(
                        cache_dir, message.get("cells", ()), channel,
                        workers, drain=drain,
                    )
                else:
                    _run_shard(
                        session, cache_dir, message.get("cells", ()),
                        channel, drain=drain,
                    )
                if drain.is_set():
                    break
            else:
                channel.send(
                    {
                        "type": "error",
                        "message": f"unknown message type {mtype!r}",
                    }
                )
    finally:
        stop.set()
    return 0
