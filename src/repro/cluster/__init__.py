"""Distributed sweep fabric: shard campaigns across worker agents.

The paper's campaign space (components x benchmarks x seeds x fault
models) is embarrassingly parallel far beyond one process pool.  This
package scales the :class:`~repro.api.executor.Executor` seam past a
single machine while keeping its core contract intact -- a cluster
sweep is **byte-identical** to a serial one:

* :class:`ClusterExecutor` (:mod:`repro.cluster.coordinator`) partitions
  grid cells deterministically by spec digest, dispatches shards to
  worker agents, re-queues the unfinished cells of dead or hung workers
  with bounded retries, and merges results from the shared
  content-addressed result bus (a ``CachingExecutor`` cache directory)
  in spec order.
* ``repro worker`` (:mod:`repro.cluster.worker`) is the agent: it
  speaks newline-delimited JSON over stdin/stdout, lands canonical
  result JSON in the bus, heartbeats, and streams the standard
  per-cell telemetry events back.
* Launchers (:mod:`repro.cluster.launchers`) are the pluggable
  transport: a CI-tested localhost subprocess launcher and an ssh
  launcher behind the same interface.

Like the engine and obs switches, *where* a sweep runs is
digest-neutral: cluster execution never touches spec digests, cache
keys or canonical result bytes.
"""

from repro.api.executor import register_backend
from repro.cluster.coordinator import ClusterExecutor
from repro.cluster.launchers import (
    Launcher,
    LocalLauncher,
    SshLauncher,
    parse_launcher,
)
from repro.cluster.protocol import PROTOCOL_VERSION
from repro.cluster.worker import run_worker

__all__ = [
    "ClusterExecutor",
    "Launcher",
    "LocalLauncher",
    "PROTOCOL_VERSION",
    "SshLauncher",
    "parse_launcher",
    "run_worker",
]

register_backend(
    "cluster",
    lambda workers=2, launcher=None, cache_dir=None, engine=None, **options:
        ClusterExecutor(
            workers=workers,
            launcher=launcher,
            cache_dir=cache_dir,
            engine=engine,
            **options,
        ),
)
