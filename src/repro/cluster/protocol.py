"""The coordinator <-> worker wire protocol: newline-delimited JSON.

One JSON object per line, canonical encoding (sorted keys, compact
separators) like every other JSON artefact in the repo.  The protocol is
deliberately tiny -- the *results* never cross this channel.  Workers
land canonical result JSON in the shared content-addressed cache
directory (the result bus, see :mod:`repro.api.executor`) and only tell
the coordinator *that* a cell landed; the coordinator merges from the
bus afterwards.  That keeps the transport trivial (any byte pipe works:
a subprocess, an ssh channel) and makes retries and straggler
re-dispatch idempotent: whoever lands a cell's digest first wins, and
identical specs produce byte-identical files so the winner never
matters.

Coordinator -> worker
---------------------

* ``{"type": "shard", "cells": [{"index", "total", "spec"}, ...]}`` --
  run these grid cells (``spec`` in canonical dict form, ``index`` the
  cell's position in the full grid).  A worker may receive several
  shard messages (initial placement, then re-queued cells from dead
  peers); it processes them in order.
* ``{"type": "shutdown"}`` -- drain and exit (EOF on stdin means the
  same).

Worker -> coordinator
---------------------

* ``{"type": "ready", "protocol", "pid", "worker_id"}`` -- handshake;
  the coordinator rejects mismatched protocol versions.
* ``{"type": "heartbeat", "pid", "rss_kb", "t"}`` -- periodic liveness
  beacon; silence beyond the coordinator's timeout marks the worker
  hung and re-queues its unfinished cells.
* ``{"type": "event", "event": {...}}`` -- a forwarded executor
  telemetry event (``cell_start``/``cell_done``/``cache_*``, the exact
  shapes of :mod:`repro.api.executor`) carrying the cell's grid index,
  so the coordinator's ``on_event`` consumers (progress, traces) see
  one coherent stream across all workers.
* ``{"type": "cell_result", "index", "digest"}`` -- the cell's result
  is durably in the bus (sent strictly *after* the atomic rename).
* ``{"type": "cell_error", "index", "error"}`` -- the cell raised; the
  coordinator re-queues it (bounded) or computes it locally.
* ``{"type": "shard_done", "count"}`` -- a shard message was fully
  processed.
* ``{"type": "error", "message"}`` -- protocol-level complaint
  (malformed line, unknown message type).
"""

from __future__ import annotations

import json
import threading

#: Bump when the wire protocol changes incompatibly.  The worker sends
#: its version in the ready handshake and the coordinator refuses
#: mismatches, so a version skew across hosts fails loudly instead of
#: corrupting a sweep.
PROTOCOL_VERSION = 1


def dumps_line(message: dict) -> str:
    """One protocol message as a canonical single-line JSON string."""
    return json.dumps(message, sort_keys=True, separators=(",", ":"))


def parse_line(line: str) -> "dict | None":
    """Parse one protocol line; ``None`` for blank or non-object lines."""
    line = line.strip()
    if not line:
        return None
    try:
        message = json.loads(line)
    except ValueError:
        return None
    return message if isinstance(message, dict) else None


class LineChannel:
    """Thread-safe writer of protocol messages to a text stream.

    The worker's heartbeat thread and its cell loop share one stdout;
    the lock keeps their lines whole.  ``send`` returns ``False`` when
    the stream is gone (coordinator died, pipe closed) instead of
    raising, so senders can wind down quietly.
    """

    __slots__ = ("_stream", "_lock")

    def __init__(self, stream) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def send(self, message: dict) -> bool:
        line = dumps_line(message)
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                return False
        return True


def shard_message(cells: "list[tuple[int, dict]]", total: int) -> dict:
    """The shard dispatch for ``(index, spec_dict)`` cells."""
    return {
        "type": "shard",
        "cells": [
            {"index": index, "total": total, "spec": spec_dict}
            for index, spec_dict in cells
        ],
    }
