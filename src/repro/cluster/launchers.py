"""Pluggable worker transports: how a ``repro worker`` agent is spawned.

A launcher turns (worker id, worker CLI args) into a live process whose
stdin/stdout speak the :mod:`repro.cluster.protocol` line protocol.  Two
launchers ship:

* :class:`LocalLauncher` -- a localhost subprocess running this
  interpreter (``python -m repro.cli worker ...``).  This is the
  CI-tested path and the default.
* :class:`SshLauncher` -- the same agent over ``ssh HOST ...``,
  round-robining worker ids across the configured hosts.  It holds the
  exact same interface, so the coordinator cannot tell the transports
  apart; remote hosts need this package importable (set ``pythonpath``)
  and the cache directory must be a *shared* filesystem (the result bus
  is content-addressed files, not bytes over the wire).

Both expose ``command(worker_id, worker_args)`` separately from
``launch`` so placement and argv construction are testable without
spawning anything.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
from typing import Protocol, runtime_checkable


@runtime_checkable
class Launcher(Protocol):
    """Anything that can spawn one worker agent process."""

    def command(self, worker_id: int, worker_args: "list[str]") -> "list[str]":
        """The argv that would be spawned for ``worker_id``."""
        ...

    def launch(
        self, worker_id: int, worker_args: "list[str]"
    ) -> subprocess.Popen:
        """Spawn the agent with piped text-mode stdin/stdout."""
        ...


def _spawn(argv: "list[str]") -> subprocess.Popen:
    # line-buffered text pipes: the protocol is one JSON object per line
    return subprocess.Popen(
        argv,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        bufsize=1,
    )


class LocalLauncher:
    """Spawns worker agents as localhost subprocesses of this python."""

    def __init__(self, python: "str | None" = None) -> None:
        self.python = python if python is not None else sys.executable

    def command(self, worker_id: int, worker_args: "list[str]") -> "list[str]":
        return [self.python, "-m", "repro.cli", "worker", *worker_args]

    def launch(
        self, worker_id: int, worker_args: "list[str]"
    ) -> subprocess.Popen:
        return _spawn(self.command(worker_id, worker_args))

    def __repr__(self) -> str:  # shows up in sweep logs
        return "LocalLauncher()"


def split_host_port(host: str) -> "tuple[str, str | None]":
    """Split an ``[user@]host[:port]`` spec into (ssh target, port).

    The port is recognised only when the text after the last ``:`` is
    all digits, so bare hosts, ``user@host``, and odd hostnames pass
    through untouched (bracketed IPv6 literals are out of scope for
    this launcher).  ``user@`` stays inside the target -- ssh parses it
    natively.
    """
    head, sep, tail = host.rpartition(":")
    if sep and tail.isdigit():
        return head, tail
    return host, None


class SshLauncher:
    """Spawns worker agents over ssh, round-robin across ``hosts``.

    Hosts accept the full ``[user@]host[:port]`` spec; a port becomes
    ``ssh -p PORT``.  Every remote token is shell-quoted -- the remote
    side of ssh is a shell, so an interpreter path or ``PYTHONPATH``
    containing spaces or metacharacters must arrive as one word (plain
    tokens are left exactly as-is by the quoting).

    ``BatchMode=yes`` keeps a missing key from hanging the sweep at an
    interactive prompt -- an unreachable host just dies, which the
    coordinator's health loop treats like any other dead worker.
    """

    def __init__(
        self,
        hosts: "list[str] | tuple[str, ...]",
        python: str = "python3",
        pythonpath: "str | None" = None,
        ssh_args: "tuple[str, ...]" = ("-o", "BatchMode=yes"),
    ) -> None:
        hosts = [h for h in hosts if h]
        if not hosts:
            raise ValueError("SshLauncher needs at least one host")
        self.hosts = list(hosts)
        self.python = python
        self.pythonpath = pythonpath
        self.ssh_args = tuple(ssh_args)

    def host_for(self, worker_id: int) -> str:
        return self.hosts[worker_id % len(self.hosts)]

    def command(self, worker_id: int, worker_args: "list[str]") -> "list[str]":
        target, port = split_host_port(self.host_for(worker_id))
        remote: "list[str]" = []
        if self.pythonpath:
            remote += ["env", f"PYTHONPATH={self.pythonpath}"]
        remote += [self.python, "-m", "repro.cli", "worker", *worker_args]
        argv = ["ssh", *self.ssh_args]
        if port is not None:
            argv += ["-p", port]
        return [*argv, target, *[shlex.quote(token) for token in remote]]

    def launch(
        self, worker_id: int, worker_args: "list[str]"
    ) -> subprocess.Popen:
        return _spawn(self.command(worker_id, worker_args))

    def __repr__(self) -> str:
        return f"SshLauncher(hosts={self.hosts!r})"


def parse_launcher(text: "str | Launcher | None") -> Launcher:
    """Resolve a CLI launcher spec into a launcher instance.

    ``None``/``"local"`` -> :class:`LocalLauncher`; ``"ssh:h1,h2"`` ->
    :class:`SshLauncher` over those hosts, each accepting the full
    ``[user@]host[:port]`` form (``REPRO_CLUSTER_PYTHON`` and
    ``REPRO_CLUSTER_PYTHONPATH`` override the remote interpreter and
    import path).  An already-built launcher passes through.
    """
    if text is None:
        return LocalLauncher()
    if not isinstance(text, str):
        return text
    if text == "local":
        return LocalLauncher()
    if text.startswith("ssh:"):
        hosts = [h.strip() for h in text[len("ssh:"):].split(",") if h.strip()]
        return SshLauncher(
            hosts,
            python=os.environ.get("REPRO_CLUSTER_PYTHON", "python3"),
            pythonpath=os.environ.get("REPRO_CLUSTER_PYTHONPATH"),
        )
    raise ValueError(
        f"unknown launcher spec {text!r}; use 'local' or 'ssh:host1,host2'"
    )
