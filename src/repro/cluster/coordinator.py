"""The cluster coordinator: deterministic shards, a content-addressed
result bus, and bounded retries around disposable worker agents.

:class:`ClusterExecutor` is an :class:`~repro.api.executor.Executor`
backend, so it holds the seam's core contract: a multi-worker cluster
sweep returns results **in spec order** whose canonical JSON is
**byte-identical** to :class:`~repro.api.executor.SerialExecutor` on
the same grid.  The design makes that property structural rather than
carefully maintained:

* Cells are partitioned by spec digest (:func:`shard_by_digest`) --
  placement is a pure function of content, never of timing.
* Workers do not return results over the wire.  They land canonical
  result JSON in the shared cache directory (the *result bus*, the same
  store :class:`~repro.api.executor.CachingExecutor` reads) and merely
  report that a digest landed.
* After the distributed phase, the coordinator merges by running a
  ``CachingExecutor`` over the full spec list against the bus: every
  landed cell is a byte-identical cache hit in spec order, and any cell
  the cluster failed to produce (all retries exhausted, every worker
  dead) is computed locally -- the sweep *degrades* to serial, it never
  returns partial results.

Failure handling: workers heartbeat; one that exits (crash, SIGKILL) or
goes silent past the timeout is declared dead, its unfinished cells are
re-queued to surviving workers with a bounded per-cell retry budget,
and cells over budget fall through to the local merge pass.  Because a
retried cell's result may already have landed (the first attempt died
*after* the atomic rename), every retry starts with a bus lookup -- a
straggler re-dispatch is a free cache hit, never duplicated work.

With a :class:`~repro.resilience.RetryPolicy` the same machinery gains
per-cell wall-clock deadlines (a cell running past ``cell_timeout``
gets its hosting worker killed -- the process boundary, not
cooperation, ends a wedged simulation -- and re-queues) and
deterministic digest-derived backoff on every re-queue.  A ``stop``
event (:class:`~repro.resilience.GracefulShutdown`) drains the cluster:
workers get SIGTERM, finish and land their in-flight cell, and the run
raises :class:`~repro.resilience.SweepInterrupted` with everything
durable on the bus for ``repro sweep --resume``.

Telemetry: forwarded worker events feed the coordinator's ``on_event``
callback with the standard shapes (grid-indexed ``cell_start``/
``cell_done``/``cache_*`` with the executing worker's pid, which the
trace layer maps to per-worker tracks), plus cluster-specific
``worker_heartbeat`` and ``worker_dead`` events for progress accounting
and per-worker RSS gauges.
"""

from __future__ import annotations

import queue as queue_mod
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.api.executor import (
    CachingExecutor,
    OnEvent,
    OnResult,
    SerialExecutor,
    _emitter,
    _safe_emit,
    shard_by_digest,
)
from repro.api.result import ExperimentResult
from repro.api.spec import ExperimentSpec
from repro.cluster.launchers import Launcher, LocalLauncher, parse_launcher
from repro.resilience.retry import RetryPolicy
from repro.resilience.shutdown import SweepInterrupted
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    dumps_line,
    parse_line,
    shard_message,
)


class _Agent:
    """Coordinator-side handle for one worker process.

    A dedicated writer thread drains ``outbox`` into the worker's stdin
    so the monitor loop never blocks on a full pipe, and a reader
    thread parses everything the worker says.  ``assigned`` tracks the
    cell indices this worker owes; the health loop re-queues them if
    the worker dies.
    """

    def __init__(self, wid: int, proc) -> None:
        self.wid = wid
        self.proc = proc
        self.pid: "int | None" = getattr(proc, "pid", None)
        self.assigned: set[int] = set()
        self.last_seen = time.monotonic()
        self.dead = False
        self.protocol_ok = True
        self.outbox: "queue_mod.Queue[dict | None]" = queue_mod.Queue()
        self.reader: "threading.Thread | None" = None
        self.writer: "threading.Thread | None" = None

    def send(self, message: dict) -> None:
        self.outbox.put(message)

    def close_outbox(self) -> None:
        self.outbox.put(None)


class ClusterExecutor:
    """Shards a spec list across worker agents over a result bus.

    Args:
        workers: number of worker agents to launch.
        launcher: transport (default :class:`LocalLauncher`; also
            accepts a CLI spec string like ``"ssh:host1,host2"``).
        cache_dir: the shared result bus directory.  ``None`` uses a
            private temporary directory torn down after the run (fine
            for localhost; ssh workers need a shared path).
        engine: digest-neutral cycle engine the workers run.  ``None``
            infers a uniform ``spec.engine`` from the batch, else the
            default -- mirroring how process-pool workers fall back
            because canonical spec JSON deliberately omits the engine.
        max_retries: re-dispatch budget per cell before it falls back
            to the local merge pass.
        heartbeat_interval: worker beacon period (seconds).
        heartbeat_timeout: silence beyond this marks a worker hung and
            re-queues its cells (default: ``max(15, 10 * interval)``).
        retry: a :class:`repro.resilience.RetryPolicy` unifying the
            re-dispatch budget (``max_attempts = max_retries + 1``),
            deterministic backoff delays on re-queue, and a per-cell
            wall-clock deadline -- a cell running past
            ``retry.cell_timeout`` gets its hosting worker killed (the
            process boundary is the only reliable way to stop a wedged
            simulation) and re-queues with the usual budget.
        worker_procs: sub-process pool size *inside* each worker agent
            (``repro worker --workers N``): the agent runs its shard
            through a supervised :class:`ParallelExecutor` against the
            bus instead of serially, multiplying fan-out to
            ``workers x worker_procs`` processes.  1 keeps the classic
            serial agent.
    """

    def __init__(
        self,
        workers: int = 2,
        launcher: "Launcher | str | None" = None,
        cache_dir: "str | Path | None" = None,
        *,
        engine: "str | None" = None,
        max_retries: int = 2,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
        worker_procs: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if worker_procs < 1:
            raise ValueError("worker_procs must be at least 1")
        self.workers = workers
        self.worker_procs = worker_procs
        self.launcher = parse_launcher(launcher)
        self.cache_dir = cache_dir
        self.engine = engine
        self.retry = retry
        self.max_retries = (
            retry.max_attempts - 1 if retry is not None else max_retries
        )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else max(15.0, heartbeat_interval * 10.0)
        )
        #: stats of the most recent :meth:`run` (logs and tests)
        self.last_worker_deaths = 0
        self.last_requeued = 0
        self.last_fallback = 0
        self.last_timeouts = 0
        # per-run working state (set by _run_distributed)
        self._spec_dict_cache: "list[dict]" = []
        self._digest_cache: "list[str]" = []
        self._label_cache: "list[str]" = []
        self._emit_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
        stop: "threading.Event | None" = None,
        on_result: "OnResult | None" = None,
    ) -> list[ExperimentResult]:
        specs = list(specs)
        if not specs:
            return []
        emit = _emitter(on_event)
        self.last_worker_deaths = 0
        self.last_requeued = 0
        self.last_fallback = 0
        self.last_timeouts = 0
        owns_bus = self.cache_dir is None
        bus = (
            Path(tempfile.mkdtemp(prefix="repro-cluster-"))
            if owns_bus
            else Path(self.cache_dir)
        )
        try:
            landed = self._run_distributed(specs, bus, emit, stop)
            if stop is not None and stop.is_set():
                # drained: every in-flight cell finished and landed;
                # skipping the merge keeps the exit fast and resumable
                raise SweepInterrupted(done=len(landed), total=len(specs))
            return self._merge(specs, bus, landed, emit, stop, on_result)
        finally:
            if owns_bus:
                shutil.rmtree(bus, ignore_errors=True)

    # ------------------------------------------------------------------
    # distributed phase
    # ------------------------------------------------------------------
    def _worker_args(self, bus: Path, wid: int, engine: "str | None") -> list:
        args = [
            "--cache-dir",
            str(bus),
            "--worker-id",
            str(wid),
            "--heartbeat",
            str(self.heartbeat_interval),
        ]
        if engine is not None:
            args += ["--engine", engine]
        if self.worker_procs > 1:
            args += ["--workers", str(self.worker_procs)]
        return args

    def _batch_engine(self, specs: list) -> "str | None":
        """The engine workers should run: explicit wins, else a uniform
        per-spec engine (engines are digest-neutral, so this only keeps
        performance comparisons honest, never correctness)."""
        if self.engine is not None:
            return self.engine
        engines = {spec.engine for spec in specs}
        if len(engines) == 1:
            return engines.pop()
        return None

    def _run_distributed(
        self, specs: list, bus: Path, emit, stop=None
    ) -> set[int]:
        from repro import obs

        total = len(specs)
        st: dict = {
            "lock": threading.Lock(),
            "landed": set(),     # indices with durable bus results
            "retries": {},       # index -> requeue count
            "abandoned": set(),  # budget spent; merge computes locally
            "pending": [],       # (ready_at, index, spec_dict) backoffs
            "running": {},       # index -> (agent, started_monotonic)
        }
        engine = self._batch_engine(specs)
        spec_dicts = [spec.to_dict() for spec in specs]
        self._spec_dict_cache = spec_dicts
        self._digest_cache = [spec.digest() for spec in specs]
        self._label_cache = [spec.label() for spec in specs]

        shards = shard_by_digest(specs, self.workers)
        agents: list[_Agent] = []
        for wid, shard in enumerate(shards):
            agent = self._launch(wid, bus, engine)
            agents.append(agent)
            self._start_io(agent, st, emit)
            if not agent.dead and shard:
                cells = [(index, spec_dicts[index]) for index, _ in shard]
                with st["lock"]:
                    agent.assigned |= {index for index, _ in shard}
                agent.send(shard_message(cells, total))

        obs.gauge("cluster.workers_alive").set(
            sum(1 for a in agents if not a.dead)
        )
        lock = st["lock"]
        landed, abandoned, pending = (
            st["landed"], st["abandoned"], st["pending"],
        )
        try:
            while True:
                with lock:
                    outstanding = total - len(landed) - len(abandoned)
                    if outstanding <= 0:
                        break
                if stop is not None and stop.is_set():
                    # graceful drain: SIGTERM asks each worker to stop
                    # *between* cells -- in-flight cells finish and land
                    # before the worker exits (see run_worker)
                    for agent in agents:
                        if not agent.dead:
                            try:
                                agent.proc.terminate()
                            except OSError:
                                pass
                    break
                now = time.monotonic()
                for agent in agents:
                    if agent.dead:
                        continue
                    exited = agent.proc.poll() is not None
                    hung = (
                        now - agent.last_seen > self.heartbeat_timeout
                    ) or not agent.protocol_ok
                    if exited or hung:
                        self._declare_dead(agent, st, emit, kill=not exited)
                        obs.gauge("cluster.workers_alive").set(
                            sum(1 for a in agents if not a.dead)
                        )
                if (
                    self.retry is not None
                    and self.retry.cell_timeout is not None
                ):
                    if self._enforce_deadlines(st, emit):
                        obs.gauge("cluster.workers_alive").set(
                            sum(1 for a in agents if not a.dead)
                        )
                alive = [a for a in agents if not a.dead]
                with lock:
                    now = time.monotonic()
                    requeue = [(i, d) for (t, i, d) in pending if t <= now]
                    if alive:
                        pending[:] = [
                            (t, i, d) for (t, i, d) in pending if t > now
                        ]
                    else:
                        # backoff delays are moot with nobody to run them
                        requeue += [(i, d) for (t, i, d) in pending if t > now]
                        pending[:] = []
                if requeue:
                    if alive:
                        target = min(alive, key=lambda a: len(a.assigned))
                        with lock:
                            target.assigned |= {i for i, _ in requeue}
                        target.send(shard_message(requeue, total))
                    else:
                        # nobody left to run them: the merge pass will
                        with lock:
                            abandoned.update(i for i, _ in requeue)
                        continue
                if not alive:
                    with lock:
                        remaining = (
                            set(range(total)) - landed - abandoned
                        )
                        abandoned |= remaining
                    break
                time.sleep(0.05)
        finally:
            self._shutdown(agents)
        with lock:
            return set(landed)

    def _launch(self, wid: int, bus: Path, engine: "str | None") -> _Agent:
        try:
            proc = self.launcher.launch(
                wid, self._worker_args(bus, wid, engine)
            )
        except OSError as exc:
            from repro.api.executor import logger

            logger.warning("cluster worker %d failed to launch: %s", wid, exc)
            agent = _Agent(wid, _DeadProc())
            agent.dead = True
            return agent
        return _Agent(wid, proc)

    def _start_io(self, agent, st, emit) -> None:
        if agent.dead:
            return
        agent.reader = threading.Thread(
            target=self._read_loop,
            args=(agent, st, emit),
            name=f"repro-cluster-read-{agent.wid}",
            daemon=True,
        )
        agent.writer = threading.Thread(
            target=self._write_loop,
            args=(agent,),
            name=f"repro-cluster-write-{agent.wid}",
            daemon=True,
        )
        agent.reader.start()
        agent.writer.start()

    def _write_loop(self, agent: _Agent) -> None:
        stdin = agent.proc.stdin
        while True:
            message = agent.outbox.get()
            if message is None:
                break
            try:
                stdin.write(dumps_line(message) + "\n")
                stdin.flush()
            except (OSError, ValueError):
                break  # pipe gone; the health loop re-queues the cells
        try:
            stdin.close()
        except (OSError, ValueError):
            pass

    def _read_loop(self, agent, st, emit) -> None:
        try:
            for line in agent.proc.stdout:
                message = parse_line(line)
                if message is None:
                    continue
                agent.last_seen = time.monotonic()
                self._handle(agent, message, st, emit)
        except (OSError, ValueError):
            pass  # stream torn down mid-read (kill/shutdown race)

    def _handle(self, agent, message, st, emit) -> None:
        from repro import obs
        from repro.api.executor import logger

        lock = st["lock"]
        mtype = message.get("type")
        if mtype == "event":
            event = message.get("event")
            if isinstance(event, dict):
                # shadow the stream to know which agent runs which cell
                # right now -- the handle the deadline enforcer kills by
                etype = event.get("type")
                index = event.get("index")
                if isinstance(index, int):
                    if etype == "cell_start":
                        with lock:
                            st["running"][index] = (agent, time.monotonic())
                    elif etype in ("cell_done", "cache_hit"):
                        with lock:
                            st["running"].pop(index, None)
                self._forward(emit, event)
        elif mtype == "cell_result":
            index = message.get("index")
            with lock:
                if isinstance(index, int):
                    st["landed"].add(index)
                    st["running"].pop(index, None)
                agent.assigned.discard(index)
        elif mtype == "heartbeat":
            self._forward(
                emit,
                {
                    "type": "worker_heartbeat",
                    "worker": message.get("pid"),
                    "rss_kb": message.get("rss_kb", 0),
                    "t": message.get("t"),
                },
            )
        elif mtype == "cell_error":
            index = message.get("index")
            logger.warning(
                "cluster worker %d failed cell %s: %s",
                agent.wid, index, message.get("error"),
            )
            if isinstance(index, int):
                with lock:
                    agent.assigned.discard(index)
                    st["running"].pop(index, None)
                    self._requeue_locked(
                        [index], st, emit,
                        reason=str(message.get("error", "cell_error")),
                    )
        elif mtype == "ready":
            agent.pid = message.get("pid", agent.pid)
            if message.get("protocol") != PROTOCOL_VERSION:
                logger.error(
                    "cluster worker %d speaks protocol %r, coordinator "
                    "speaks %r; dropping it",
                    agent.wid, message.get("protocol"), PROTOCOL_VERSION,
                )
                agent.protocol_ok = False
        elif mtype == "error":
            logger.warning(
                "cluster worker %d: %s", agent.wid, message.get("message")
            )
        elif mtype == "shard_done":
            obs.counter("cluster.shards_done").inc()
        # unknown message types are ignored: newer workers may gain
        # advisory messages without breaking older coordinators

    def _forward(self, emit, event: dict) -> None:
        # reader threads are per-worker; serialize delivery so on_event
        # consumers (progress state, trace writers) never interleave
        with self._emit_lock:
            _safe_emit(emit, event)

    def _requeue_locked(
        self, indices, st, emit, reason: str = "worker died"
    ) -> int:
        """Re-queue cells (caller holds the state lock); returns how
        many still had retry budget.  Re-queues carry a deterministic
        backoff delay when a :class:`RetryPolicy` is set, and each
        transition streams as ``cell_retry`` / ``cell_exhausted``."""
        from repro import obs

        retries = st["retries"]
        requeued = 0
        for index in indices:
            retries[index] = retries.get(index, 0) + 1
            attempt = retries[index]
            if attempt > self.max_retries:
                st["abandoned"].add(index)
                self._forward(
                    emit,
                    {
                        "type": "cell_exhausted",
                        "index": index,
                        "digest": self._digest_cache[index],
                        "label": self._label_cache[index],
                        "attempt": attempt,
                        "error": reason,
                    },
                )
            else:
                delay = (
                    self.retry.backoff(self._digest_cache[index], attempt)
                    if self.retry is not None
                    else 0.0
                )
                st["pending"].append(
                    (
                        time.monotonic() + delay,
                        index,
                        self._spec_dict_cache[index],
                    )
                )
                self._forward(
                    emit,
                    {
                        "type": "cell_retry",
                        "index": index,
                        "digest": self._digest_cache[index],
                        "label": self._label_cache[index],
                        "attempt": attempt,
                        "delay": round(delay, 6),
                        "error": reason,
                    },
                )
                requeued += 1
        if requeued:
            self.last_requeued += requeued
            obs.counter("cluster.cells_requeued").inc(requeued)
        return requeued

    def _enforce_deadlines(self, st, emit) -> bool:
        """Kill the worker hosting any cell past ``retry.cell_timeout``
        (SIGKILL works on SIGSTOPped processes too, so a *frozen* worker
        cannot dodge the deadline); its cells re-queue through the
        normal dead-worker path.  Returns whether anyone died."""
        from repro import obs

        timeout = self.retry.cell_timeout
        now = time.monotonic()
        with st["lock"]:
            over = [
                (index, agent)
                for index, (agent, t0) in st["running"].items()
                if now - t0 > timeout and index not in st["landed"]
            ]
        doomed: list = []
        for index, agent in over:
            if agent.dead:
                continue
            self.last_timeouts += 1
            obs.counter("cluster.cell_timeouts").inc()
            self._forward(
                emit,
                {
                    "type": "cell_timeout",
                    "index": index,
                    "digest": self._digest_cache[index],
                    "label": self._label_cache[index],
                    "worker": agent.pid,
                    "attempt": st["retries"].get(index, 0) + 1,
                    "timeout": timeout,
                },
            )
            with st["lock"]:
                st["running"].pop(index, None)
            if agent not in doomed:
                doomed.append(agent)
        for agent in doomed:
            self._declare_dead(agent, st, emit, kill=True)
        return bool(doomed)

    def _declare_dead(self, agent, st, emit, kill: bool) -> None:
        from repro import obs
        from repro.api.executor import logger

        agent.dead = True
        if kill:
            try:
                agent.proc.kill()
            except OSError:
                pass
        with st["lock"]:
            lost = sorted(agent.assigned - st["landed"])
            agent.assigned.clear()
            for index in [
                i for i, (a, _) in st["running"].items() if a is agent
            ]:
                st["running"].pop(index, None)
            self._requeue_locked(lost, st, emit)
        self.last_worker_deaths += 1
        obs.counter("cluster.worker_deaths").inc()
        logger.warning(
            "cluster worker %d (pid %s) died%s; re-queued %d unfinished "
            "cells", agent.wid, agent.pid,
            " (heartbeat timeout)" if kill else "", len(lost),
        )
        self._forward(
            emit,
            {
                "type": "worker_dead",
                "worker": agent.pid,
                "requeued": lost,
            },
        )

    def _shutdown(self, agents: list) -> None:
        for agent in agents:
            if agent.dead:
                agent.close_outbox()
                continue
            agent.send({"type": "shutdown"})
            agent.close_outbox()
        deadline = time.monotonic() + 5.0
        for agent in agents:
            if isinstance(agent.proc, _DeadProc):
                continue
            try:
                agent.proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except Exception:
                try:
                    agent.proc.kill()
                except OSError:
                    pass
            if agent.reader is not None:
                agent.reader.join(timeout=2.0)
            if agent.writer is not None:
                agent.writer.join(timeout=2.0)

    # ------------------------------------------------------------------
    # merge phase
    # ------------------------------------------------------------------
    def _merge(
        self, specs: list, bus: Path, landed: set, emit,
        stop=None, on_result=None,
    ) -> list[ExperimentResult]:
        """Collect results from the bus in spec order.

        Every landed cell is a byte-identical cache hit; anything the
        cluster failed to land is computed locally here, so the sweep
        degrades to serial instead of failing or going partial.  The
        event filter keeps telemetry coherent: landed cells already
        streamed their events from workers, so only locally-computed
        fallback cells may emit again.
        """
        from repro import obs

        fallback = {i for i in range(len(specs)) if i not in landed}
        self.last_fallback = len(fallback)
        if fallback:
            obs.counter("cluster.cells_fallback").inc(len(fallback))
        merge_emit = None
        if emit is not None and fallback:
            def merge_emit(event: dict) -> None:
                if event.get("index") in fallback:
                    emit(event)

        merged = CachingExecutor(bus, SerialExecutor(retry=self.retry))
        results = merged.run(
            specs, on_event=merge_emit, stop=stop, on_result=on_result
        )
        return results


class _DeadProc:
    """Placeholder process for a worker that never launched."""

    pid = None
    stdin = None
    stdout = ()

    def poll(self) -> int:
        return -1

    def wait(self, timeout=None) -> int:
        return -1

    def kill(self) -> None:
        pass

    def terminate(self) -> None:
        pass
