"""Executor progress streaming: state tracking and live rendering.

Executors emit plain-dict events through their optional ``on_event``
callback (see :mod:`repro.api.executor`):

* ``cell_start`` -- a cell began executing (``index``, ``digest``,
  ``label``, ``worker`` pid, ``t`` wall time).
* ``cell_done`` -- a cell finished (``seconds``, ``cpu_seconds``,
  ``rss_kb`` of the executing worker, ``records``).
* ``cache_hit`` / ``cache_miss`` / ``cache_stale`` -- the caching
  executor resolved a cell against the on-disk store (``stale`` =
  corrupt or mismatched entry, recomputed).
* ``worker_heartbeat`` / ``worker_dead`` -- cluster coordinator
  liveness stream: a worker agent's periodic RSS beacon, and the
  declaration that one died (its unfinished cells were re-queued, so
  their ``cell_start`` entries resolve later from another worker).
* ``cell_retry`` / ``cell_timeout`` / ``cell_exhausted`` -- the
  resilience layer re-queued a failed attempt, killed a cell past its
  wall-clock deadline, or spent a cell's whole attempt budget
  (:class:`repro.resilience.RetryPolicy`).

:class:`ProgressState` folds the stream into campaign-level facts
(done counts, cells/sec, ETA, cache hit rate, per-worker RSS) and
produces a coherent final :meth:`report` even when terminal events are
missing -- a killed worker leaves its cells in ``incomplete`` instead
of wedging the accounting.  :class:`ProgressRenderer` draws the live
one-line view ``repro sweep --progress`` shows.
"""

from __future__ import annotations

import sys
import time


class ProgressState:
    """Folds executor events into live campaign state."""

    def __init__(self, total: "int | None" = None) -> None:
        self.total = total
        self.started: set[int] = set()
        self.done: set[int] = set()
        self.done_digests: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.records = 0
        self.worker_rss_kb: dict[int, int] = {}
        self.worker_deaths = 0
        self.retries = 0
        self.timeouts = 0
        self.exhausted: set[int] = set()
        self.t_start = time.monotonic()
        self.last_event: "dict | None" = None
        self.malformed = 0

    # ------------------------------------------------------------------
    def handle(self, event: dict) -> None:
        """Fold one event (unknown/malformed events are tallied, never
        raised -- progress must not be able to break a run)."""
        if not isinstance(event, dict) or "type" not in event:
            self.malformed += 1
            return
        self.last_event = event
        etype = event["type"]
        if etype == "cell_start":
            if self.total is None and "total" in event:
                self.total = event["total"]
            if "index" in event:
                self.started.add(event["index"])
        elif etype == "cell_done":
            if "index" in event:
                self.started.add(event["index"])
                self.done.add(event["index"])
            if "digest" in event:
                self.done_digests.add(event["digest"])
            self.records += event.get("records", 0)
            worker = event.get("worker")
            if worker is not None and "rss_kb" in event:
                self.worker_rss_kb[worker] = event["rss_kb"]
        elif etype == "cache_hit":
            self.hits += 1
            if "index" in event:
                # a hit is a terminal state for its cell
                self.started.add(event["index"])
                self.done.add(event["index"])
        elif etype == "cache_miss":
            self.misses += 1
        elif etype == "cache_stale":
            self.stale += 1
        elif etype == "worker_heartbeat":
            worker = event.get("worker")
            if worker is not None and "rss_kb" in event:
                self.worker_rss_kb[worker] = event["rss_kb"]
        elif etype == "worker_dead":
            self.worker_deaths += 1
            self.worker_rss_kb.pop(event.get("worker"), None)
        elif etype == "cell_retry":
            self.retries += 1
        elif etype == "cell_timeout":
            self.timeouts += 1
        elif etype == "cell_exhausted":
            if "index" in event:
                self.exhausted.add(event["index"])
        else:
            self.malformed += 1

    # ------------------------------------------------------------------
    # derived facts
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return time.monotonic() - self.t_start

    def cells_per_sec(self) -> float:
        dt = self.elapsed()
        return len(self.done) / dt if dt > 0 else 0.0

    def eta_seconds(self) -> "float | None":
        """Projected seconds to completion (None before it's estimable)."""
        if self.total is None or not self.done:
            return None
        rate = self.cells_per_sec()
        if rate <= 0:
            return None
        return max(0.0, (self.total - len(self.done)) / rate)

    def cache_hit_rate(self) -> "float | None":
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else None

    def incomplete(self) -> set[int]:
        """Cells that started but never reported a terminal event (the
        footprint of a killed or lost worker)."""
        return self.started - self.done

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """The coherent final summary (valid even mid-run or after a
        worker died: ``done + incomplete == started`` always holds)."""
        return {
            "total": self.total,
            "started": len(self.started),
            "done": len(self.done),
            "incomplete": sorted(self.incomplete()),
            "records": self.records,
            "cache": {
                "hits": self.hits,
                "misses": self.misses,
                "stale": self.stale,
            },
            "elapsed_seconds": round(self.elapsed(), 3),
            "cells_per_sec": round(self.cells_per_sec(), 3),
            "workers": len(self.worker_rss_kb),
            "worker_rss_kb": dict(sorted(self.worker_rss_kb.items())),
            "worker_deaths": self.worker_deaths,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "exhausted": sorted(self.exhausted),
            "malformed_events": self.malformed,
        }

    def update_registry(self) -> None:
        """Mirror the live state into the obs metrics registry (no-ops
        while the layer is disabled), so ``repro top`` snapshots show
        the running campaign."""
        from repro import obs

        obs.gauge("sweep.cells_total").set(self.total or 0)
        obs.gauge("sweep.cells_done").set(len(self.done))
        obs.gauge("sweep.cells_per_sec").set(round(self.cells_per_sec(), 3))
        obs.gauge("sweep.records").set(self.records)
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            obs.gauge("sweep.cache_hit_rate").set(round(hit_rate, 4))
        if self.worker_deaths:
            obs.gauge("sweep.worker_deaths").set(self.worker_deaths)
        if self.retries:
            obs.gauge("sweep.cell_retries").set(self.retries)
        if self.timeouts:
            obs.gauge("sweep.cell_timeouts").set(self.timeouts)
        if self.exhausted:
            obs.gauge("sweep.cells_exhausted").set(len(self.exhausted))
        for worker, rss in self.worker_rss_kb.items():
            obs.gauge("worker.rss_kb", labels={"worker": str(worker)}).set(rss)


def _fmt_eta(seconds: "float | None") -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressRenderer:
    """Draws :class:`ProgressState` as a live single-line view.

    On a TTY the line rewrites in place (``\\r``); otherwise one line is
    printed per refresh interval so CI logs stay bounded.
    """

    def __init__(
        self,
        state: ProgressState,
        stream=None,
        min_interval: float = 0.5,
    ) -> None:
        self.state = state
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_render = 0.0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def line(self) -> str:
        state = self.state
        total = state.total if state.total is not None else "?"
        parts = [
            f"cells {len(state.done)}/{total}",
            f"{state.cells_per_sec():.2f}/s",
            f"eta {_fmt_eta(state.eta_seconds())}",
        ]
        hit_rate = state.cache_hit_rate()
        if hit_rate is not None:
            parts.append(
                f"cache {state.hits}h/{state.misses}m ({hit_rate:.0%})"
            )
        if state.worker_rss_kb:
            peak = max(state.worker_rss_kb.values())
            parts.append(
                f"workers {len(state.worker_rss_kb)} "
                f"(peak rss {peak / 1024:.0f}MB)"
            )
        if state.worker_deaths:
            parts.append(f"deaths {state.worker_deaths}")
        if state.retries or state.timeouts:
            parts.append(f"retries {state.retries}/{state.timeouts}to")
        return "sweep: " + "  ".join(parts)

    def maybe_render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        try:
            if self._tty:
                self.stream.write("\r\x1b[2K" + self.line())
            else:
                self.stream.write(self.line() + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass  # a closed/broken stream must never break the run

    def finish(self) -> None:
        """Final render plus a newline to release the live line."""
        self.maybe_render(force=True)
        if self._tty:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
