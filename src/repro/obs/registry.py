"""The process-local metrics registry (counters, gauges, timers,
bounded histograms).

Design constraints, in order:

1. **Near-zero cost when disabled.**  :func:`counter` and friends
   return shared *null* singletons unless the layer is enabled
   (``REPRO_OBS=1`` or :func:`enable`).  Null mutators are no-op
   methods on empty-slot objects -- nothing is registered, allocated or
   formatted.  Hot loops go further: they check an attribute cached at
   construction time (see ``Machine._obs``) and skip the call entirely.
2. **No dict lookups in hot paths.**  Metric objects are plain
   ``__slots__`` records; call sites fetch them once (the registry
   lookup) and then mutate attributes directly (``c.value += 1``).
3. **Digest-neutral.**  Metrics never feed back into simulation state,
   RNG streams, spec digests or canonical result bytes.

Enablement is sampled *when a metric handle is requested*: code that
caches handles at construction freezes the decision for that object
(documented on the call sites), code that requests per event follows
the current state.  :func:`enable` also exports ``REPRO_OBS=1`` so
executor worker processes inherit the setting.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
import time

#: Default histogram bucket bounds (seconds-flavoured, exponential).
DEFAULT_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_ENABLED = os.environ.get("REPRO_OBS", "") not in ("", "0")


def enabled() -> bool:
    """Whether the metrics layer is on (``REPRO_OBS=1`` / ``--obs``)."""
    return _ENABLED


def enable() -> None:
    """Turn the metrics layer on (and export ``REPRO_OBS=1`` so worker
    processes spawned from here inherit it)."""
    global _ENABLED
    _ENABLED = True
    os.environ["REPRO_OBS"] = "1"


def disable() -> None:
    """Turn the metrics layer off (and clear ``REPRO_OBS``)."""
    global _ENABLED
    _ENABLED = False
    os.environ.pop("REPRO_OBS", None)


# ----------------------------------------------------------------------
# metric types
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count.  Mutate via :meth:`inc` or, in
    hot loops, ``c.value += n`` on a cached handle."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: "dict | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Gauge:
    """A point-in-time value (cells/sec, RSS, queue depth)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: "dict | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Timer:
    """Accumulated monotonic wall time over a number of sections.

    ``with timer.time(): ...`` for scoped use; :meth:`wrap` produces a
    timed replacement for a bound method (the sanctioned successor of
    the bench harness's old ``wrap()`` monkey-patch timer).
    """

    __slots__ = ("name", "labels", "seconds", "count")
    kind = "timer"

    def __init__(self, name: str, labels: "dict | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds: float, n: int = 1) -> None:
        self.seconds += seconds
        self.count += n

    def time(self) -> "_TimerSection":
        return _TimerSection(self)

    def wrap(self, fn):
        """A callable timing every invocation of ``fn`` into this timer."""
        perf = time.perf_counter

        def timed(*args, **kwargs):
            t0 = perf()
            try:
                return fn(*args, **kwargs)
            finally:
                self.seconds += perf() - t0
                self.count += 1

        timed.__wrapped__ = fn
        return timed

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "seconds": round(self.seconds, 6),
            "count": self.count,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class _TimerSection:
    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerSection":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(time.perf_counter() - self._t0)


class Histogram:
    """A bounded histogram with fixed bucket bounds (no per-sample
    allocation; one bisect per observation)."""

    __slots__ = ("name", "labels", "bounds", "buckets", "count", "total")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: "tuple | None" = None,
        labels: "dict | None" = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        #: one bucket per bound plus the +Inf overflow bucket
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": round(self.total, 6),
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


# ----------------------------------------------------------------------
# null twins (returned while the layer is disabled)
# ----------------------------------------------------------------------
class _NullMetric:
    __slots__ = ()
    name = ""
    labels: dict = {}
    value = 0
    seconds = 0.0
    count = 0
    total = 0.0

    def inc(self, n: int = 1) -> None: ...
    def set(self, value: float) -> None: ...
    def add(self, *args) -> None: ...
    def observe(self, value: float) -> None: ...
    def mean(self) -> float:
        return 0.0

    def time(self):
        return _NULL_SECTION

    def wrap(self, fn):
        return fn

    def to_dict(self) -> dict:
        return {"kind": "null"}


class _NullSection:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None: ...


_NULL_SECTION = _NullSection()
NULL_COUNTER = _NullMetric()
NULL_GAUGE = _NullMetric()
NULL_TIMER = _NullMetric()
NULL_HISTOGRAM = _NullMetric()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _key(name: str, labels: "dict | None") -> tuple:
    return (name, tuple(sorted(labels.items())) if labels else ())


class MetricsRegistry:
    """Get-or-create store of named metrics (process-local).

    Creation is the only locked operation; mutation happens directly on
    the returned objects (single increments are effectively atomic
    under the GIL, and obs tolerates torn reads by design -- it renders
    operational state, not ledgers).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, labels, **kwargs):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels=labels, **kwargs)
                    self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str, labels: "dict | None" = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: "dict | None" = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def timer(self, name: str, labels: "dict | None" = None) -> Timer:
        return self._get_or_create(Timer, name, labels)

    def histogram(
        self,
        name: str,
        bounds: "tuple | None" = None,
        labels: "dict | None" = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, bounds=bounds)

    def metrics(self) -> list:
        """All registered metrics, sorted by (name, labels)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def clear(self) -> None:
        """Drop every metric (tests; never during a run)."""
        with self._lock:
            self._metrics.clear()

    def to_dict(self) -> dict:
        """``name`` (with ``[k=v,...]`` label suffix) -> metric dict."""
        out = {}
        for metric in self.metrics():
            name = metric.name
            if metric.labels:
                body = ",".join(
                    f"{k}={v}" for k, v in sorted(metric.labels.items())
                )
                name = f"{name}[{body}]"
            out[name] = metric.to_dict()
        return out


#: The process-wide registry every default handle lands in.
REGISTRY = MetricsRegistry()


def counter(name: str, labels: "dict | None" = None):
    """A registered :class:`Counter`, or the shared null when disabled."""
    return REGISTRY.counter(name, labels) if _ENABLED else NULL_COUNTER


def gauge(name: str, labels: "dict | None" = None):
    return REGISTRY.gauge(name, labels) if _ENABLED else NULL_GAUGE


def timer(name: str, labels: "dict | None" = None):
    return REGISTRY.timer(name, labels) if _ENABLED else NULL_TIMER


def histogram(name: str, bounds: "tuple | None" = None,
              labels: "dict | None" = None):
    return (
        REGISTRY.histogram(name, bounds, labels)
        if _ENABLED
        else NULL_HISTOGRAM
    )


def spread(samples) -> dict:
    """min/median/max/stdev of a sample list (the bench-spread shape)."""
    values = sorted(samples)
    n = len(values)
    if not n:
        return {"min": 0.0, "median": 0.0, "max": 0.0, "stdev": 0.0}
    mid = n // 2
    median = values[mid] if n % 2 else (values[mid - 1] + values[mid]) / 2.0
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {
        "min": round(values[0], 6),
        "median": round(median, 6),
        "max": round(values[-1], 6),
        "stdev": round(math.sqrt(var), 6),
    }
