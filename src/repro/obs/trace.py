"""Structured trace events: canonical JSON-lines spans.

One :class:`TraceWriter` owns one output stream.  Records are one JSON
object per line with sorted keys and fixed separators (canonical bytes,
like every other JSON artefact in the repo), so traces diff cleanly and
validate trivially.

Record shapes:

* complete span (``ph == "X"``): ``ts``/``dur`` wall seconds (monotonic
  clock), ``cpu_dur`` process-CPU seconds, ``rss_kb`` sampled at span
  end, plus ``name``, ``cat``, ``pid`` and free-form ``args``.
* instant event (``ph == "i"``): ``ts``, ``name``, ``cat``, ``pid``,
  ``args``.

:func:`to_chrome` converts a JSON-lines file to the Chrome
``trace_event`` JSON object format (load in ``chrome://tracing`` /
Perfetto); :func:`validate_trace` is the CI smoke check.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Keys every record must carry (the validation contract).
REQUIRED_KEYS = ("ph", "ts", "name", "cat", "pid")


def _dumps(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _rss_kb() -> int:
    from repro.obs import rss_kb

    return rss_kb()


class Span:
    """A begin/end section emitted as one complete-span record."""

    __slots__ = ("_writer", "name", "cat", "args", "_t0", "_cpu0")

    def __init__(self, writer: "TraceWriter", name: str, cat: str, args: dict):
        self._writer = writer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        t1 = time.perf_counter()
        record = {
            "ph": "X",
            "name": self.name,
            "cat": self.cat,
            "ts": round(self._t0, 6),
            "dur": round(t1 - self._t0, 6),
            "cpu_dur": round(time.process_time() - self._cpu0, 6),
            "rss_kb": _rss_kb(),
            "pid": self._writer.pid,
        }
        if self.args:
            record["args"] = self.args
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._writer.emit(record)


class TraceWriter:
    """Serializes trace records to a JSON-lines file (or open stream)."""

    def __init__(self, path_or_stream) -> None:
        import os

        if hasattr(path_or_stream, "write"):
            self._fh = path_or_stream
            self._owns = False
            self.path = None
        else:
            self.path = Path(path_or_stream)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._owns = True
        self.pid = os.getpid()
        self.emitted = 0

    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        """Write one canonical JSON-line record."""
        self._fh.write(_dumps(record) + "\n")
        self.emitted += 1

    def span(self, name: str, cat: str = "span", **args) -> Span:
        """A context manager emitting one complete-span record on exit."""
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "event", **args) -> None:
        """Emit a point-in-time event record."""
        record = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": round(time.perf_counter(), 6),
            "pid": self.pid,
        }
        if args:
            record["args"] = args
        self.emit(record)

    def cell(
        self,
        label: str,
        t0: float,
        seconds: float,
        cpu_seconds: float,
        rss_kb: int,
        pid: "int | None" = None,
        **args,
    ) -> None:
        """A complete-span record for one campaign cell, built from the
        executor ``on_event`` telemetry (cells may have run in a worker
        process, so the measurements arrive as data, not as a live
        span)."""
        record = {
            "ph": "X",
            "name": label,
            "cat": "cell",
            "ts": round(t0, 6),
            "dur": round(seconds, 6),
            "cpu_dur": round(cpu_seconds, 6),
            "rss_kb": rss_kb,
            "pid": pid if pid is not None else self.pid,
        }
        if args:
            record["args"] = args
        self.emit(record)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# conversion / validation
# ----------------------------------------------------------------------
def read_trace(path: "str | Path") -> list[dict]:
    """Parse a JSON-lines trace file into record dicts."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def to_chrome(path: "str | Path") -> dict:
    """A Chrome ``trace_event``-format document for a JSON-lines trace.

    Wall/CPU seconds become integer microseconds; the per-cell worker
    pid maps to Chrome's ``pid`` so parallel sweeps render one track
    per worker.
    """
    events = []
    for rec in read_trace(path):
        event = {
            "ph": rec.get("ph", "X"),
            "name": rec.get("name", "?"),
            "cat": rec.get("cat", "span"),
            "ts": int(rec.get("ts", 0.0) * 1e6),
            "pid": rec.get("pid", 0),
            "tid": rec.get("pid", 0),
        }
        if "dur" in rec:
            event["dur"] = int(rec["dur"] * 1e6)
        args = dict(rec.get("args", {}))
        for extra in ("cpu_dur", "rss_kb", "error"):
            if extra in rec:
                args[extra] = rec[extra]
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_trace(path: "str | Path") -> list[str]:
    """Well-formedness errors in a JSON-lines trace (empty = valid).

    Checks: every line parses as a JSON object, carries the required
    keys, spans have non-negative durations, and the file is non-empty.
    """
    errors: list[str] = []
    count = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            if not isinstance(rec, dict):
                errors.append(f"line {lineno}: not an object")
                continue
            missing = [k for k in REQUIRED_KEYS if k not in rec]
            if missing:
                errors.append(f"line {lineno}: missing keys {missing}")
            if rec.get("ph") == "X" and rec.get("dur", 0) < 0:
                errors.append(f"line {lineno}: negative duration")
    if count == 0:
        errors.append("trace file has no records")
    return errors
