"""Operational snapshots of the metrics registry.

:func:`snapshot` freezes the current registry (plus process vitals)
into a plain dict; :func:`render_table` and :func:`render_prometheus`
turn a snapshot into the two ``repro top`` output formats.  Sweeps can
periodically :func:`write_snapshot` to a file that a concurrent
``repro top --follow`` reads -- the same provider/viewer split the
serve daemon will reuse.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

from repro.obs.registry import REGISTRY

SNAPSHOT_VERSION = 1


def snapshot(registry=None) -> dict:
    """Freeze the registry (default: the process-wide one) plus process
    vitals into a JSON-serializable dict."""
    from repro.obs import cpu_seconds, rss_kb

    reg = registry if registry is not None else REGISTRY
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "pid": os.getpid(),
        "time": round(time.time(), 3),
        "process": {
            "rss_kb": rss_kb(),
            "cpu_seconds": round(cpu_seconds(), 3),
        },
        "metrics": reg.to_dict(),
    }


def write_snapshot(path: "str | Path", registry=None) -> dict:
    """Atomically write a snapshot file (write-then-rename, matching the
    result cache's crash discipline); returns the snapshot."""
    doc = snapshot(registry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(path)
    return doc


def read_snapshot(path: "str | Path") -> dict:
    """Load a snapshot from a file, or -- when ``path`` is an
    ``http(s)://`` URL -- from a serve daemon's ``/metrics`` endpoint,
    so ``repro top URL --follow`` watches a live daemon the same way it
    watches a sweep's ``--obs-out`` file.  Network failures surface as
    ``OSError`` (``urllib.error.URLError`` subclasses it), the same
    family a missing file raises."""
    text = str(path)
    if text.startswith(("http://", "https://")):
        from urllib.request import urlopen

        with urlopen(text, timeout=10.0) as resp:
            return json.loads(resp.read().decode("utf-8"))
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def _metric_cells(name: str, body: dict) -> tuple:
    kind = body.get("kind", "?")
    if kind == "counter":
        return (name, kind, str(body.get("value", 0)))
    if kind == "gauge":
        value = body.get("value", 0)
        shown = f"{value:.3f}" if isinstance(value, float) else str(value)
        return (name, kind, shown)
    if kind == "timer":
        return (
            name,
            kind,
            f"{body.get('seconds', 0.0):.3f}s / {body.get('count', 0)} calls",
        )
    if kind == "histogram":
        count = body.get("count", 0)
        total = body.get("total", 0.0)
        mean = total / count if count else 0.0
        return (name, kind, f"n={count} mean={mean:.6f}")
    return (name, kind, json.dumps(body, sort_keys=True))


def render_table(doc: dict) -> str:
    """The human ``repro top`` view: process vitals plus one row per
    metric."""
    process = doc.get("process", {})
    header = (
        f"pid {doc.get('pid', '?')}  "
        f"rss {process.get('rss_kb', 0) / 1024:.0f}MB  "
        f"cpu {process.get('cpu_seconds', 0.0):.1f}s  "
        f"at {time.strftime('%H:%M:%S', time.localtime(doc.get('time', 0)))}"
    )
    metrics = doc.get("metrics", {})
    if not metrics:
        return header + "\n(no metrics registered -- run with --obs / REPRO_OBS=1)"
    rows = [_metric_cells(name, body) for name, body in sorted(metrics.items())]
    widths = [
        max(len(row[col]) for row in rows + [("metric", "kind", "value")])
        for col in range(3)
    ]
    lines = [header, ""]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(("metric", "kind", "value"), widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_SUFFIX = re.compile(r"\[(.*)\]$")


def _prom_name(name: str) -> str:
    name = _PROM_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return "repro_" + name


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_PROM_BAD.sub("_", k)}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(doc: dict) -> str:
    """The snapshot in Prometheus text-exposition format 0.0.4."""
    lines: list[str] = []
    process = doc.get("process", {})
    lines.append("# TYPE repro_process_rss_kb gauge")
    lines.append(f"repro_process_rss_kb {process.get('rss_kb', 0)}")
    lines.append("# TYPE repro_process_cpu_seconds counter")
    lines.append(f"repro_process_cpu_seconds {process.get('cpu_seconds', 0.0)}")
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        # one TYPE line per metric name even when label sets fan out
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for display_name, body in sorted(doc.get("metrics", {}).items()):
        match = _LABEL_SUFFIX.search(display_name)
        labels = {}
        base = display_name
        if match:
            base = display_name[: match.start()]
            for pair in match.group(1).split(","):
                if "=" in pair:
                    k, v = pair.split("=", 1)
                    labels[k] = v
        labels = body.get("labels", labels)
        name = _prom_name(base)
        kind = body.get("kind", "")
        label_str = _prom_labels(labels)
        if kind == "counter":
            declare(name, "counter")
            lines.append(f"{name}{label_str} {body.get('value', 0)}")
        elif kind == "gauge":
            declare(name, "gauge")
            lines.append(f"{name}{label_str} {body.get('value', 0)}")
        elif kind == "timer":
            declare(f"{name}_seconds", "counter")
            lines.append(
                f"{name}_seconds{label_str} {body.get('seconds', 0.0)}"
            )
            declare(f"{name}_count", "counter")
            lines.append(f"{name}_count{label_str} {body.get('count', 0)}")
        elif kind == "histogram":
            declare(name, "histogram")
            bounds = body.get("bounds", [])
            buckets = body.get("buckets", [])
            cumulative = 0
            for bound, bucket in zip(bounds, buckets):
                cumulative += bucket
                extra = {**labels, "le": f"{float(bound):g}"}
                lines.append(f"{name}_bucket{_prom_labels(extra)} {cumulative}")
            cumulative += buckets[-1] if len(buckets) > len(bounds) else 0
            extra = {**labels, "le": "+Inf"}
            lines.append(f"{name}_bucket{_prom_labels(extra)} {cumulative}")
            lines.append(f"{name}_sum{label_str} {body.get('total', 0.0)}")
            lines.append(f"{name}_count{label_str} {body.get('count', 0)}")
    return "\n".join(lines) + "\n"
