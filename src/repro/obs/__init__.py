"""Digest-neutral telemetry: metrics, traces, and live progress.

The observability layer answers the ROADMAP's two standing asks --
"stream per-cell telemetry back" (distributed sweeps) and "``repro
top``-style operational state" (the serve daemon) -- without ever
touching experiment semantics:

* **Metrics registry** (:mod:`repro.obs.registry`): process-local
  counters, gauges, monotonic timers and bounded histograms.  The layer
  is compiled out to no-ops unless ``REPRO_OBS=1`` (or ``--obs`` /
  :func:`enable`): :func:`counter` and friends return shared null
  objects whose mutators do nothing, and hot-loop sites (the machine's
  cycle engines) cache preallocated counter objects at construction so
  the disabled path costs one attribute check at coarse boundaries,
  never a dict lookup per cycle.
* **Structured trace events** (:mod:`repro.obs.trace`): span begin/end
  records with wall + CPU time and an RSS sample, serialized as
  canonical JSON-lines and convertible to Chrome ``trace_event`` format.
  Tracing is off unless a writer is installed via :func:`set_tracer`.
* **Progress streaming** (:mod:`repro.obs.progress`): consumes the
  executor ``on_event`` stream (cell start/done, cache hit/miss/stale)
  and renders live cells/sec, ETA, cache hit rate and per-worker RSS.
* **Operational snapshots** (:mod:`repro.obs.report`): render the
  registry as a table or Prometheus text-exposition format; ``repro
  top`` reads the snapshot files sweeps write.

**Digest-neutrality contract**: obs settings are environment/CLI state,
never :class:`~repro.api.spec.ExperimentSpec` fields -- they are
excluded from spec equality, digests, cache keys and canonical result
bytes (exactly like ``engine``).  Instrumentation must not consume
campaign RNG or mutate simulated state, so every campaign is
bit-identical with obs on or off (the differential suite runs under
``REPRO_OBS=1`` in CI).
"""

from __future__ import annotations

import os
import time

from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    timer,
)
from repro.obs.trace import TraceWriter, to_chrome, validate_trace
from repro.obs.progress import ProgressRenderer, ProgressState
from repro.obs.report import (
    render_prometheus,
    render_table,
    snapshot,
    write_snapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMER",
    "ProgressRenderer",
    "ProgressState",
    "REGISTRY",
    "Timer",
    "TraceWriter",
    "counter",
    "cpu_seconds",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "render_prometheus",
    "render_table",
    "rss_kb",
    "set_tracer",
    "snapshot",
    "timer",
    "to_chrome",
    "tracer",
    "validate_trace",
    "write_snapshot",
]

# ----------------------------------------------------------------------
# current trace writer (process-local; None = tracing off)
# ----------------------------------------------------------------------
_TRACER: "TraceWriter | None" = None


def set_tracer(writer: "TraceWriter | None") -> "TraceWriter | None":
    """Install (or clear) the process-wide trace writer; returns the
    previous one so callers can restore it."""
    global _TRACER
    previous = _TRACER
    _TRACER = writer
    return previous


def tracer() -> "TraceWriter | None":
    """The currently installed trace writer (None = tracing off)."""
    return _TRACER


# ----------------------------------------------------------------------
# cheap process samples (used by spans, progress events and reports)
# ----------------------------------------------------------------------
def rss_kb() -> int:
    """Resident set size of this process in KiB (0 when unavailable).

    Reads ``/proc/self/status`` on Linux; falls back to ``ru_maxrss``
    (the peak, not current -- still useful as a coarse sample).
    """
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, ValueError, OSError):
        return 0


def cpu_seconds() -> float:
    """Process CPU time (user + system) in seconds."""
    return time.process_time()


def obs_env() -> dict:
    """The obs-related environment, for debugging/worker propagation."""
    return {
        k: v for k, v in os.environ.items() if k.startswith("REPRO_OBS")
    }
