"""Memory-layout helper for workload construction.

Gives every benchmark the same address-space shape:

* ``GLOBALS`` (0x10000): locks, barrier counters, reduction words, the
  PCIe input-completion flag (offset 0).
* ``INPUT`` (0x100000): the DMA'd input data file.
* ``HEAP`` (0x800000): application data structures.

The gaps between regions matter for outcome fidelity: a corrupted
pointer/index that escapes a region traps (UT), while corruption that
stays inside the heap silently corrupts data (OMM/ONA) -- mirroring how
real address-related uncore errors behave (paper Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.program import Program
from repro.workloads.base import WorkloadImage

GLOBALS_BASE = 0x10000
GLOBALS_SIZE = 0x4000
INPUT_BASE = 0x100000
HEAP_BASE = 0x800000

#: Globals word 0 is the PCIe DMA completion flag the application polls.
INPUT_STATUS_ADDR = GLOBALS_BASE


@dataclass
class ImageBuilder:
    """Accumulates regions / initial memory while programs are built."""

    name: str
    threads: int
    _globals_cursor: int = 8  # word 0 reserved for the input status flag
    _heap_cursor: int = 0
    _init_words: dict[int, int] = field(default_factory=dict)
    _global_names: dict[str, int] = field(default_factory=dict)
    _input_words: "list[int] | None" = None

    # -- globals ---------------------------------------------------------
    def global_word(self, name: str, init: int = 0) -> int:
        """Allocate (or fetch) a named word in the globals region."""
        if name in self._global_names:
            return self._global_names[name]
        addr = GLOBALS_BASE + self._globals_cursor
        self._globals_cursor += 8
        if self._globals_cursor > GLOBALS_SIZE:
            raise ValueError("globals region exhausted")
        self._global_names[name] = addr
        if init:
            self._init_words[addr] = init
        return addr

    def barrier_counter(self, episode: str) -> int:
        """A fresh counter word for one barrier episode."""
        return self.global_word(f"barrier:{episode}")

    def lock_word(self, name: str) -> int:
        return self.global_word(f"lock:{name}")

    # -- heap -------------------------------------------------------------
    def alloc(self, name: str, words: int) -> int:
        """Allocate a heap array; returns its base address."""
        if words <= 0:
            raise ValueError(f"array {name!r}: must allocate at least one word")
        addr = HEAP_BASE + self._heap_cursor
        self._heap_cursor += words * 8
        return addr

    def init_word(self, addr: int, value: int) -> None:
        self._init_words[addr] = value & ((1 << 64) - 1)

    def init_array(self, base: int, values) -> None:
        for i, value in enumerate(values):
            self.init_word(base + 8 * i, value)

    # -- input file --------------------------------------------------------
    def set_input_file(self, words: list[int]) -> int:
        """Register the DMA'd input file; returns its base address."""
        self._input_words = list(words)
        return INPUT_BASE

    @property
    def input_words(self) -> "list[int] | None":
        return self._input_words

    # -- finalization -------------------------------------------------------
    def finish(self, programs: list[Program]) -> WorkloadImage:
        if len(programs) != self.threads:
            raise ValueError("one program per thread required")
        regions = [
            (GLOBALS_BASE, GLOBALS_SIZE, "globals"),
            (HEAP_BASE, max(self._heap_cursor, 8), "heap"),
        ]
        input_dest = None
        status = None
        if self._input_words is not None:
            regions.append((INPUT_BASE, max(len(self._input_words), 1) * 8, "input"))
            input_dest = INPUT_BASE
            status = INPUT_STATUS_ADDR
        thread_regs = [
            {15: tid, 14: self.threads} for tid in range(self.threads)
        ]
        return WorkloadImage(
            name=self.name,
            programs=programs,
            regions=regions,
            init_words=dict(self._init_words),
            thread_regs=thread_regs,
            input_file_words=self._input_words,
            input_dest=input_dest,
            input_status_addr=status,
        )
