"""Reusable program fragments shared by the benchmark analogues.

Register conventions across all workloads:

* ``r15`` = hardware-thread id, ``r14`` = thread count (preset by the
  image loader); kernels treat them as read-only.
* ``r0`` is hardwired zero.
* Helpers document which scratch registers they clobber.
"""

from __future__ import annotations

from repro.core.program import ProgramBuilder
from repro.workloads.layout import INPUT_STATUS_ADDR

#: 64-bit LCG constants (Knuth MMIX).
LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407


def wait_for_input(b: ProgramBuilder, r_addr: int, r_val: int) -> None:
    """Spin until the PCIe DMA completion flag is set.

    The read is an atomic fetch-and-add of zero so it always observes L2
    state (never a stale L1 word).  Clobbers ``r_addr`` and ``r_val``.
    """
    b.ldi(r_addr, INPUT_STATUS_ADDR)
    wait = b.label(f"_input{b.here}")
    b.place(wait)
    b.ldi(r_val, 0)
    b.faa(r_val, r_addr, r_val)
    b.beq(r_val, 0, wait)


def thread_chunk(
    b: ProgramBuilder, total: int, r_start: int, r_end: int, r_tmp: int
) -> None:
    """Compute this thread's [start, end) slice of ``total`` items.

    start = tid * (total / nthreads), end = start + chunk (last thread
    takes the remainder).  Clobbers the three given registers.
    """
    b.ldi(r_tmp, total)
    b.div(r_tmp, r_tmp, 14)  # chunk = total / nthreads
    b.mul(r_start, r_tmp, 15)  # start = chunk * tid
    b.add(r_end, r_start, r_tmp)
    # last thread: end = total
    b.addi(r_tmp, 15, 1)
    done = b.label(f"_chunk{b.here}")
    b.bne(r_tmp, 14, done)
    b.ldi(r_end, total)
    b.place(done)


def lcg_step(b: ProgramBuilder, r_state: int, r_tmp: int) -> None:
    """Advance a 64-bit LCG in ``r_state``.  Clobbers ``r_tmp``."""
    b.ldi(r_tmp, LCG_MUL)
    b.mul(r_state, r_state, r_tmp)
    b.ldi(r_tmp, LCG_ADD)
    b.add(r_state, r_state, r_tmp)


def checksum_loop(
    b: ProgramBuilder,
    base: int,
    r_idx: int,
    r_end: int,
    r_acc: int,
    r_addr: int,
    r_val: int,
) -> None:
    """acc = fold of mem[base + 8*i] for i in [idx, end).

    The fold is ``acc = acc*3 + value`` so word order matters (catches
    swapped data, not just missing data).  ``r_idx`` is consumed;
    clobbers ``r_addr`` and ``r_val``.
    """
    loop = b.label(f"_ck{b.here}")
    done = b.label(f"_ckdone{b.here}")
    b.place(loop)
    b.bge(r_idx, r_end, done)
    b.shli(r_addr, r_idx, 3)
    b.addi(r_addr, r_addr, base)
    b.ld(r_val, r_addr, 0)
    b.muli(r_acc, r_acc, 3)
    b.add(r_acc, r_acc, r_val)
    b.addi(r_idx, r_idx, 1)
    b.jmp(loop)
    b.place(done)


def out_slot(b: ProgramBuilder, slot: int, r_val: int, r_tmp: int) -> None:
    """Write ``r_val`` to constant output slot ``slot``."""
    b.ldi(r_tmp, slot)
    b.out(r_tmp, r_val)


def reduce_add(
    b: ProgramBuilder,
    lock_addr: int,
    cell_addr: int,
    r_val: int,
    r_addr: int,
    r_tmp: int,
) -> None:
    """Lock-protected ``mem[cell] += r_val``.  Clobbers r_addr, r_tmp."""
    b.ldi(r_addr, lock_addr)
    b.spin_lock(r_addr, r_tmp)
    b.ldi(r_addr, cell_addr)
    b.ld(r_tmp, r_addr, 0)
    b.add(r_tmp, r_tmp, r_val)
    b.st(r_tmp, r_addr, 0)
    b.ldi(r_addr, lock_addr)
    b.spin_unlock(r_addr)


def atomic_read(b: ProgramBuilder, addr: int, r_dst: int, r_addr: int) -> None:
    """r_dst = mem[addr] via FAA(0) -- always observes L2 state."""
    b.ldi(r_addr, addr)
    b.ldi(r_dst, 0)
    b.faa(r_dst, r_addr, r_dst)
