"""Benchmark registry (paper Table 5).

Maps each benchmark abbreviation to its Table 5 metadata and its builder.
``build_workload`` is the single public entry point: it derives the
work amount from the paper's error-free cycle count and a scale factor,
seeds the deterministic data generator, and returns a ready-to-load
:class:`~repro.workloads.base.WorkloadImage`.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Callable

from repro.workloads import parsec, phoenix, splash2
from repro.workloads.base import WorkloadImage, WorkloadMeta

#: Default workload scale: reproduction cycle budgets are ~1/8000 of the
#: paper's Table 5 lengths (relative proportions preserved).
DEFAULT_SCALE = 1.0 / 8000.0

_M = 1_000_000
_KB = 1024
_MB = 1024 * 1024

Builder = Callable[[int, int, random.Random], WorkloadImage]

#: short name -> (Table 5 metadata, builder)
REGISTRY: dict[str, tuple[WorkloadMeta, Builder]] = {
    "barn": (
        WorkloadMeta("Barnes", "barn", "SPLASH-2", 413 * _M, 0),
        splash2.build_barnes,
    ),
    "chol": (
        WorkloadMeta("Cholesky", "chol", "SPLASH-2", 531 * _M, int(1.7 * _MB)),
        splash2.build_cholesky,
    ),
    "fft": (
        WorkloadMeta("FFT", "fft", "SPLASH-2", 862 * _M, 0),
        splash2.build_fft,
    ),
    "lu-c": (
        WorkloadMeta("LU-contiguous", "lu-c", "SPLASH-2", 215 * _M, 0),
        splash2.build_lu,
    ),
    "radi": (
        WorkloadMeta("Radix", "radi", "SPLASH-2", 120 * _M, 0),
        splash2.build_radix,
    ),
    "rayt": (
        WorkloadMeta("Raytrace", "rayt", "SPLASH-2", 1005 * _M, int(4.5 * _MB)),
        splash2.build_raytrace,
    ),
    "blsc": (
        WorkloadMeta("Blackscholes", "blsc", "PARSEC-2.1", 164 * _M, 258 * _KB),
        parsec.build_blackscholes,
    ),
    "body": (
        WorkloadMeta("Bodytrack", "body", "PARSEC-2.1", 571 * _M, int(2.5 * _MB)),
        parsec.build_bodytrack,
    ),
    "ferr": (
        WorkloadMeta("Ferret", "ferr", "PARSEC-2.1", 763 * _M, int(4.7 * _MB)),
        parsec.build_ferret,
    ),
    "flui": (
        WorkloadMeta("Fluidanimate", "flui", "PARSEC-2.1", 842 * _M, int(1.3 * _MB)),
        parsec.build_fluidanimate,
    ),
    "freq": (
        WorkloadMeta("Freqmine", "freq", "PARSEC-2.1", 353 * _M, 8 * _MB),
        parsec.build_freqmine,
    ),
    "stre": (
        WorkloadMeta("Streamcluster", "stre", "PARSEC-2.1", 695 * _M, 0),
        parsec.build_streamcluster,
    ),
    "swap": (
        WorkloadMeta("Swaptions", "swap", "PARSEC-2.1", 591 * _M, 0),
        parsec.build_swaptions,
    ),
    "vips": (
        WorkloadMeta("Vips", "vips", "PARSEC-2.1", 1003 * _M, int(7.6 * _MB)),
        parsec.build_vips,
    ),
    "x264": (
        WorkloadMeta("X264", "x264", "PARSEC-2.1", 881 * _M, int(2.8 * _MB)),
        parsec.build_x264,
    ),
    "p-lr": (
        WorkloadMeta("Linear regression", "p-lr", "Phoenix", 54 * _M, 108 * _MB),
        phoenix.build_linear_regression,
    ),
    "p-sm": (
        WorkloadMeta("String match", "p-sm", "Phoenix", 248 * _M, 108 * _MB),
        phoenix.build_string_match,
    ),
    "p-wc": (
        WorkloadMeta("Word count", "p-wc", "Phoenix", 566 * _M, 99 * _MB),
        phoenix.build_word_count,
    ),
}

#: Benchmarks with an input data file -- the PCIe injection set (Table 5).
PCIE_BENCHMARKS: tuple[str, ...] = tuple(
    short for short, (meta, _b) in REGISTRY.items() if meta.has_input_file
)

ALL_BENCHMARKS: tuple[str, ...] = tuple(REGISTRY)


def workload_meta(short: str) -> WorkloadMeta:
    """Table 5 metadata for a benchmark."""
    if short not in REGISTRY:
        raise KeyError(f"unknown benchmark {short!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[short][0]


def build_workload(
    short: str,
    threads: int = 16,
    scale: float = DEFAULT_SCALE,
    seed: int = 2015,
) -> WorkloadImage:
    """Build a benchmark analogue.

    Args:
        short: Table 5 abbreviation (``barn``, ``chol``, ...).
        threads: hardware threads the image targets.
        scale: cycle-budget scale relative to Table 5 (default ~1/8000).
        seed: data-generation seed (input files, initial arrays).
    """
    if threads < 2:
        raise ValueError("workloads need at least 2 threads")
    meta, builder = REGISTRY[short] if short in REGISTRY else (None, None)
    if meta is None:
        raise KeyError(f"unknown benchmark {short!r}; known: {sorted(REGISTRY)}")
    work = max(400, int(meta.paper_cycles * scale))
    # stable digest so the same (benchmark, seed) builds identical input
    # data in every process, independent of PYTHONHASHSEED
    rng = random.Random((seed << 8) ^ (zlib.crc32(short.encode()) & 0xFFFFFFFF))
    return builder(threads, work, rng)
