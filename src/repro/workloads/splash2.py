"""SPLASH-2 benchmark analogues (Table 5, top block).

Each analogue preserves the communication/computation character of the
original at reproduction scale: data-parallel phases separated by
barriers, lock-protected reductions, and (for Cholesky and Raytrace)
input files consumed from the PCIe-transferred region.
"""

from __future__ import annotations

import random

from repro.core.program import ProgramBuilder
from repro.workloads.base import WorkloadImage
from repro.workloads.kernels import (
    atomic_read,
    checksum_loop,
    lcg_step,
    out_slot,
    reduce_add,
    thread_chunk,
    wait_for_input,
)
from repro.workloads.layout import ImageBuilder


def _input_words(rng: random.Random, count: int) -> list[int]:
    """Deterministic synthetic input-file payload (non-zero words)."""
    return [(rng.getrandbits(64) | 1) for _ in range(count)]


def build_barnes(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Barnes-Hut analogue: neighbour-window force phases + energy reduce."""
    ib = ImageBuilder("barn", threads)
    n = max(threads * 8, min(4096, work // 30))
    pos = ib.alloc("pos", n)
    acc = ib.alloc("acc", n)
    ib.init_array(pos, (rng.getrandbits(32) for _ in range(n)))
    energy = ib.global_word("energy")
    elock = ib.lock_word("energy")
    steps = 2
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"barn.t{tid}")
        thread_chunk(b, n, 1, 2, 3)  # r1=start r2=end
        b.ldi(12, 0)  # r12 = local energy
        for step in range(steps):
            # force phase: acc[i] = pos[(5i+step) mod n]*pos[i] + pos[(i+1) mod n]
            b.ldi(3, 0)
            b.add(3, 1, 0)  # r3 = i = start
            loop = b.label(f"f{step}")
            done = b.label(f"fd{step}")
            b.place(loop)
            b.bge(3, 2, done)
            b.muli(4, 3, 5)
            b.addi(4, 4, step)
            b.ldi(5, n)
            b.mod(4, 4, 5)  # r4 = (5i+step) mod n
            b.shli(4, 4, 3)
            b.addi(4, 4, pos)
            b.ld(5, 4, 0)  # r5 = pos[(5i+step) mod n]
            b.shli(6, 3, 3)
            b.addi(6, 6, pos)
            b.ld(7, 6, 0)  # r7 = pos[i]
            b.mul(5, 5, 7)
            b.addi(8, 3, 1)
            b.ldi(9, n)
            b.mod(8, 8, 9)
            b.shli(8, 8, 3)
            b.addi(8, 8, pos)
            b.ld(9, 8, 0)  # r9 = pos[(i+1) mod n]
            b.add(5, 5, 9)
            b.shli(6, 3, 3)
            b.addi(6, 6, acc)
            b.st(5, 6, 0)  # acc[i] = force
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            bar1 = ib.barrier_counter(f"force{step}")
            b.ldi(3, bar1)
            b.barrier(3, threads, 4, 5)
            # update phase: pos[i] += acc[i]; energy += pos[i] & 0xffff
            b.add(3, 1, 0)
            loop2 = b.label(f"u{step}")
            done2 = b.label(f"ud{step}")
            b.place(loop2)
            b.bge(3, 2, done2)
            b.shli(4, 3, 3)
            b.addi(5, 4, pos)
            b.addi(6, 4, acc)
            b.ld(7, 5, 0)
            b.ld(8, 6, 0)
            b.add(7, 7, 8)
            b.st(7, 5, 0)
            b.andi(7, 7, 0xFFFF)
            b.add(12, 12, 7)
            b.addi(3, 3, 1)
            b.jmp(loop2)
            b.place(done2)
            bar2 = ib.barrier_counter(f"update{step}")
            b.ldi(3, bar2)
            b.barrier(3, threads, 4, 5)
        reduce_add(b, elock, energy, 12, 3, 4)
        bar3 = ib.barrier_counter("final")
        b.ldi(3, bar3)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            atomic_read(b, energy, 6, 3)
            out_slot(b, 0, 6, 3)
        # per-thread checksum of own chunk of pos
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, pos, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_cholesky(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Cholesky analogue: input-driven column sweeps with pivot reduce."""
    ib = ImageBuilder("chol", threads)
    iw = max(64, work // 120)
    input_base = ib.set_input_file(_input_words(rng, iw))
    n = max(threads * 8, min(4096, work // 35))
    a = ib.alloc("a", n)
    ib.init_array(a, ((rng.getrandbits(32) | 1) for _ in range(n)))
    pivot = ib.global_word("pivot", init=1)
    plock = ib.lock_word("pivot")
    sweeps = 3
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"chol.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, n, 1, 2, 3)
        for k in range(sweeps):
            # owner of sweep k updates the pivot from input data
            if True:
                owner = k % threads
                if tid == owner:
                    b.ldi(3, input_base + 8 * (k % iw))
                    b.ld(4, 3, 0)
                    b.andi(4, 4, 0xFFFF)
                    b.ori(4, 4, 1)
                    b.ldi(3, plock)
                    b.spin_lock(3, 5)
                    b.ldi(3, pivot)
                    b.st(4, 3, 0)
                    b.ldi(3, plock)
                    b.spin_unlock(3)
            bar = ib.barrier_counter(f"pivot{k}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
            # a[i] = a[i] - ((input[i mod iw] * pivot) >> 8)
            atomic_read(b, pivot, 10, 3)
            b.add(3, 1, 0)
            loop = b.label(f"s{k}")
            done = b.label(f"sd{k}")
            b.place(loop)
            b.bge(3, 2, done)
            b.ldi(4, iw)
            b.mod(4, 3, 4)
            b.shli(4, 4, 3)
            b.addi(4, 4, input_base)
            b.ld(5, 4, 0)
            b.mul(5, 5, 10)
            b.shri(5, 5, 8)
            b.shli(6, 3, 3)
            b.addi(6, 6, a)
            b.ld(7, 6, 0)
            b.sub(7, 7, 5)
            b.st(7, 6, 0)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            bar2 = ib.barrier_counter(f"sweep{k}")
            b.ldi(3, bar2)
            b.barrier(3, threads, 4, 5)
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, a, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_fft(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """FFT analogue: log2(N) butterfly passes with a barrier per pass."""
    ib = ImageBuilder("fft", threads)
    n = 64
    while n * (n.bit_length() - 1) < work // 4 and n < 8192:
        n *= 2
    a = ib.alloc("a", n)
    ib.init_array(a, (rng.getrandbits(48) for _ in range(n)))
    passes = n.bit_length() - 1
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"fft.t{tid}")
        thread_chunk(b, n, 1, 2, 3)
        for p in range(passes):
            stride = 1 << p
            # butterfly pairs (i, i^stride) where i & stride == 0
            b.add(3, 1, 0)
            loop = b.label(f"p{p}")
            skip = b.label(f"k{p}")
            done = b.label(f"d{p}")
            b.place(loop)
            b.bge(3, 2, done)
            b.andi(4, 3, stride)
            b.bne(4, 0, skip)
            b.shli(5, 3, 3)
            b.addi(5, 5, a)  # addr i
            b.xori(6, 3, stride)
            b.shli(6, 6, 3)
            b.addi(6, 6, a)  # addr j
            b.ld(7, 5, 0)
            b.ld(8, 6, 0)
            b.add(9, 7, 8)  # a[i]' = a[i] + a[j]
            b.sub(10, 7, 8)  # a[j]' = a[i] - a[j] (twiddle analogue)
            b.muli(10, 10, 3 + 2 * p)
            b.st(9, 5, 0)
            b.st(10, 6, 0)
            b.place(skip)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            bar = ib.barrier_counter(f"pass{p}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, a, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_lu(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """LU-contiguous analogue: pivot step + panel update per iteration."""
    ib = ImageBuilder("lu-c", threads)
    n = max(threads * 8, min(4096, work // 25))
    a = ib.alloc("a", n)
    ib.init_array(a, ((rng.getrandbits(32) | 1) for _ in range(n)))
    pivot = ib.global_word("lupivot", init=3)
    steps = 4
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"lu-c.t{tid}")
        thread_chunk(b, n, 1, 2, 3)
        for k in range(steps):
            owner = k % threads
            if tid == owner:
                # pivot = a[k] | 1 (avoid zero)
                b.ldi(3, a + 8 * (k % n))
                b.ld(4, 3, 0)
                b.ori(4, 4, 1)
                b.andi(4, 4, 0xFFFFF)
                b.ldi(3, pivot)
                b.st(4, 3, 0)
            bar = ib.barrier_counter(f"lupiv{k}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
            atomic_read(b, pivot, 10, 3)
            # a[i] = a[i] - (a[i] / pivot) * (k+2)
            b.add(3, 1, 0)
            loop = b.label(f"l{k}")
            done = b.label(f"ld{k}")
            b.place(loop)
            b.bge(3, 2, done)
            b.shli(5, 3, 3)
            b.addi(5, 5, a)
            b.ld(6, 5, 0)
            b.div(7, 6, 10)
            b.muli(7, 7, k + 2)
            b.sub(6, 6, 7)
            b.st(6, 5, 0)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            bar2 = ib.barrier_counter(f"lupanel{k}")
            b.ldi(3, bar2)
            b.barrier(3, threads, 4, 5)
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, a, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_radix(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Radix-sort analogue: histogram (FAA), prefix, scatter rounds."""
    ib = ImageBuilder("radi", threads)
    n = max(threads * 8, min(4096, work // 28))
    buckets = 16
    src = ib.alloc("src", n)
    dst = ib.alloc("dst", n)
    hist = ib.alloc("hist", buckets)
    base_off = ib.alloc("base", buckets)
    ib.init_array(src, (rng.getrandbits(32) for _ in range(n)))
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"radi.t{tid}")
        thread_chunk(b, n, 1, 2, 3)
        # histogram phase: FAA hist[(src[i] >> 4) & 15]
        b.add(3, 1, 0)
        loop = b.label("h")
        done = b.label("hd")
        b.place(loop)
        b.bge(3, 2, done)
        b.shli(4, 3, 3)
        b.addi(4, 4, src)
        b.ld(5, 4, 0)
        b.shri(5, 5, 4)
        b.andi(5, 5, 15)
        b.shli(5, 5, 3)
        b.addi(5, 5, hist)
        b.ldi(6, 1)
        b.faa(7, 5, 6)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        bar = ib.barrier_counter("hist")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            # exclusive prefix sum of hist into base_off
            b.ldi(3, 0)  # bucket index
            b.ldi(4, 0)  # running total
            ploop = b.label("pf")
            pdone = b.label("pfd")
            b.place(ploop)
            b.ldi(5, buckets)
            b.bge(3, 5, pdone)
            b.shli(5, 3, 3)
            b.addi(6, 5, base_off)
            b.st(4, 6, 0)
            b.addi(6, 5, hist)
            b.ld(7, 6, 0)
            b.add(4, 4, 7)
            b.addi(3, 3, 1)
            b.jmp(ploop)
            b.place(pdone)
        bar2 = ib.barrier_counter("prefix")
        b.ldi(3, bar2)
        b.barrier(3, threads, 4, 5)
        # scatter phase: pos = FAA(base[bucket], 1); dst[pos] = src[i]
        b.add(3, 1, 0)
        loop2 = b.label("s")
        done2 = b.label("sd")
        b.place(loop2)
        b.bge(3, 2, done2)
        b.shli(4, 3, 3)
        b.addi(4, 4, src)
        b.ld(5, 4, 0)  # value
        b.shri(6, 5, 4)
        b.andi(6, 6, 15)
        b.shli(6, 6, 3)
        b.addi(6, 6, base_off)
        b.ldi(7, 1)
        b.faa(8, 6, 7)  # r8 = position
        b.shli(8, 8, 3)
        b.addi(8, 8, dst)
        b.st(5, 8, 0)
        b.addi(3, 3, 1)
        b.jmp(loop2)
        b.place(done2)
        bar3 = ib.barrier_counter("scatter")
        b.ldi(3, bar3)
        b.barrier(3, threads, 4, 5)
        # order-insensitive checksum of own chunk of dst (sum and sum sq)
        b.add(3, 1, 0)
        b.ldi(12, 0)
        b.ldi(11, 0)
        loop3 = b.label("c")
        done3 = b.label("cd")
        b.place(loop3)
        b.bge(3, 2, done3)
        b.shli(4, 3, 3)
        b.addi(4, 4, dst)
        b.ld(5, 4, 0)
        b.add(12, 12, 5)
        b.mul(6, 5, 5)
        b.add(11, 11, 6)
        b.addi(3, 3, 1)
        b.jmp(loop3)
        b.place(done3)
        out_slot(b, 2 * tid + 1, 12, 3)
        out_slot(b, 2 * tid + 2, 11, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_raytrace(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Raytrace analogue: dynamic pixel work queue over scene input data."""
    ib = ImageBuilder("rayt", threads)
    iw = max(128, work // 80)
    input_base = ib.set_input_file(_input_words(rng, iw))
    pixels = max(threads * 4, min(4096, work // 45))
    fb = ib.alloc("framebuffer", pixels)
    next_pixel = ib.global_word("next_pixel")
    color_sum = ib.global_word("color_sum")
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"rayt.t{tid}")
        wait_for_input(b, 3, 4)
        b.ldi(12, 0)  # pixels rendered by this thread
        grab = b.label("grab")
        done = b.label("done")
        b.place(grab)
        b.ldi(3, next_pixel)
        b.ldi(4, 1)
        b.faa(5, 3, 4)  # r5 = pixel index
        b.ldi(4, pixels)
        b.bge(5, 4, done)
        # trace: three dependent bounces through the scene (input) data
        b.ldi(6, iw)
        b.mod(7, 5, 6)
        b.shli(7, 7, 3)
        b.addi(7, 7, input_base)
        b.ld(8, 7, 0)  # seed = input[p mod iw]
        for bounce in range(3):
            b.ldi(6, iw)
            b.mod(7, 8, 6)
            b.shli(7, 7, 3)
            b.addi(7, 7, input_base)
            b.ld(9, 7, 0)
            b.muli(8, 8, 3)
            b.add(8, 8, 9)
            b.add(8, 8, 5)
        b.shli(7, 5, 3)
        b.addi(7, 7, fb)
        b.st(8, 7, 0)  # framebuffer[p] = color
        b.andi(9, 8, 0xFFFF)
        b.ldi(3, color_sum)
        b.faa(10, 3, 9)  # order-insensitive color accumulation
        b.addi(12, 12, 1)
        b.jmp(grab)
        b.place(done)
        bar = ib.barrier_counter("render")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            atomic_read(b, color_sum, 6, 3)
            out_slot(b, 0, 6, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)
