"""Workload abstractions.

A :class:`WorkloadImage` is everything the machine needs to run one
benchmark: per-thread programs, memory regions, initial memory contents
and (for the twelve applications with input data files, Table 5) the
input file to be DMA-transferred through the PCIe controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.program import Program


@dataclass(frozen=True)
class WorkloadMeta:
    """Table 5 metadata for one benchmark application.

    Attributes:
        name: full benchmark name.
        short: the paper's abbreviation (e.g. ``barn``).
        suite: SPLASH-2, PARSEC-2.1 or Phoenix MapReduce.
        paper_cycles: error-free execution length reported in Table 5.
        input_file_bytes: input data file size from Table 5 (0 = none).
    """

    name: str
    short: str
    suite: str
    paper_cycles: int
    input_file_bytes: int

    @property
    def has_input_file(self) -> bool:
        return self.input_file_bytes > 0


@dataclass
class WorkloadImage:
    """A fully-built workload ready to load into a machine.

    Attributes:
        name: benchmark short name.
        programs: one program per hardware thread (machine order:
            core-major, thread-minor).
        regions: allocated memory regions ``(base, size_bytes, name)``;
            accesses outside them trap.
        init_words: initial memory contents (word addr -> value).
        thread_regs: initial register values per thread (reg -> value).
        input_file_words: input-file payload for PCIe DMA, or None.
        input_dest: DRAM base the file lands at.
        input_status_addr: completion flag word the application polls.
        expected_output: golden output if known statically (else None;
            determined by an error-free run).
    """

    name: str
    programs: list[Program]
    regions: list[tuple[int, int, str]] = field(default_factory=list)
    init_words: dict[int, int] = field(default_factory=dict)
    thread_regs: list[dict[int, int]] = field(default_factory=list)
    input_file_words: "list[int] | None" = None
    input_dest: "int | None" = None
    input_status_addr: "int | None" = None
    expected_output: "dict[int, int] | None" = None

    def threads(self) -> int:
        return len(self.programs)
