"""PARSEC-2.1 benchmark analogues (Table 5, middle block).

Facesim and PARSEC's raytrace are excluded exactly as in the paper
(Sec. 3.2 footnote 8).  The nine analogues span the suite's behaviour
space: embarrassingly-parallel data kernels (blackscholes, swaptions),
pipeline parallelism with software queues (ferret), fine-grained
lock-per-cell structures with pointer indirection (fluidanimate), and
barrier-phased streaming kernels (vips, streamcluster, bodytrack, x264,
freqmine).
"""

from __future__ import annotations

import random

from repro.core.program import ProgramBuilder
from repro.workloads.base import WorkloadImage
from repro.workloads.kernels import (
    atomic_read,
    checksum_loop,
    lcg_step,
    out_slot,
    reduce_add,
    thread_chunk,
    wait_for_input,
)
from repro.workloads.layout import ImageBuilder
from repro.workloads.splash2 import _input_words


def build_blackscholes(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Blackscholes analogue: independent per-option pricing over input."""
    ib = ImageBuilder("blsc", threads)
    iw = max(96, work // 60)
    input_base = ib.set_input_file(_input_words(rng, iw))
    options = max(threads * 4, min(4096, work // 22))
    prices = ib.alloc("prices", options)
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"blsc.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, options, 1, 2, 3)
        b.ldi(12, 0)  # price accumulator
        b.add(3, 1, 0)
        loop = b.label("opt")
        done = b.label("optd")
        b.place(loop)
        b.bge(3, 2, done)
        # three input fields per option (spot, strike, vol analogues)
        for field in range(3):
            b.muli(4, 3, 3)
            b.addi(4, 4, field)
            b.ldi(5, iw)
            b.mod(4, 4, 5)
            b.shli(4, 4, 3)
            b.addi(4, 4, input_base)
            b.ld(6 + field, 4, 0)
        # integer Black-Scholes-flavoured mix
        b.mul(9, 6, 7)
        b.shri(9, 9, 16)
        b.add(9, 9, 8)
        b.mul(9, 9, 9)
        b.shri(9, 9, 24)
        b.shli(4, 3, 3)
        b.addi(4, 4, prices)
        b.st(9, 4, 0)
        b.add(12, 12, 9)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_bodytrack(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Bodytrack analogue: particle scoring stages with global-best reduce."""
    ib = ImageBuilder("body", threads)
    iw = max(96, work // 70)
    input_base = ib.set_input_file(_input_words(rng, iw))
    particles = max(threads * 4, min(4096, work // 40))
    weights = ib.alloc("weights", particles)
    best = ib.global_word("best_score")
    block = ib.lock_word("best")
    stages = 2
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"body.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, particles, 1, 2, 3)
        for stage in range(stages):
            atomic_read(b, best, 11, 3)
            b.add(3, 1, 0)
            loop = b.label(f"sc{stage}")
            done = b.label(f"scd{stage}")
            b.place(loop)
            b.bge(3, 2, done)
            # score = window of three input samples + previous best
            b.ldi(12, 0)
            for w in range(3):
                b.muli(4, 3, 7)
                b.addi(4, 4, w + stage)
                b.ldi(5, iw)
                b.mod(4, 4, 5)
                b.shli(4, 4, 3)
                b.addi(4, 4, input_base)
                b.ld(6, 4, 0)
                b.andi(6, 6, 0xFFFFFF)
                b.add(12, 12, 6)
            b.add(12, 12, 11)
            b.shli(4, 3, 3)
            b.addi(4, 4, weights)
            b.st(12, 4, 0)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            # lock-update global best with this thread's last score
            b.ldi(3, block)
            b.spin_lock(3, 4)
            b.ldi(3, best)
            b.ld(5, 3, 0)
            upd = b.label(f"upd{stage}")
            b.bge(5, 12, upd)
            b.st(12, 3, 0)
            b.place(upd)
            b.ldi(3, block)
            b.spin_unlock(3)
            bar = ib.barrier_counter(f"stage{stage}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, weights, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        if tid == 0:
            atomic_read(b, best, 6, 3)
            out_slot(b, 0, 6, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_ferret(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Ferret analogue: producer/consumer pipeline over a software queue.

    Even threads produce similarity-query items derived from the input
    file; odd threads consume them, chasing input indices and folding a
    hash into a shared accumulator (order-insensitive, so legal timing
    variation does not change the output).
    """
    ib = ImageBuilder("ferr", threads)
    iw = max(128, work // 70)
    input_base = ib.set_input_file(_input_words(rng, iw))
    producers = [t for t in range(threads) if t % 2 == 0]
    items = max(len(producers) * 4, min(4096, work // 55))
    queue = ib.alloc("queue", items)
    qtail = ib.global_word("qtail")
    qhead = ib.global_word("qhead")
    hash_sum = ib.global_word("hash_sum")
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"ferr.t{tid}")
        wait_for_input(b, 3, 4)
        if tid % 2 == 0:
            # producer: claim slots until all items produced
            grab = b.label("pgrab")
            done = b.label("pdone")
            b.place(grab)
            b.ldi(3, qtail)
            b.ldi(4, 1)
            b.faa(5, 3, 4)  # slot
            b.ldi(4, items)
            b.bge(5, 4, done)
            b.ldi(6, iw)
            b.mod(7, 5, 6)
            b.shli(7, 7, 3)
            b.addi(7, 7, input_base)
            b.ld(8, 7, 0)
            b.ori(8, 8, 1)  # items are non-zero (zero = not yet produced)
            b.shli(7, 5, 3)
            b.addi(7, 7, queue)
            b.st(8, 7, 0)
            b.jmp(grab)
            b.place(done)
            b.halt()
        else:
            # consumer: claim slots, spin for the datum, chase and fold
            grab = b.label("cgrab")
            done = b.label("cdone")
            b.place(grab)
            b.ldi(3, qhead)
            b.ldi(4, 1)
            b.faa(5, 3, 4)  # slot
            b.ldi(4, items)
            b.bge(5, 4, done)
            b.shli(7, 5, 3)
            b.addi(7, 7, queue)
            spin = b.label(f"spin{tid}")
            b.place(spin)
            b.ld(8, 7, 0)
            b.beq(8, 0, spin)
            # two dependent index chases through the input
            for _hop in range(2):
                b.ldi(6, iw)
                b.mod(9, 8, 6)
                b.shli(9, 9, 3)
                b.addi(9, 9, input_base)
                b.ld(10, 9, 0)
                b.muli(8, 8, 5)
                b.add(8, 8, 10)
            b.andi(8, 8, 0xFFFFF)
            b.ldi(3, hash_sum)
            b.faa(9, 3, 8)
            b.jmp(grab)
            b.place(done)
            b.halt()
        programs.append(b.build())
    # thread 0 cannot both produce and report (producers halt when the
    # queue fills), so give the last consumer the reporting role.
    reporters = [t for t in range(threads) if t % 2 == 1]
    reporter = reporters[-1] if reporters else 0
    rb = ProgramBuilder(f"ferr.t{reporter}")
    wait_for_input(rb, 3, 4)
    grab = rb.label("cgrab")
    done = rb.label("cdone")
    rb.place(grab)
    rb.ldi(3, qhead)
    rb.ldi(4, 1)
    rb.faa(5, 3, 4)
    rb.ldi(4, items)
    rb.bge(5, 4, done)
    rb.shli(7, 5, 3)
    rb.addi(7, 7, queue)
    spin = rb.label("spin")
    rb.place(spin)
    rb.ld(8, 7, 0)
    rb.beq(8, 0, spin)
    for _hop in range(2):
        rb.ldi(6, iw)
        rb.mod(9, 8, 6)
        rb.shli(9, 9, 3)
        rb.addi(9, 9, input_base)
        rb.ld(10, 9, 0)
        rb.muli(8, 8, 5)
        rb.add(8, 8, 10)
    rb.andi(8, 8, 0xFFFFF)
    rb.ldi(3, hash_sum)
    rb.faa(9, 3, 8)
    rb.jmp(grab)
    rb.place(done)
    # wait until every slot has been consumed, then report the fold
    bar = ib.barrier_counter("pipeline_drain")
    # only consumers participate (producers have halted)
    nconsumers = len(reporters)
    rb.ldi(3, bar)
    rb.barrier(3, nconsumers, 4, 5)
    atomic_read(rb, hash_sum, 6, 3)
    out_slot(rb, 0, 6, 3)
    rb.halt()
    programs[reporter] = rb.build()
    # other consumers join the drain barrier before halting
    for t in reporters[:-1]:
        cb = ProgramBuilder(f"ferr.t{t}")
        wait_for_input(cb, 3, 4)
        grab = cb.label("cgrab")
        done = cb.label("cdone")
        cb.place(grab)
        cb.ldi(3, qhead)
        cb.ldi(4, 1)
        cb.faa(5, 3, 4)
        cb.ldi(4, items)
        cb.bge(5, 4, done)
        cb.shli(7, 5, 3)
        cb.addi(7, 7, queue)
        spin = cb.label("spin")
        cb.place(spin)
        cb.ld(8, 7, 0)
        cb.beq(8, 0, spin)
        for _hop in range(2):
            cb.ldi(6, iw)
            cb.mod(9, 8, 6)
            cb.shli(9, 9, 3)
            cb.addi(9, 9, input_base)
            cb.ld(10, 9, 0)
            cb.muli(8, 8, 5)
            cb.add(8, 8, 10)
        cb.andi(8, 8, 0xFFFFF)
        cb.ldi(3, hash_sum)
        cb.faa(9, 3, 8)
        cb.jmp(grab)
        cb.place(done)
        cb.ldi(3, bar)
        cb.barrier(3, nconsumers, 4, 5)
        cb.halt()
        programs[t] = cb.build()
    return ib.finish(programs)


def build_fluidanimate(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Fluidanimate analogue: per-cell locks reached through pointer tables.

    The lock and accumulator addresses are loaded from in-memory pointer
    tables -- corruption of those pointers sends the thread outside every
    valid region and traps, reproducing the control-heavy UT/Hang profile
    of the original.
    """
    ib = ImageBuilder("flui", threads)
    iw = max(96, work // 90)
    input_base = ib.set_input_file(_input_words(rng, iw))
    cells = 32
    lock_cells = ib.alloc("cell_locks", cells)
    accum_cells = ib.alloc("cell_accum", cells)
    lock_table = ib.alloc("lock_table", cells)
    accum_table = ib.alloc("accum_table", cells)
    ib.init_array(lock_table, (lock_cells + 8 * c for c in range(cells)))
    ib.init_array(accum_table, (accum_cells + 8 * c for c in range(cells)))
    particles = max(threads * 4, min(4096, work // 60))
    phases = 2
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"flui.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, particles, 1, 2, 3)
        for phase in range(phases):
            b.add(3, 1, 0)
            loop = b.label(f"ph{phase}")
            done = b.label(f"phd{phase}")
            b.place(loop)
            b.bge(3, 2, done)
            # cell = input[particle mod iw] mod cells
            b.ldi(4, iw)
            b.mod(4, 3, 4)
            b.shli(4, 4, 3)
            b.addi(4, 4, input_base)
            b.ld(5, 4, 0)
            b.addi(5, 5, phase)
            b.ldi(6, cells)
            b.mod(5, 5, 6)
            # chase the pointer tables
            b.shli(5, 5, 3)
            b.addi(6, 5, lock_table)
            b.ld(7, 6, 0)  # r7 = &lock (pointer from memory)
            b.addi(6, 5, accum_table)
            b.ld(8, 6, 0)  # r8 = &accumulator
            b.spin_lock(7, 9)
            b.ld(10, 8, 0)
            b.addi(10, 10, 1)
            b.mul(11, 3, 3)
            b.andi(11, 11, 0xFF)
            b.add(10, 10, 11)
            b.st(10, 8, 0)
            b.spin_unlock(7)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            bar = ib.barrier_counter(f"fluid{phase}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
        if tid == 0:
            b.ldi(3, 0)
            b.ldi(2, cells)
            b.ldi(12, 0)
            checksum_loop(b, accum_cells, 3, 2, 12, 4, 5)
            out_slot(b, 0, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_freqmine(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Freqmine analogue: frequent-itemset counting into FAA buckets."""
    ib = ImageBuilder("freq", threads)
    iw = max(128, work // 45)
    input_base = ib.set_input_file(_input_words(rng, iw))
    buckets = 64
    counts = ib.alloc("counts", buckets)
    items = max(threads * 4, min(8192, work // 18))
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"freq.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, items, 1, 2, 3)
        b.add(3, 1, 0)
        loop = b.label("fm")
        done = b.label("fmd")
        b.place(loop)
        b.bge(3, 2, done)
        b.ldi(4, iw)
        b.mod(4, 3, 4)
        b.shli(4, 4, 3)
        b.addi(4, 4, input_base)
        b.ld(5, 4, 0)
        b.ldi(6, 2654435761)
        b.mul(5, 5, 6)
        b.shri(5, 5, 20)
        b.andi(5, 5, buckets - 1)
        b.shli(5, 5, 3)
        b.addi(5, 5, counts)
        b.ldi(6, 1)
        b.faa(7, 5, 6)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        bar = ib.barrier_counter("count")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            b.ldi(3, 0)
            b.ldi(2, buckets)
            b.ldi(12, 0)
            checksum_loop(b, counts, 3, 2, 12, 4, 5)
            out_slot(b, 0, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_streamcluster(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Streamcluster analogue: distance rounds + cost reduction + recenter."""
    ib = ImageBuilder("stre", threads)
    points = max(threads * 8, min(4096, work // 42))
    centers = 4
    pts = ib.alloc("points", points)
    ctr = ib.alloc("centers", centers)
    ib.init_array(pts, (rng.getrandbits(32) for _ in range(points)))
    ib.init_array(ctr, (rng.getrandbits(32) for _ in range(centers)))
    cost = ib.global_word("cost")
    clock = ib.lock_word("cost")
    rounds = 3
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"stre.t{tid}")
        thread_chunk(b, points, 1, 2, 3)
        for rnd in range(rounds):
            b.ldi(12, 0)  # local cost
            b.add(3, 1, 0)
            loop = b.label(f"r{rnd}")
            done = b.label(f"rd{rnd}")
            b.place(loop)
            b.bge(3, 2, done)
            b.shli(4, 3, 3)
            b.addi(4, 4, pts)
            b.ld(5, 4, 0)  # point value
            b.ldi(11, (1 << 63) - 1)  # min distance
            for c in range(centers):
                b.ldi(6, ctr + 8 * c)
                b.ld(7, 6, 0)
                b.sub(8, 5, 7)
                b.mul(8, 8, 8)
                b.shri(8, 8, 32)
                skip = b.label(f"m{rnd}_{c}_{tid}_{b.here}")
                b.bge(8, 11, skip)
                b.add(11, 8, 0)
                b.place(skip)
            b.add(12, 12, 11)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            reduce_add(b, clock, cost, 12, 3, 4)
            bar = ib.barrier_counter(f"round{rnd}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
            if tid == 0 and rnd < rounds - 1:
                # recenter: center[rnd mod centers] = points[cost mod points]
                atomic_read(b, cost, 6, 3)
                b.ldi(7, points)
                b.mod(7, 6, 7)
                b.shli(7, 7, 3)
                b.addi(7, 7, pts)
                b.ld(8, 7, 0)
                b.ldi(7, ctr + 8 * (rnd % centers))
                b.st(8, 7, 0)
            bar2 = ib.barrier_counter(f"recenter{rnd}")
            b.ldi(3, bar2)
            b.barrier(3, threads, 4, 5)
        if tid == 0:
            atomic_read(b, cost, 6, 3)
            out_slot(b, 0, 6, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_swaptions(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Swaptions analogue: per-thread Monte-Carlo paths, minimal sharing."""
    ib = ImageBuilder("swap", threads)
    scratch = ib.alloc("scratch", threads * 16)
    sims = max(4, work // (threads * 30))
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"swap.t{tid}")
        b.ldi(1, tid * 1_000_003 + 12345)  # r1 = LCG state
        b.ldi(12, 0)  # payoff accumulator
        b.ldi(3, 0)  # sim counter
        b.ldi(2, sims)
        loop = b.label("mc")
        done = b.label("mcd")
        b.place(loop)
        b.bge(3, 2, done)
        for _step in range(3):
            lcg_step(b, 1, 4)
        # store a path point, reload it, fold into payoff
        b.andi(5, 3, 15)
        b.shli(5, 5, 3)
        b.addi(5, 5, scratch + tid * 128)
        b.shri(6, 1, 40)
        b.st(6, 5, 0)
        b.ld(7, 5, 0)
        b.add(12, 12, 7)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_vips(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """VIPS analogue: two convolution passes over an image from the input."""
    ib = ImageBuilder("vips", threads)
    iw = max(256, work // 40)
    input_base = ib.set_input_file(_input_words(rng, iw))
    n = max(threads * 8, min(8192, work // 22))
    img1 = ib.alloc("img1", n)
    img2 = ib.alloc("img2", n)
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"vips.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, n, 1, 2, 3)
        for p, (src_base, src_words, dst_base) in enumerate(
            [(input_base, iw, img1), (img1, n, img2)]
        ):
            b.add(3, 1, 0)
            loop = b.label(f"v{p}")
            done = b.label(f"vd{p}")
            b.place(loop)
            b.bge(3, 2, done)
            b.ldi(12, 0)
            for offset in (0, 1, 2):
                b.addi(4, 3, offset)
                b.ldi(5, src_words)
                b.mod(4, 4, 5)
                b.shli(4, 4, 3)
                b.addi(4, 4, src_base)
                b.ld(6, 4, 0)
                if offset == 1:
                    b.shli(6, 6, 1)
                b.add(12, 12, 6)
            b.shri(12, 12, 2)
            b.shli(4, 3, 3)
            b.addi(4, 4, dst_base)
            b.st(12, 4, 0)
            b.addi(3, 3, 1)
            b.jmp(loop)
            b.place(done)
            bar = ib.barrier_counter(f"pass{p}")
            b.ldi(3, bar)
            b.barrier(3, threads, 4, 5)
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, img2, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_x264(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """x264 analogue: per-block motion search over the reference input."""
    ib = ImageBuilder("x264", threads)
    iw = max(256, work // 50)
    input_base = ib.set_input_file(_input_words(rng, iw))
    blocks = max(threads * 4, min(4096, work // 65))
    mvs = ib.alloc("motion_vectors", blocks)
    bitrate = ib.global_word("bitrate")
    search = 4
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"x264.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, blocks, 1, 2, 3)
        b.add(3, 1, 0)
        loop = b.label("blk")
        done = b.label("blkd")
        b.place(loop)
        b.bge(3, 2, done)
        # current block sample
        b.muli(4, 3, 11)
        b.ldi(5, iw)
        b.mod(4, 4, 5)
        b.shli(4, 4, 3)
        b.addi(4, 4, input_base)
        b.ld(6, 4, 0)
        b.andi(6, 6, 0xFFFFFF)  # r6 = current
        b.ldi(11, (1 << 63) - 1)  # best SAD
        b.ldi(10, 0)  # best displacement
        for d in range(search):
            b.muli(4, 3, 11)
            b.addi(4, 4, d + 1)
            b.ldi(5, iw)
            b.mod(4, 4, 5)
            b.shli(4, 4, 3)
            b.addi(4, 4, input_base)
            b.ld(7, 4, 0)
            b.andi(7, 7, 0xFFFFFF)
            # |ref - cur| without signed arithmetic
            ge = b.label(f"ge{d}_{tid}_{b.here}")
            fin = b.label(f"fin{d}_{tid}_{b.here}")
            b.bge(7, 6, ge)
            b.sub(8, 6, 7)
            b.jmp(fin)
            b.place(ge)
            b.sub(8, 7, 6)
            b.place(fin)
            skip = b.label(f"sk{d}_{tid}_{b.here}")
            b.bge(8, 11, skip)
            b.add(11, 8, 0)
            b.ldi(10, d)
            b.place(skip)
        b.shli(4, 3, 3)
        b.addi(4, 4, mvs)
        b.st(10, 4, 0)
        b.andi(9, 11, 0xFF)
        b.ldi(4, bitrate)
        b.faa(5, 4, 9)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        bar = ib.barrier_counter("encode")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        b.ldi(12, 0)
        b.add(3, 1, 0)
        checksum_loop(b, mvs, 3, 2, 12, 4, 5)
        out_slot(b, tid + 1, 12, 3)
        if tid == 0:
            atomic_read(b, bitrate, 6, 3)
            out_slot(b, 0, 6, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)
