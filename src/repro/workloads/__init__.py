"""Benchmark workload analogues (paper Table 5).

Six SPLASH-2, nine PARSEC-2.1 and three Phoenix MapReduce applications,
re-expressed for the reproduction ISA with the paper's relative lengths,
input-file presence/sizes and synchronization character preserved.
"""

from repro.workloads.base import WorkloadImage, WorkloadMeta
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    DEFAULT_SCALE,
    PCIE_BENCHMARKS,
    REGISTRY,
    build_workload,
    workload_meta,
)

__all__ = [
    "ALL_BENCHMARKS",
    "DEFAULT_SCALE",
    "PCIE_BENCHMARKS",
    "REGISTRY",
    "WorkloadImage",
    "WorkloadMeta",
    "build_workload",
    "workload_meta",
]
