"""Phoenix shared-memory MapReduce benchmark analogues (Table 5, bottom).

All three consume large input files (99-108MB in the paper; scaled here)
in a map phase over disjoint chunks followed by a lock/FAA reduce --
the canonical Phoenix structure.
"""

from __future__ import annotations

import random

from repro.core.program import ProgramBuilder
from repro.workloads.base import WorkloadImage
from repro.workloads.kernels import (
    atomic_read,
    checksum_loop,
    out_slot,
    reduce_add,
    thread_chunk,
    wait_for_input,
)
from repro.workloads.layout import ImageBuilder
from repro.workloads.splash2 import _input_words


def build_linear_regression(
    threads: int, work: int, rng: random.Random
) -> WorkloadImage:
    """Linear-regression analogue: partial moments + closed-form reduce."""
    ib = ImageBuilder("p-lr", threads)
    iw = max(256, work // 6)
    input_base = ib.set_input_file(_input_words(rng, iw))
    pairs = iw // 2
    sums = {
        name: ib.global_word(name) for name in ("sx", "sy", "sxy", "sxx")
    }
    locks = {name: ib.lock_word(name) for name in sums}
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"p-lr.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, pairs, 1, 2, 3)
        b.ldi(9, 0)  # sx
        b.ldi(10, 0)  # sy
        b.ldi(11, 0)  # sxy
        b.ldi(12, 0)  # sxx
        b.add(3, 1, 0)
        loop = b.label("map")
        done = b.label("mapd")
        b.place(loop)
        b.bge(3, 2, done)
        b.shli(4, 3, 4)  # pair i at words 2i, 2i+1
        b.addi(5, 4, input_base)
        b.ld(6, 5, 0)
        b.ld(7, 5, 8)
        b.andi(6, 6, 0xFFFF)  # x
        b.andi(7, 7, 0xFFFF)  # y
        b.add(9, 9, 6)
        b.add(10, 10, 7)
        b.mul(8, 6, 7)
        b.add(11, 11, 8)
        b.mul(8, 6, 6)
        b.add(12, 12, 8)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        reduce_add(b, locks["sx"], sums["sx"], 9, 3, 4)
        reduce_add(b, locks["sy"], sums["sy"], 10, 3, 4)
        reduce_add(b, locks["sxy"], sums["sxy"], 11, 3, 4)
        reduce_add(b, locks["sxx"], sums["sxx"], 12, 3, 4)
        bar = ib.barrier_counter("reduce")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            # slope_num = n*sxy - sx*sy ; slope_den = n*sxx - sx*sx
            atomic_read(b, sums["sx"], 6, 3)
            atomic_read(b, sums["sy"], 7, 3)
            atomic_read(b, sums["sxy"], 8, 3)
            atomic_read(b, sums["sxx"], 9, 3)
            b.ldi(10, pairs)
            b.mul(11, 10, 8)
            b.mul(12, 6, 7)
            b.sub(11, 11, 12)  # numerator
            b.mul(12, 10, 9)
            b.mul(13, 6, 6)
            b.sub(12, 12, 13)  # denominator
            b.ori(12, 12, 1)  # guard: denominator is never zero
            b.div(11, 11, 12)
            out_slot(b, 0, 11, 3)
            out_slot(b, 1, 6, 3)
            out_slot(b, 2, 7, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_string_match(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """String-match analogue: byte-pattern scan with an FAA match counter."""
    ib = ImageBuilder("p-sm", threads)
    iw = max(256, work // 14)
    input_base = ib.set_input_file(_input_words(rng, iw))
    matches = ib.global_word("matches")
    #: the byte value searched for in every input word
    pattern = 0x5A
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"p-sm.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, iw, 1, 2, 3)
        b.ldi(12, 0)  # local match count
        b.add(3, 1, 0)
        loop = b.label("scan")
        done = b.label("scand")
        b.place(loop)
        b.bge(3, 2, done)
        b.shli(4, 3, 3)
        b.addi(4, 4, input_base)
        b.ld(5, 4, 0)
        for byte in range(8):
            b.shri(6, 5, 8 * byte)
            b.andi(6, 6, 0xFF)
            b.ldi(7, pattern)
            miss = b.label(f"miss{byte}_{b.here}")
            b.bne(6, 7, miss)
            b.addi(12, 12, 1)
            b.place(miss)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        b.ldi(3, matches)
        b.faa(4, 3, 12)
        bar = ib.barrier_counter("scan")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            atomic_read(b, matches, 6, 3)
            out_slot(b, 0, 6, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)


def build_word_count(threads: int, work: int, rng: random.Random) -> WorkloadImage:
    """Word-count analogue: hashing into lock-protected count buckets."""
    ib = ImageBuilder("p-wc", threads)
    iw = max(256, work // 16)
    input_base = ib.set_input_file(_input_words(rng, iw))
    buckets = 32
    counts = ib.alloc("counts", buckets)
    bucket_locks = ib.alloc("bucket_locks", buckets)
    programs = []
    for tid in range(threads):
        b = ProgramBuilder(f"p-wc.t{tid}")
        wait_for_input(b, 3, 4)
        thread_chunk(b, iw, 1, 2, 3)
        b.add(3, 1, 0)
        loop = b.label("wc")
        done = b.label("wcd")
        b.place(loop)
        b.bge(3, 2, done)
        b.shli(4, 3, 3)
        b.addi(4, 4, input_base)
        b.ld(5, 4, 0)  # word
        b.ldi(6, 0x9E3779B97F4A7C15)
        b.mul(5, 5, 6)
        b.shri(5, 5, 32)
        b.andi(5, 5, buckets - 1)
        b.shli(5, 5, 3)
        b.addi(6, 5, bucket_locks)  # r6 = &lock
        b.addi(7, 5, counts)  # r7 = &count
        b.spin_lock(6, 8)
        b.ld(9, 7, 0)
        b.addi(9, 9, 1)
        b.st(9, 7, 0)
        b.spin_unlock(6)
        b.addi(3, 3, 1)
        b.jmp(loop)
        b.place(done)
        bar = ib.barrier_counter("count")
        b.ldi(3, bar)
        b.barrier(3, threads, 4, 5)
        if tid == 0:
            b.ldi(3, 0)
            b.ldi(2, buckets)
            b.ldi(12, 0)
            checksum_loop(b, counts, 3, 2, 12, 4, 5)
            out_slot(b, 0, 12, 3)
        b.halt()
        programs.append(b.build())
    return ib.finish(programs)
