"""Micro-benchmark harness for the cycle engine (``repro bench``).

Measures simulation throughput (cycles/second) for the paths that
dominate campaign wall-clock -- the golden run, one injection cell, one
QRR cell and a sweep smoke -- under both cycle engines, and emits the
canonical ``BENCH_step.json`` so every PR has a recorded perf
trajectory.  See :mod:`repro.bench.harness`.
"""

from repro.bench.harness import (
    BenchSettings,
    check_against_baseline,
    fault_overhead_guard,
    host_noise_warnings,
    obs_overhead_guard,
    run_benches,
)

__all__ = [
    "BenchSettings",
    "check_against_baseline",
    "fault_overhead_guard",
    "host_noise_warnings",
    "obs_overhead_guard",
    "run_benches",
]
