"""Cycle-engine benchmark scenarios and the canonical BENCH JSON.

Four scenarios cover the hot paths of the reproduction, each timed under
all three cycle engines (``event`` -- the default activity-tracked
engine --, ``compiled`` -- the block-superinstruction core engine --
and ``reference`` -- the everything-every-cycle baseline stepper):

* ``golden``: the error-free reference run with periodic (delta)
  snapshots -- phase-1 setup of every platform.
* ``injection``: one L2C injection-campaign cell (restore, replay,
  co-simulate, classify) on a shared platform.
* ``qrr``: one QRR recovery-campaign cell.
* ``sweep``: a small injection grid through the experiment API's serial
  executor, platform construction included.

Throughput is reported as simulated cycles per wall-clock second;
``Machine.cycles_advanced`` counts every advanced cycle including the
event engine's one-hop idle skips, so all engines are measured against
the same denominator.  Each scenario runs ``repeats`` times and keeps
the best (the host's scheduling noise is substantial).

Schema v2 additions: per-engine golden entries carry a ``phases``
breakdown (core interpretation vs uncore datapath vs snapshot capture,
measured on one instrumented pass outside the timed repeats) and the
result matrix reports ``speedup_compiled_vs_reference`` /
``speedup_compiled_vs_event`` alongside the existing event-vs-reference
ratio.
"""

from __future__ import annotations

import gc
import json
import platform as _platform
import random
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.api import ExperimentSpec, SerialExecutor, Session, dumps_canonical
from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import CosimConfig, MixedModePlatform, compute_golden
from repro.qrr.campaign import QrrCampaign
from repro.system.machine import ENGINES, Machine, MachineConfig
from repro.workloads import build_workload

#: Bump when the BENCH JSON layout changes incompatibly.
BENCH_SCHEMA_VERSION = 2

#: The machine geometry campaigns use (matches the CLI defaults).
BENCH_MACHINE = MachineConfig(
    cores=8, threads_per_core=4, l2_banks=8, l2_sets=8, l2_ways=4
)

BENCH_BENCHMARK = "fft"
BENCH_SCALE = 1.0 / 40_000.0
BENCH_SEED = 2015

ALL_SCENARIOS = ("golden", "injection", "qrr", "sweep")


@dataclass(frozen=True)
class BenchSettings:
    """Sizing knobs; ``tiny()`` is the CI smoke configuration."""

    injections: int = 8
    qrr_runs: int = 5
    sweep_runs: int = 2
    repeats: int = 3
    scenarios: tuple = ALL_SCENARIOS
    engines: tuple = ENGINES

    @classmethod
    def tiny(cls) -> "BenchSettings":
        return cls(injections=3, qrr_runs=2, sweep_runs=2, repeats=2)


def _timed(fn, repeats: int) -> tuple[float, object]:
    """(best seconds, last result) over ``repeats`` runs of ``fn``.

    The collector is paused during timed sections (snapshot chains and
    campaign records make generational sweeps expensive and bursty --
    they were the dominant run-to-run noise) and run between repeats.
    """
    best = None
    result = None
    gc_was_enabled = gc.isenabled()
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _throughput(cycles: int, seconds: float) -> dict:
    return {
        "cycles": cycles,
        "seconds": round(seconds, 6),
        "cycles_per_sec": round(cycles / seconds, 1) if seconds else 0.0,
    }


def _bench_golden(engine: str, settings: BenchSettings, log) -> dict:
    image = build_workload(
        BENCH_BENCHMARK,
        threads=BENCH_MACHINE.total_threads,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    stats = {}

    def once():
        machine = Machine(BENCH_MACHINE, engine=engine)
        machine.load_workload(image)
        before = machine.cycles_advanced
        golden = compute_golden(machine, CosimConfig(), keep_snapshots=True)
        stats["cycles"] = machine.cycles_advanced - before
        if hasattr(golden.snapshots, "storage_stats"):
            stats["snapshots"] = golden.snapshots.storage_stats()
        return golden

    seconds, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    if "snapshots" in stats:
        out["snapshot_storage"] = stats["snapshots"]
    if engine != "reference":
        # the reference engine inlines its uncore stage, so no phase
        # split is measurable for it -- skip the extra pass rather than
        # pay the slowest engine's golden run for an empty breakdown
        out["phases"] = _golden_phase_breakdown(engine, image)
    log(f"  golden[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s")
    return out


def _golden_phase_breakdown(engine: str, image) -> dict:
    """Schema-v2 per-phase timing of one golden run (seconds).

    One extra *instrumented* pass (outside the timed best-of repeats,
    so the headline numbers stay clean): the uncore stage and the
    snapshot captures are wrapped with timers on the machine instance,
    and core interpretation is everything that remains.
    """
    machine = Machine(BENCH_MACHINE, engine=engine)
    machine.load_workload(image)
    acc = {"uncore": 0.0, "snapshot": 0.0}
    perf = time.perf_counter

    def wrap(name, fn):
        def timed(*args, **kwargs):
            t0 = perf()
            result = fn(*args, **kwargs)
            acc[name] += perf() - t0
            return result

        return timed

    machine._step_uncore = wrap("uncore", machine._step_uncore)
    machine.snapshot = wrap("snapshot", machine.snapshot)
    machine.delta_snapshot = wrap("snapshot", machine.delta_snapshot)
    t0 = perf()
    compute_golden(machine, CosimConfig(), keep_snapshots=True)
    total = perf() - t0
    return {
        "total": round(total, 6),
        "snapshot": round(acc["snapshot"], 6),
        "uncore": round(acc["uncore"], 6),
        "core_interp": round(
            max(0.0, total - acc["uncore"] - acc["snapshot"]), 6
        ),
    }


def _campaign_platform(engine: str) -> MixedModePlatform:
    return MixedModePlatform(
        BENCH_BENCHMARK,
        machine_config=BENCH_MACHINE,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        engine=engine,
    )


def _bench_injection(engine: str, settings: BenchSettings, log) -> dict:
    plat = _campaign_platform(engine)
    stats = {}

    def once():
        before = plat.machine.cycles_advanced
        InjectionCampaign(plat, "l2c", seed=BENCH_SEED).run(settings.injections)
        stats["cycles"] = plat.machine.cycles_advanced - before

    seconds, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["runs"] = settings.injections
    out["ms_per_run"] = round(seconds / settings.injections * 1e3, 2)
    log(
        f"  injection[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s "
        f"({out['ms_per_run']}ms/run)"
    )
    return out


def _bench_qrr(engine: str, settings: BenchSettings, log) -> dict:
    plat = _campaign_platform(engine)
    stats = {}

    def once():
        before = plat.machine.cycles_advanced
        result = QrrCampaign(plat, "l2c").run(settings.qrr_runs, seed=BENCH_SEED)
        stats["cycles"] = plat.machine.cycles_advanced - before
        stats["recovered"] = result.recovered
        return result

    seconds, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["runs"] = settings.qrr_runs
    out["recovered"] = stats["recovered"]
    out["ms_per_run"] = round(seconds / settings.qrr_runs * 1e3, 2)
    log(
        f"  qrr[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s "
        f"({out['ms_per_run']}ms/run)"
    )
    return out


def _bench_sweep(engine: str, settings: BenchSettings, log) -> dict:
    specs = [
        ExperimentSpec(
            benchmark=BENCH_BENCHMARK,
            component=component,
            mode="injection",
            machine=BENCH_MACHINE,
            scale=BENCH_SCALE,
            seed=BENCH_SEED,
            n=settings.sweep_runs,
        )
        for component in ("l2c", "mcu")
    ]
    stats = {}

    def once():
        session = Session(engine=engine)
        SerialExecutor(session).run(specs)
        stats["cycles"] = sum(
            plat.machine.cycles_advanced for plat in session.platforms()
        )

    seconds, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["cells"] = len(specs)
    log(f"  sweep[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s")
    return out


_SCENARIO_FNS = {
    "golden": _bench_golden,
    "injection": _bench_injection,
    "qrr": _bench_qrr,
    "sweep": _bench_sweep,
}


def run_benches(
    settings: "BenchSettings | None" = None, log=lambda line: None
) -> dict:
    """Run the scenario x engine matrix; returns the BENCH document."""
    settings = settings if settings is not None else BenchSettings()
    results: dict = {}
    for scenario in settings.scenarios:
        fn = _SCENARIO_FNS[scenario]
        log(f"{scenario}:")
        entry: dict = {}
        for engine in settings.engines:
            entry[engine] = fn(engine, settings, log)
        for name, num, den in (
            ("speedup_event_vs_reference", "event", "reference"),
            ("speedup_compiled_vs_reference", "compiled", "reference"),
            ("speedup_compiled_vs_event", "compiled", "event"),
        ):
            if num in entry and den in entry:
                base = entry[den]["cycles_per_sec"]
                if base:
                    entry[name] = round(
                        entry[num]["cycles_per_sec"] / base, 3
                    )
        results[scenario] = entry
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "settings": {
            "benchmark": BENCH_BENCHMARK,
            "machine": BENCH_MACHINE.to_dict(),
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "injections": settings.injections,
            "qrr_runs": settings.qrr_runs,
            "sweep_runs": settings.sweep_runs,
            "repeats": settings.repeats,
        },
        "python": _platform.python_version(),
        "results": results,
    }


def fault_overhead_guard(
    settings: "BenchSettings | None" = None,
    log=lambda line: None,
    engine: str = "event",
) -> dict:
    """Measure the fault-subsystem tax on the default injection path.

    Runs the same campaign cell two ways on one shared platform -- a
    frozen replica of the pre-subsystem inline path (the sampling
    arithmetic below is copied verbatim from the seed's
    ``sample_injection_point`` so the baseline cannot silently absorb
    subsystem costs, plus ``run_injection(component, cycle, bit)``) and
    :class:`~repro.injection.campaign.InjectionCampaign`'s default
    :class:`~repro.faults.models.SingleBitFlip` model -- and reports the
    relative overhead.  Both paths execute bit-identical simulation
    work, so the ratio isolates the subsystem's dispatch cost; the
    runs interleave (best-of) to cancel host drift.  CI gates this at
    5% (``repro bench --fault-guard``), for both the event and the
    compiled engine (``--fault-guard-engine``) so the compiled fast
    path's de-optimization hooks stay within budget too.
    """
    from repro.injection.campaign import InjectionCampaign
    from repro.soc.geometry import T2_GEOMETRY

    settings = settings if settings is not None else BenchSettings.tiny()
    plat = _campaign_platform(engine)
    component = "l2c"
    nbits = T2_GEOMETRY[component].target_ffs

    def inline():
        rng = random.Random(
            (BENCH_SEED << 16) ^ (zlib.crc32(component.encode()) & 0xFFFF)
        )
        for _ in range(settings.injections):
            # the seed's inline sampler, frozen (l2c branch)
            cycle = rng.randrange(1, max(2, plat.golden.cycles - 1))
            instance = rng.randrange(plat.machine_config.l2_banks)
            bit = rng.randrange(nbits)
            plat.run_injection(component, cycle, bit, instance=instance, rng=rng)

    def modeled():
        InjectionCampaign(plat, component, seed=BENCH_SEED).run(
            settings.injections
        )

    # more repeats than the throughput benches: the gate is tight (5%),
    # so the best-of sample needs to beat host scheduling noise
    repeats = max(5, settings.repeats)
    best_inline = best_model = None
    for _ in range(repeats):
        seconds, _ = _timed(inline, 1)
        if best_inline is None or seconds < best_inline:
            best_inline = seconds
        seconds, _ = _timed(modeled, 1)
        if best_model is None or seconds < best_model:
            best_model = seconds
    overhead = best_model / best_inline - 1.0
    log(
        f"fault guard[{engine}]: inline {best_inline * 1e3:.1f}ms vs model "
        f"{best_model * 1e3:.1f}ms over {settings.injections} runs "
        f"({overhead:+.1%})"
    )
    return {
        "engine": engine,
        "inline_seconds": round(best_inline, 6),
        "model_seconds": round(best_model, 6),
        "runs": settings.injections,
        "overhead": round(overhead, 4),
    }


def save_bench(doc: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.write_text(dumps_canonical(doc) + "\n")
    return path


def check_against_baseline(
    doc: dict, baseline_path: "str | Path", tolerance: float = 0.30
) -> list[str]:
    """Regression check: per-engine cycles/sec must not fall more than
    ``tolerance`` below the committed baseline.  Every engine present in
    the baseline (event, compiled, reference) is gated, so the compiled
    fast path cannot silently regress either.  Returns failure lines
    (empty when the check passes)."""
    baseline = json.loads(Path(baseline_path).read_text())
    failures: list[str] = []
    for scenario, entry in baseline.get("results", {}).items():
        current_entry = doc.get("results", {}).get(scenario)
        if current_entry is None:
            continue
        for engine in ENGINES:
            engine_entry = entry.get(engine)
            if not isinstance(engine_entry, dict):
                continue
            base = engine_entry.get("cycles_per_sec")
            if not base:
                continue
            current = current_entry.get(engine, {}).get("cycles_per_sec", 0.0)
            floor = base * (1.0 - tolerance)
            if current < floor:
                failures.append(
                    f"{scenario}[{engine}]: {current:,.0f} cycles/s is more "
                    f"than {tolerance:.0%} below the baseline {base:,.0f}"
                )
    return failures
