"""Cycle-engine benchmark scenarios and the canonical BENCH JSON.

Four scenarios cover the hot paths of the reproduction, each timed under
all three cycle engines (``event`` -- the default activity-tracked
engine --, ``compiled`` -- the block-superinstruction core engine --
and ``reference`` -- the everything-every-cycle baseline stepper):

* ``golden``: the error-free reference run with periodic (delta)
  snapshots -- phase-1 setup of every platform.
* ``injection``: one L2C injection-campaign cell (restore, replay,
  co-simulate, classify) on a shared platform.
* ``qrr``: one QRR recovery-campaign cell.
* ``sweep``: a small injection grid through the experiment API's serial
  executor, platform construction included.

Two further scenarios are *fabric* comparisons rather than engine rows:
``cluster`` runs the same grid through the serial executor and through
a 2-worker localhost cluster (:mod:`repro.cluster`) with a fresh result
bus per repeat, reporting cells/sec for each and the scaling ratio; and
``serve`` load-tests the campaign daemon (:mod:`repro.serve`) over real
localhost HTTP -- a cold grid run end to end (cells/sec) plus a warm
phase of concurrent clients re-asking for the done job's results
(requests/sec, p50/p95 request latency).

Throughput is reported as simulated cycles per wall-clock second;
``Machine.cycles_advanced`` counts every advanced cycle including the
event engine's one-hop idle skips, so all engines are measured against
the same denominator.  Each scenario runs ``repeats`` times and keeps
the best (the host's scheduling noise is substantial).

Schema v2 added per-engine golden ``phases`` breakdowns and the
compiled-engine speedup ratios.  Schema v3 keeps ``seconds`` = best (so
baseline comparisons stay valid across the bump) and adds a ``spread``
entry per bench -- min/median/max/stdev over the repeats -- so host
noise is visible in the document instead of silently discarded;
:func:`check_against_baseline` flags noisy hosts from it.  The golden
phase breakdown now comes from the timed repeats themselves via
``Machine.instrument_phases`` (the obs span/timer API) instead of a
separate monkey-patched pass.
"""

from __future__ import annotations

import gc
import json
import os
import platform as _platform
import random
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.api import ExperimentSpec, SerialExecutor, Session, dumps_canonical
from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import CosimConfig, MixedModePlatform, compute_golden
from repro.obs import Timer
from repro.obs.registry import spread
from repro.qrr.campaign import QrrCampaign
from repro.system.machine import ENGINES, Machine, MachineConfig
from repro.workloads import build_workload

#: Bump when the BENCH JSON layout changes incompatibly.
BENCH_SCHEMA_VERSION = 3

#: The machine geometry campaigns use (matches the CLI defaults).
BENCH_MACHINE = MachineConfig(
    cores=8, threads_per_core=4, l2_banks=8, l2_sets=8, l2_ways=4
)

BENCH_BENCHMARK = "fft"
BENCH_SCALE = 1.0 / 40_000.0
BENCH_SEED = 2015

ALL_SCENARIOS = ("golden", "injection", "qrr", "sweep", "cluster", "serve")


@dataclass(frozen=True)
class BenchSettings:
    """Sizing knobs; ``tiny()`` is the CI smoke configuration."""

    injections: int = 8
    qrr_runs: int = 5
    sweep_runs: int = 2
    repeats: int = 3
    scenarios: tuple = ALL_SCENARIOS
    engines: tuple = ENGINES

    @classmethod
    def tiny(cls) -> "BenchSettings":
        return cls(injections=3, qrr_runs=2, sweep_runs=2, repeats=2)


def _timed(fn, repeats: int) -> tuple[float, list[float], object]:
    """(best seconds, all per-repeat seconds, result of the best repeat)
    over ``repeats`` runs of ``fn``.

    The collector is paused during timed sections (snapshot chains and
    campaign records make generational sweeps expensive and bursty --
    they were the dominant run-to-run noise) and run between repeats.
    Every repeat's time is kept: the schema-v3 ``spread`` entries are
    computed from the full sample list, not just the winner.
    """
    best = None
    best_result = None
    samples: list[float] = []
    gc_was_enabled = gc.isenabled()
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        samples.append(elapsed)
        if best is None or elapsed < best:
            best = elapsed
            best_result = result
    return best, samples, best_result


def _throughput(cycles: int, seconds: float) -> dict:
    return {
        "cycles": cycles,
        "seconds": round(seconds, 6),
        "cycles_per_sec": round(cycles / seconds, 1) if seconds else 0.0,
    }


def _bench_golden(engine: str, settings: BenchSettings, log) -> dict:
    image = build_workload(
        BENCH_BENCHMARK,
        threads=BENCH_MACHINE.total_threads,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    stats = {}
    # the reference engine inlines its uncore stage, so no phase split
    # is measurable for it -- skip the instrumentation entirely
    measure_phases = engine != "reference"

    def once():
        machine = Machine(BENCH_MACHINE, engine=engine)
        machine.load_workload(image)
        phase_timers = None
        if measure_phases:
            # phases come from the measured run itself: the obs Timer
            # shims on the machine's chokepoints replace the old
            # separate monkey-patched pass
            phase_timers = (Timer("uncore"), Timer("snapshot"))
            machine.instrument_phases(
                uncore=phase_timers[0], snapshot=phase_timers[1]
            )
        before = machine.cycles_advanced
        golden = compute_golden(machine, CosimConfig(), keep_snapshots=True)
        stats["cycles"] = machine.cycles_advanced - before
        if hasattr(golden.snapshots, "storage_stats"):
            stats["snapshots"] = golden.snapshots.storage_stats()
        return phase_timers

    seconds, samples, phase_timers = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["spread"] = spread(samples)
    if "snapshots" in stats:
        out["snapshot_storage"] = stats["snapshots"]
    if phase_timers is not None:
        # the best repeat's timers (total = that repeat's wall time)
        uncore_t, snapshot_t = phase_timers
        out["phases"] = {
            "total": round(seconds, 6),
            "snapshot": round(snapshot_t.seconds, 6),
            "uncore": round(uncore_t.seconds, 6),
            "core_interp": round(
                max(0.0, seconds - uncore_t.seconds - snapshot_t.seconds), 6
            ),
        }
    log(f"  golden[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s")
    return out


def _campaign_platform(engine: str) -> MixedModePlatform:
    return MixedModePlatform(
        BENCH_BENCHMARK,
        machine_config=BENCH_MACHINE,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        engine=engine,
    )


def _bench_injection(engine: str, settings: BenchSettings, log) -> dict:
    plat = _campaign_platform(engine)
    stats = {}

    def once():
        before = plat.machine.cycles_advanced
        InjectionCampaign(plat, "l2c", seed=BENCH_SEED).run(settings.injections)
        stats["cycles"] = plat.machine.cycles_advanced - before

    seconds, samples, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["spread"] = spread(samples)
    out["runs"] = settings.injections
    out["ms_per_run"] = round(seconds / settings.injections * 1e3, 2)
    log(
        f"  injection[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s "
        f"({out['ms_per_run']}ms/run)"
    )
    return out


def _bench_qrr(engine: str, settings: BenchSettings, log) -> dict:
    plat = _campaign_platform(engine)
    stats = {}

    def once():
        before = plat.machine.cycles_advanced
        result = QrrCampaign(plat, "l2c").run(settings.qrr_runs, seed=BENCH_SEED)
        stats["cycles"] = plat.machine.cycles_advanced - before
        stats["recovered"] = result.recovered
        return result

    seconds, samples, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["spread"] = spread(samples)
    out["runs"] = settings.qrr_runs
    out["recovered"] = stats["recovered"]
    out["ms_per_run"] = round(seconds / settings.qrr_runs * 1e3, 2)
    log(
        f"  qrr[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s "
        f"({out['ms_per_run']}ms/run)"
    )
    return out


def _bench_sweep(engine: str, settings: BenchSettings, log) -> dict:
    specs = [
        ExperimentSpec(
            benchmark=BENCH_BENCHMARK,
            component=component,
            mode="injection",
            machine=BENCH_MACHINE,
            scale=BENCH_SCALE,
            seed=BENCH_SEED,
            n=settings.sweep_runs,
        )
        for component in ("l2c", "mcu")
    ]
    stats = {}

    def once():
        session = Session(engine=engine)
        SerialExecutor(session).run(specs)
        stats["cycles"] = sum(
            plat.machine.cycles_advanced for plat in session.platforms()
        )

    seconds, samples, _ = _timed(once, settings.repeats)
    out = _throughput(stats["cycles"], seconds)
    out["spread"] = spread(samples)
    out["cells"] = len(specs)
    log(f"  sweep[{engine}]: {out['cycles_per_sec']:,.0f} cycles/s")
    return out


def _bench_cluster(settings: BenchSettings, log) -> dict:
    """Cluster scaling: one grid through the serial executor vs a
    2-worker localhost cluster.

    Not an engine scenario -- the engines already have their own rows;
    this one compares execution *fabrics* on the default engine.  The
    cluster runs without a pinned ``cache_dir``, so every repeat gets a
    fresh private result bus and pays real computation (worker spawn
    included) instead of cache hits; cells/sec is therefore the honest
    end-to-end distributed throughput, launch overhead and all.
    """
    from repro.cluster import ClusterExecutor

    specs = [
        ExperimentSpec(
            benchmark=BENCH_BENCHMARK,
            component=component,
            mode="injection",
            machine=BENCH_MACHINE,
            scale=BENCH_SCALE,
            seed=seed,
            n=settings.sweep_runs,
        )
        for component in ("l2c", "mcu")
        for seed in (BENCH_SEED, BENCH_SEED + 1)
    ]
    cells = len(specs)
    workers = 2

    def _fabric(make_executor_fn) -> dict:
        def once():
            make_executor_fn().run(specs)

        seconds, samples, _ = _timed(once, settings.repeats)
        return {
            "seconds": round(seconds, 6),
            "cells_per_sec": round(cells / seconds, 3) if seconds else 0.0,
            "spread": spread(samples),
        }

    serial = _fabric(SerialExecutor)
    cluster = _fabric(lambda: ClusterExecutor(workers=workers))
    entry = {
        "cells": cells,
        "workers": workers,
        "serial": serial,
        f"cluster_{workers}": cluster,
    }
    if cluster["seconds"]:
        entry["speedup_cluster_vs_serial"] = round(
            serial["seconds"] / cluster["seconds"], 3
        )
    log(
        f"  cluster: serial {serial['cells_per_sec']:.2f} cells/s vs "
        f"{workers}-worker {cluster['cells_per_sec']:.2f} cells/s "
        f"(x{entry.get('speedup_cluster_vs_serial', 0.0):.2f})"
    )
    return entry


def _percentile(samples: list, q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _bench_serve(settings: BenchSettings, log) -> dict:
    """Serve load test: the daemon under concurrent HTTP clients.

    Like ``cluster``, a fabric row rather than an engine row.  Two
    phases against one in-process daemon (real HTTP over localhost):

    * **cold**: one grid submitted and run to completion on an empty
      bus -- end-to-end cells/sec through admission, the journal, and
      the warm pool, executor spawn included.
    * **warm**: concurrent clients hammering submit(dedupe) + result
      fetch for the now-done job -- requests/sec plus p50/p95 request
      latency, i.e. the pure serving overhead once results are durable.
    """
    import tempfile
    import threading

    from repro.serve import CampaignService, ServeClient, make_server

    specs = [
        ExperimentSpec(
            benchmark=BENCH_BENCHMARK,
            component=component,
            mode="injection",
            machine=BENCH_MACHINE,
            scale=BENCH_SCALE,
            seed=seed,
            n=settings.sweep_runs,
        )
        for component in ("l2c", "mcu")
        for seed in (BENCH_SEED, BENCH_SEED + 1)
    ]
    cells = len(specs)
    clients = 4
    requests_per_client = max(5, settings.repeats * 5)
    request = {"specs": [spec.to_dict() for spec in specs]}

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        service = CampaignService(
            Path(tmp) / "state",
            queue_limit=max(16, clients * 2),
            per_client_limit=clients * 2,
        )
        service.start()
        server = make_server(service, host="127.0.0.1", port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            # cold: empty bus, real compute, one client waiting
            client = ServeClient(url, client_id="bench-cold")
            t0 = time.perf_counter()
            view, _raw = client.run(request, timeout=600.0)
            cold_seconds = time.perf_counter() - t0
            assert view["status"] == "done"
            job_id = view["id"]

            # warm: concurrent clients, dedupe + bus-backed results
            latencies: list[float] = []
            lock = threading.Lock()

            def hammer(worker: int) -> None:
                mine = ServeClient(url, client_id=f"bench-{worker}")
                samples = []
                for _ in range(requests_per_client):
                    t1 = time.perf_counter()
                    resubmit = mine.submit(request)
                    mine.result_bytes(resubmit["id"])
                    samples.append(time.perf_counter() - t1)
                with lock:
                    latencies.extend(samples)

            threads = [
                threading.Thread(target=hammer, args=(i,), daemon=True)
                for i in range(clients)
            ]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            warm_seconds = time.perf_counter() - t0
            assert service.job(job_id).status == "done"
        finally:
            server.shutdown()
            server.server_close()
            service.close(timeout=30.0)

    total_requests = len(latencies)
    entry = {
        "cells": cells,
        "clients": clients,
        "cold": {
            "seconds": round(cold_seconds, 6),
            "cells_per_sec": round(cells / cold_seconds, 3)
            if cold_seconds else 0.0,
        },
        "warm": {
            "requests": total_requests,
            "seconds": round(warm_seconds, 6),
            "requests_per_sec": round(total_requests / warm_seconds, 3)
            if warm_seconds else 0.0,
            "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "latency_p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        },
    }
    log(
        f"  serve: cold {entry['cold']['cells_per_sec']:.2f} cells/s; "
        f"warm {entry['warm']['requests_per_sec']:.1f} req/s from "
        f"{clients} clients (p50 {entry['warm']['latency_p50_ms']:.1f}ms, "
        f"p95 {entry['warm']['latency_p95_ms']:.1f}ms)"
    )
    return entry


_SCENARIO_FNS = {
    "golden": _bench_golden,
    "injection": _bench_injection,
    "qrr": _bench_qrr,
    "sweep": _bench_sweep,
}


def run_benches(
    settings: "BenchSettings | None" = None, log=lambda line: None
) -> dict:
    """Run the scenario x engine matrix; returns the BENCH document."""
    settings = settings if settings is not None else BenchSettings()
    results: dict = {}
    for scenario in settings.scenarios:
        if scenario == "cluster":
            # a fabric comparison, not an engine row: serial vs a
            # 2-worker localhost cluster on the default engine
            log("cluster:")
            results["cluster"] = _bench_cluster(settings, log)
            continue
        if scenario == "serve":
            # also a fabric row: the daemon under concurrent clients
            log("serve:")
            results["serve"] = _bench_serve(settings, log)
            continue
        fn = _SCENARIO_FNS[scenario]
        log(f"{scenario}:")
        entry: dict = {}
        for engine in settings.engines:
            entry[engine] = fn(engine, settings, log)
        for name, num, den in (
            ("speedup_event_vs_reference", "event", "reference"),
            ("speedup_compiled_vs_reference", "compiled", "reference"),
            ("speedup_compiled_vs_event", "compiled", "event"),
        ):
            if num in entry and den in entry:
                base = entry[den]["cycles_per_sec"]
                if base:
                    entry[name] = round(
                        entry[num]["cycles_per_sec"] / base, 3
                    )
        results[scenario] = entry
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "settings": {
            "benchmark": BENCH_BENCHMARK,
            "machine": BENCH_MACHINE.to_dict(),
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "injections": settings.injections,
            "qrr_runs": settings.qrr_runs,
            "sweep_runs": settings.sweep_runs,
            "repeats": settings.repeats,
        },
        "python": _platform.python_version(),
        "results": results,
    }


def fault_overhead_guard(
    settings: "BenchSettings | None" = None,
    log=lambda line: None,
    engine: str = "event",
) -> dict:
    """Measure the fault-subsystem tax on the default injection path.

    Runs the same campaign cell two ways on one shared platform -- a
    frozen replica of the pre-subsystem inline path (the sampling
    arithmetic below is copied verbatim from the seed's
    ``sample_injection_point`` so the baseline cannot silently absorb
    subsystem costs, plus ``run_injection(component, cycle, bit)``) and
    :class:`~repro.injection.campaign.InjectionCampaign`'s default
    :class:`~repro.faults.models.SingleBitFlip` model -- and reports the
    relative overhead.  Both paths execute bit-identical simulation
    work, so the ratio isolates the subsystem's dispatch cost; the
    runs interleave (best-of) to cancel host drift.  CI gates this at
    5% (``repro bench --fault-guard``), for both the event and the
    compiled engine (``--fault-guard-engine``) so the compiled fast
    path's de-optimization hooks stay within budget too.
    """
    from repro.injection.campaign import InjectionCampaign
    from repro.soc.geometry import T2_GEOMETRY

    settings = settings if settings is not None else BenchSettings.tiny()
    plat = _campaign_platform(engine)
    component = "l2c"
    nbits = T2_GEOMETRY[component].target_ffs

    def inline():
        rng = random.Random(
            (BENCH_SEED << 16) ^ (zlib.crc32(component.encode()) & 0xFFFF)
        )
        for _ in range(settings.injections):
            # the seed's inline sampler, frozen (l2c branch)
            cycle = rng.randrange(1, max(2, plat.golden.cycles - 1))
            instance = rng.randrange(plat.machine_config.l2_banks)
            bit = rng.randrange(nbits)
            plat.run_injection(component, cycle, bit, instance=instance, rng=rng)

    def modeled():
        InjectionCampaign(plat, component, seed=BENCH_SEED).run(
            settings.injections
        )

    # more repeats than the throughput benches: the gate is tight (5%),
    # so the best-of sample needs to beat host scheduling noise
    repeats = max(5, settings.repeats)
    best_inline = best_model = None
    for _ in range(repeats):
        seconds, _, _ = _timed(inline, 1)
        if best_inline is None or seconds < best_inline:
            best_inline = seconds
        seconds, _, _ = _timed(modeled, 1)
        if best_model is None or seconds < best_model:
            best_model = seconds
    overhead = best_model / best_inline - 1.0
    log(
        f"fault guard[{engine}]: inline {best_inline * 1e3:.1f}ms vs model "
        f"{best_model * 1e3:.1f}ms over {settings.injections} runs "
        f"({overhead:+.1%})"
    )
    return {
        "engine": engine,
        "inline_seconds": round(best_inline, 6),
        "model_seconds": round(best_model, 6),
        "runs": settings.injections,
        "overhead": round(overhead, 4),
    }


def obs_overhead_guard(
    settings: "BenchSettings | None" = None,
    log=lambda line: None,
    engine: str = "event",
) -> dict:
    """Measure the observability layer's tax on a campaign cell.

    Runs the same L2C injection cell on two platforms built under
    opposite obs states -- one with the layer disabled (null metric
    handles frozen into the machine) and one with it enabled (live
    registry counters, fault accounting, session timers) -- and reports
    the relative overhead of the enabled path.  Both cells execute
    bit-identical simulation work (obs never consumes campaign RNG), so
    the ratio isolates instrumentation cost.  CI gates this at 10%
    (``repro bench --obs-guard``).  The obs-*off* budget (<= 2% vs the
    pre-obs code) is enforced separately by the committed-baseline
    throughput gate: the disabled path's only additions are is-None
    checks at coarse chokepoints, which the 30%-tolerance baseline
    comparison would catch long before they cost 2%.

    The process-wide obs state (and ``REPRO_OBS``) is restored on exit.
    """
    from repro import obs

    settings = settings if settings is not None else BenchSettings.tiny()
    component = "l2c"
    prev_env = os.environ.get("REPRO_OBS")
    prev_enabled = obs.enabled()
    try:
        obs.disable()
        plat_off = _campaign_platform(engine)
        obs.enable()
        plat_on = _campaign_platform(engine)

        def run_off():
            obs.disable()
            InjectionCampaign(plat_off, component, seed=BENCH_SEED).run(
                settings.injections
            )

        def run_on():
            obs.enable()
            InjectionCampaign(plat_on, component, seed=BENCH_SEED).run(
                settings.injections
            )

        # interleaved best-of to cancel host drift, like the fault guard
        repeats = max(5, settings.repeats)
        best_off = best_on = None
        for _ in range(repeats):
            seconds, _, _ = _timed(run_off, 1)
            if best_off is None or seconds < best_off:
                best_off = seconds
            seconds, _, _ = _timed(run_on, 1)
            if best_on is None or seconds < best_on:
                best_on = seconds
    finally:
        if prev_enabled:
            obs.enable()
        else:
            # the enable was ours: drop the guard's metrics too, so a
            # previously-silent process stays silent
            obs.disable()
            obs.REGISTRY.clear()
        if prev_env is None:
            os.environ.pop("REPRO_OBS", None)
        else:
            os.environ["REPRO_OBS"] = prev_env
    overhead = best_on / best_off - 1.0
    log(
        f"obs guard[{engine}]: off {best_off * 1e3:.1f}ms vs on "
        f"{best_on * 1e3:.1f}ms over {settings.injections} runs "
        f"({overhead:+.1%})"
    )
    return {
        "engine": engine,
        "off_seconds": round(best_off, 6),
        "on_seconds": round(best_on, 6),
        "runs": settings.injections,
        "overhead": round(overhead, 4),
    }


def save_bench(doc: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.write_text(dumps_canonical(doc) + "\n")
    return path


def host_noise_warnings(doc: dict, threshold: float = 0.10) -> list[str]:
    """Benches whose repeat spread says the host was noisy.

    A bench whose stdev/median exceeds ``threshold`` produced a best-of
    sample that may not be trustworthy -- a regression verdict against
    the baseline should be re-run before being believed.  Advisory only
    (never a CI failure): noise is a property of the host, not the code.
    """
    warnings: list[str] = []
    for scenario, entry in doc.get("results", {}).items():
        for engine in ENGINES:
            engine_entry = entry.get(engine)
            if not isinstance(engine_entry, dict):
                continue
            sp = engine_entry.get("spread")
            if not sp or not sp.get("median"):
                continue
            noise = sp["stdev"] / sp["median"]
            if noise > threshold:
                warnings.append(
                    f"{scenario}[{engine}]: noisy host -- stdev/median "
                    f"{noise:.0%} exceeds {threshold:.0%} "
                    f"(spread {sp['min']:.3f}..{sp['max']:.3f}s); treat "
                    f"baseline comparisons for this bench with suspicion"
                )
    return warnings


def check_against_baseline(
    doc: dict,
    baseline_path: "str | Path",
    tolerance: float = 0.30,
    warn=lambda line: None,
) -> list[str]:
    """Regression check: per-engine cycles/sec must not fall more than
    ``tolerance`` below the committed baseline.  Every engine present in
    the baseline (event, compiled, reference) is gated, so the compiled
    fast path cannot silently regress either.  Returns failure lines
    (empty when the check passes).  Host-noise findings (see
    :func:`host_noise_warnings`) are reported through ``warn`` without
    failing the check."""
    for line in host_noise_warnings(doc):
        warn(line)
    baseline = json.loads(Path(baseline_path).read_text())
    failures: list[str] = []
    for scenario, entry in baseline.get("results", {}).items():
        current_entry = doc.get("results", {}).get(scenario)
        if current_entry is None:
            continue
        for engine in ENGINES:
            engine_entry = entry.get(engine)
            if not isinstance(engine_entry, dict):
                continue
            base = engine_entry.get("cycles_per_sec")
            if not base:
                continue
            current = current_entry.get(engine, {}).get("cycles_per_sec", 0.0)
            floor = base * (1.0 - tolerance)
            if current < floor:
                failures.append(
                    f"{scenario}[{engine}]: {current:,.0f} cycles/s is more "
                    f"than {tolerance:.0%} below the baseline {base:,.0f}"
                )
    return failures
