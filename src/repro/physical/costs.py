"""Area / power overhead model for QRR vs. hardening-only (Table 6).

The paper obtains its overheads from Synopsys Design Compiler /
PrimeTime runs against a commercial 28 nm library -- inputs we cannot
reproduce offline.  What *is* reproducible is the structure of the
arithmetic: each technique's cost is proportional to the flip-flop
population it touches, normalized by the component's gate count, and
scaled to chip level by the published L2C+MCU share of the chip
(derived from [Li 13, Jung 14], as the paper does).

The per-flip-flop cost constants below are calibrated once against the
paper's component-level percentages (they are the model's *inputs*, like
the library data is for the paper); everything else -- the population
sizes, the totals, the chip-level numbers, and the QRR-vs-hardening-only
comparison -- is computed.  The calibration is recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qrr.coverage import QRR_CONTROLLER_FFS
from repro.soc.geometry import T2_GEOMETRY

#: Selectively-hardened flip-flop populations (paper Sec. 6.4), per
#: instance: (timing-critical, configuration).
HARDENED_PER_INSTANCE = {"l2c": (1_650, 55), "mcu": (36, 309)}

#: Chip-level share of all L2C+MCU instances (area, power), derived from
#: the published OpenSPARC T2 breakdowns the paper cites [Li 13, Jung 14].
CHIP_AREA_FRACTION = 0.0723
CHIP_POWER_FRACTION = 0.1285


@dataclass(frozen=True)
class CostModel:
    """Per-flip-flop technique costs in gate-equivalents (area) and
    normalized power units.

    Calibrated against the paper's 28 nm synthesis results:

    * ``parity``: amortized XOR-tree + parity flip-flop + checker per
      covered flip-flop.
    * ``harden_selective``: extra area/power of a radiation-hardened
      (e.g. DICE) flip-flop *placed sparsely* among standard cells --
      scattered hardened cells pay well/spacing overheads.
    * ``harden_bulk``: extra cost per flip-flop when the whole component
      is hardened (amortizes the placement overhead).
    * ``qrr_controller``: QRR controller + record table, per controller
      flip-flop (the record table's CAM/ordering logic dominates).
    """

    parity_area: float = 4.167
    parity_power: float = 4.462
    harden_selective_area: float = 11.675
    harden_selective_power: float = 13.364
    harden_bulk_area: float = 7.135
    harden_bulk_power: float = 8.082
    qrr_controller_area: float = 13.73
    qrr_controller_power: float = 9.235


@dataclass(frozen=True)
class ProtectionCosts:
    """Cost breakdown for one protection scheme (fractions of baseline)."""

    parity_area: float
    parity_power: float
    hardening_area: float
    hardening_power: float
    controller_area: float
    controller_power: float

    @property
    def total_area(self) -> float:
        return self.parity_area + self.hardening_area + self.controller_area

    @property
    def total_power(self) -> float:
        return self.parity_power + self.hardening_power + self.controller_power


@dataclass(frozen=True)
class Table6:
    """The reproduction of Table 6."""

    qrr: ProtectionCosts
    hardening_only_area: float
    hardening_only_power: float
    chip_area_fraction: float = CHIP_AREA_FRACTION
    chip_power_fraction: float = CHIP_POWER_FRACTION

    @property
    def qrr_chip_area(self) -> float:
        """Chip-level area overhead of QRR (paper: 3.32%)."""
        return self.qrr.total_area * self.chip_area_fraction

    @property
    def qrr_chip_power(self) -> float:
        """Chip-level power overhead of QRR (paper: 6.09%)."""
        return self.qrr.total_power * self.chip_power_fraction

    @property
    def hardening_only_chip_area(self) -> float:
        """Chip-level area of hardening everything (paper: 4.34%)."""
        return self.hardening_only_area * self.chip_area_fraction

    @property
    def hardening_only_chip_power(self) -> float:
        """Chip-level power of hardening everything (paper: 8.78%)."""
        return self.hardening_only_power * self.chip_power_fraction

    @property
    def area_saving_vs_hardening(self) -> float:
        """QRR's relative area saving (paper: 23% lower)."""
        return 1.0 - self.qrr.total_area / self.hardening_only_area

    @property
    def power_saving_vs_hardening(self) -> float:
        """QRR's relative power saving (paper: 31% lower)."""
        return 1.0 - self.qrr.total_power / self.hardening_only_power


def _populations() -> dict[str, float]:
    """Aggregate flip-flop populations over all L2C and MCU instances."""
    target = 0
    hardened_sel = 0
    instances = 0
    gates = 0
    for comp in ("l2c", "mcu"):
        spec = T2_GEOMETRY[comp]
        timing, config = HARDENED_PER_INSTANCE[comp]
        target += spec.instances * spec.target_ffs
        hardened_sel += spec.instances * (timing + config)
        instances += spec.instances
        gates += spec.total_gates
    controller = instances * QRR_CONTROLLER_FFS
    covered = target - hardened_sel
    return {
        "gates": float(gates),
        "target": float(target),
        "covered": float(covered),
        "hardened_sel": float(hardened_sel),
        "controller": float(controller),
    }


def compute_table6(model: CostModel = CostModel()) -> Table6:
    """Compute Table 6 from the inventories and the cost model."""
    pop = _populations()
    base = pop["gates"]
    qrr = ProtectionCosts(
        parity_area=model.parity_area * pop["covered"] / base,
        parity_power=model.parity_power * pop["covered"] / base,
        hardening_area=model.harden_selective_area * pop["hardened_sel"] / base,
        hardening_power=model.harden_selective_power * pop["hardened_sel"] / base,
        controller_area=model.qrr_controller_area * pop["controller"] / base,
        controller_power=model.qrr_controller_power * pop["controller"] / base,
    )
    hard_area = model.harden_bulk_area * pop["target"] / base
    hard_power = model.harden_bulk_power * pop["target"] / base
    return Table6(qrr=qrr, hardening_only_area=hard_area, hardening_only_power=hard_power)
