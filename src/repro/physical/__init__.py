"""Physical (area / power) cost model for the protection schemes."""

from repro.physical.costs import (
    CostModel,
    ProtectionCosts,
    Table6,
    compute_table6,
)

__all__ = ["CostModel", "ProtectionCosts", "Table6", "compute_table6"]
