"""Golden-model comparison.

During co-simulation the platform periodically compares every storage
element of the target (error-injected) component against an identical
golden copy that receives the same inputs (paper Fig. 1b, item 5/6).
The comparison result drives the decision of when the accelerated mode
can take over (paper Sec. 2.2, phase 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.rtl.module import RtlModule


class MismatchKind(enum.Enum):
    """Which kind of storage element diverged from the golden copy."""

    FLIP_FLOP = "flip_flop"
    SRAM = "sram"


@dataclass(frozen=True)
class Mismatch:
    """One storage element whose value differs from the golden copy.

    Attributes:
        kind: flip-flop or SRAM.
        name: register / array name within the module.
        entry: entry index for arrays (0 for scalar registers).
        xor: bitwise difference between target and golden values.
    """

    kind: MismatchKind
    name: str
    entry: int
    xor: int

    @property
    def bit_count(self) -> int:
        """Number of differing bits."""
        return self.xor.bit_count()


def compare_modules(target: "RtlModule", golden: "RtlModule") -> list[Mismatch]:
    """All storage-element differences between target and golden.

    Both modules must be structurally identical (same class, same
    configuration) -- the golden copy is created by cloning the target at
    co-simulation entry.
    """
    mismatches: list[Mismatch] = []
    for name, reg in target.registers().items():
        gold = golden.registers()[name]
        if hasattr(reg, "values"):
            tvals = reg.values
            gvals = gold.values
            for entry in range(len(tvals)):
                if tvals[entry] != gvals[entry]:
                    mismatches.append(
                        Mismatch(
                            MismatchKind.FLIP_FLOP,
                            name,
                            entry,
                            tvals[entry] ^ gvals[entry],
                        )
                    )
        elif reg.value != gold.value:
            mismatches.append(
                Mismatch(MismatchKind.FLIP_FLOP, name, 0, reg.value ^ gold.value)
            )
    for name, sram in target.srams().items():
        gold_sram = golden.srams()[name]
        tvals = sram.values
        gvals = gold_sram.values
        for entry in range(len(tvals)):
            if tvals[entry] != gvals[entry]:
                mismatches.append(
                    Mismatch(MismatchKind.SRAM, name, entry, tvals[entry] ^ gvals[entry])
                )
    return mismatches
