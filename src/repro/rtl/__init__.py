"""Flip-flop-accurate RTL modelling kernel.

The paper injects bit flips into individual flip-flops of a target uncore
component simulated at RTL, while a lock-stepped *golden* copy of the same
component detects when the error has vanished or has fully propagated
into architected state.  This package provides the state-element
primitives (:mod:`repro.rtl.registers`), the module base class with
flip-flop enumeration, snapshot and bit-flip support
(:mod:`repro.rtl.module`), and the golden-copy comparator
(:mod:`repro.rtl.compare`).
"""

from repro.rtl.registers import (
    FlipFlopClass,
    Register,
    RegisterArray,
    SramArray,
)
from repro.rtl.module import RtlModule
from repro.rtl.compare import Mismatch, MismatchKind, compare_modules

__all__ = [
    "FlipFlopClass",
    "Mismatch",
    "MismatchKind",
    "Register",
    "RegisterArray",
    "RtlModule",
    "SramArray",
    "compare_modules",
]
