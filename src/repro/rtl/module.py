"""Base class for flip-flop-level RTL models.

An :class:`RtlModule` declares its storage inventory (registers, register
arrays, SRAM arrays) in its constructor through :meth:`RtlModule.reg`,
:meth:`RtlModule.reg_array` and :meth:`RtlModule.sram_array`, then
implements cycle behaviour in :meth:`RtlModule.tick`.  The base class
provides everything the mixed-mode platform needs:

* flip-flop enumeration and classification (Table 3 / Table 4 totals),
* single-bit error injection by global target-bit index,
* full state snapshot/restore and cloning (for the golden copy),
* reset with configuration-register preservation (for QRR),
* mismatch benignity hooks (the paper's co-simulation exit conditions).
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from collections.abc import Mapping

from repro.rtl.compare import Mismatch, MismatchKind, compare_modules
from repro.rtl.registers import FlipFlopClass, Register, RegisterArray, SramArray


class RtlModule:
    """A cycle-level, flip-flop-accurate hardware module model."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._registers: "OrderedDict[str, Register | RegisterArray]" = OrderedDict()
        self._srams: "OrderedDict[str, SramArray]" = OrderedDict()
        self._target_bit_index: list[tuple[str, int, int]] | None = None

    # ------------------------------------------------------------------
    # Inventory declaration
    # ------------------------------------------------------------------
    def reg(self, name: str, width: int, **kwargs) -> Register:
        """Declare a scalar register; returns it for direct use."""
        if name in self._registers or name in self._srams:
            raise ValueError(f"duplicate storage element {name!r}")
        register = Register(name, width, **kwargs)
        self._registers[name] = register
        self._target_bit_index = None
        return register

    def reg_array(self, name: str, entries: int, width: int, **kwargs) -> RegisterArray:
        """Declare a register array; returns it for direct use."""
        if name in self._registers or name in self._srams:
            raise ValueError(f"duplicate storage element {name!r}")
        array = RegisterArray(name, entries, width, **kwargs)
        self._registers[name] = array
        self._target_bit_index = None
        return array

    def sram_array(
        self, name: str, entries: int, width: int, maps_to_highlevel: bool = True
    ) -> SramArray:
        """Declare an SRAM array; returns it for direct use."""
        if name in self._registers or name in self._srams:
            raise ValueError(f"duplicate storage element {name!r}")
        sram = SramArray(name, entries, width, maps_to_highlevel)
        self._srams[name] = sram
        return sram

    def registers(self) -> Mapping[str, Register | RegisterArray]:
        return self._registers

    def srams(self) -> Mapping[str, SramArray]:
        return self._srams

    # ------------------------------------------------------------------
    # Flip-flop accounting (Tables 3 and 4)
    # ------------------------------------------------------------------
    def flip_flop_count(self) -> int:
        """Total flip-flops in the module (Table 3 column)."""
        return sum(r.flip_flops for r in self._registers.values())

    def flip_flop_count_by_class(self) -> dict[FlipFlopClass, int]:
        """Flip-flop totals per Table 4 classification."""
        counts = {cls: 0 for cls in FlipFlopClass}
        for reg in self._registers.values():
            counts[reg.ff_class] += reg.flip_flops
        return counts

    def target_flip_flop_count(self) -> int:
        """Flip-flops eligible for error injection (Table 4 column 1)."""
        return self.flip_flop_count_by_class()[FlipFlopClass.TARGET]

    def _build_target_index(self) -> list[tuple[str, int, int]]:
        index: list[tuple[str, int, int]] = []
        for name, reg in self._registers.items():
            if reg.ff_class is not FlipFlopClass.TARGET:
                continue
            if isinstance(reg, RegisterArray):
                for entry in range(reg.entries):
                    for bit in range(reg.width):
                        index.append((name, entry, bit))
            else:
                for bit in range(reg.width):
                    index.append((name, 0, bit))
        return index

    def target_bits(self) -> list[tuple[str, int, int]]:
        """Ordered ``(register, entry, bit)`` list of all target flip-flops."""
        if self._target_bit_index is None:
            self._target_bit_index = self._build_target_index()
        return self._target_bit_index

    def flip_target_bit(self, index: int) -> tuple[str, int, int]:
        """Inject a bit flip into target flip-flop ``index``.

        Returns the ``(register, entry, bit)`` location flipped.
        """
        bits = self.target_bits()
        name, entry, bit = bits[index]
        reg = self._registers[name]
        if isinstance(reg, RegisterArray):
            reg.flip(bit, entry)
        else:
            reg.flip(bit)
        return (name, entry, bit)

    def flip_bit(self, name: str, entry: int, bit: int) -> None:
        """Inject a bit flip by explicit location (any flip-flop class)."""
        reg = self._registers[name]
        if isinstance(reg, RegisterArray):
            reg.flip(bit, entry)
        else:
            reg.flip(bit)

    def flip_sram_bit(self, name: str, entry: int, bit: int) -> None:
        """Inject a bit upset into an SRAM row (SRAM fault models)."""
        self._srams[name].flip(bit, entry)

    def force_bit(self, name: str, entry: int, bit: int, value: int) -> bool:
        """Force a flip-flop to ``value`` (stuck-at); True if it changed."""
        reg = self._registers[name]
        if isinstance(reg, RegisterArray):
            return reg.force(bit, value, entry)
        return reg.force(bit, value)

    # ------------------------------------------------------------------
    # State manipulation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Copy of all storage (flip-flops and SRAMs)."""
        state: dict[str, object] = {}
        for name, reg in self._registers.items():
            state[name] = reg.snapshot()
        for name, sram in self._srams.items():
            state["sram:" + name] = sram.snapshot()
        return state

    def restore(self, state: Mapping[str, object]) -> None:
        """Restore a snapshot produced by :meth:`snapshot`."""
        for name, reg in self._registers.items():
            reg.restore(state[name])
        for name, sram in self._srams.items():
            sram.restore(state["sram:" + name])

    def clone(self) -> "RtlModule":
        """Deep copy -- used to create the golden component at co-sim entry."""
        return copy.deepcopy(self)

    def reset_flip_flops(
        self, preserve_config: bool = True, preserve_protected: bool = True
    ) -> None:
        """Reset all flip-flops to their reset values (QRR recovery step).

        SRAM contents are preserved -- QRR disables array writes during
        recovery precisely so that the architected arrays survive the
        reset (paper Sec. 6.2).  With ``preserve_config`` set,
        configuration registers keep their values (they are hardened
        instead of being covered by reset+replay, Sec. 6.4 category 2).
        With ``preserve_protected`` set, ECC-protected registers (the
        array-adjacent data buffers) are excluded from the reset domain,
        like the SRAMs they extend.
        """
        for reg in self._registers.values():
            if preserve_config and reg.config:
                continue
            if preserve_protected and reg.ff_class is FlipFlopClass.PROTECTED:
                continue
            reg.reset()

    # ------------------------------------------------------------------
    # Golden comparison hooks
    # ------------------------------------------------------------------
    def compare(self, golden: "RtlModule") -> list[Mismatch]:
        """All storage differences vs. the golden copy."""
        return compare_modules(self, golden)

    def is_mismatch_benign(self, mismatch: Mismatch) -> bool:
        """Whether a mismatch can never cause a functional difference.

        The default implementation handles the generic cases: mismatches
        in non-functional registers (performance counters, debug state).
        Subclasses extend this with structural knowledge -- e.g. a
        corrupted data field of a queue entry whose valid bit is clear
        (the paper's example for exit condition 2).
        """
        if mismatch.kind is MismatchKind.FLIP_FLOP:
            reg = self._registers[mismatch.name]
            if not reg.functional:
                return True
        return False

    def mismatch_maps_to_highlevel(self, mismatch: Mismatch) -> bool:
        """Whether a mismatch lies in state the high-level model carries."""
        if mismatch.kind is MismatchKind.SRAM:
            return self._srams[mismatch.name].maps_to_highlevel
        return False

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def tick(self, inputs: object) -> object:
        """Advance one clock cycle.  Subclasses define input/output types."""
        raise NotImplementedError

    def in_flight(self) -> int:
        """Number of operations currently being processed (0 = quiescent)."""
        raise NotImplementedError

    def describe_inventory(self) -> list[tuple[str, int, str]]:
        """Human-readable storage inventory: (name, flip_flops, class)."""
        rows = []
        for name, reg in self._registers.items():
            rows.append((name, reg.flip_flops, reg.ff_class.value))
        for name, sram in self._srams.items():
            rows.append(("sram:" + name, 0, "sram"))
        return rows
