"""State-element primitives for RTL models.

Three kinds of storage appear in the paper's uncore components:

* **Flip-flops** (:class:`Register`, :class:`RegisterArray`) -- the
  injection targets.  Table 4 classifies them as *target* (active,
  unprotected), *protected* (holding ECC/CRC-encoded data; a single flip
  is corrected, so they are excluded from injection) or *inactive*
  (built-in self-test and redundancy-repair chains, unused on a
  defect-free chip).
* **SRAM arrays** (:class:`SramArray`) -- tag/data/directory arrays and
  transfer buffers.  They are ECC-protected and are not injection
  targets, but they *are* part of the storage compared against the golden
  model, and they are exactly the "high-level uncore state" of Table 1
  that the accelerated mode carries.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator


class FlipFlopClass(enum.Enum):
    """Classification of a flip-flop population (paper Table 4)."""

    #: Active, unprotected flip-flops -- the error-injection targets.
    TARGET = "target"
    #: Flip-flops storing ECC- or CRC-encoded data; single flips are
    #: corrected by the existing machinery, so they are excluded.
    PROTECTED = "protected"
    #: BIST / redundancy-repair flip-flops, unused during normal operation
    #: of a defect-free chip.
    INACTIVE = "inactive"


class Register:
    """A single multi-bit flip-flop register.

    Attributes:
        name: unique name within the owning module.
        width: number of flip-flops (bits).
        value: current contents (unsigned).
        reset_value: contents after a hardware reset.
        ff_class: Table 4 classification.
        functional: whether the value can influence architected behaviour.
            Performance/debug counters are ``functional=False``: a mismatch
            there can never cause a functional difference (the paper's
            co-simulation exit condition 2).
        config: configuration register -- preserved across a QRR reset and
            a candidate for selective hardening (paper Sec. 6, property 2).
        timing_critical: insufficient timing slack for a parity XOR tree;
            QRR hardens these instead of covering them with parity
            (paper Sec. 6.4, category 1).
    """

    __slots__ = (
        "name",
        "width",
        "value",
        "reset_value",
        "ff_class",
        "functional",
        "config",
        "timing_critical",
    )

    def __init__(
        self,
        name: str,
        width: int,
        reset_value: int = 0,
        ff_class: FlipFlopClass = FlipFlopClass.TARGET,
        functional: bool = True,
        config: bool = False,
        timing_critical: bool = False,
    ) -> None:
        if width <= 0:
            raise ValueError(f"register {name!r}: width must be positive")
        mask = (1 << width) - 1
        if reset_value & ~mask:
            raise ValueError(f"register {name!r}: reset value wider than register")
        self.name = name
        self.width = width
        self.reset_value = reset_value
        self.value = reset_value
        self.ff_class = ff_class
        self.functional = functional
        self.config = config
        self.timing_critical = timing_critical

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def flip_flops(self) -> int:
        """Number of flip-flops this register contributes."""
        return self.width

    def write(self, value: int) -> None:
        """Clocked update (truncates to width)."""
        self.value = value & self.mask

    def flip(self, bit: int) -> None:
        """Inject a single-bit soft error."""
        if not 0 <= bit < self.width:
            raise IndexError(f"register {self.name!r}: bit {bit} out of range")
        self.value ^= 1 << bit

    def force(self, bit: int, value: int) -> bool:
        """Force ``bit`` to ``value`` (stuck-at); True if it changed."""
        if not 0 <= bit < self.width:
            raise IndexError(f"register {self.name!r}: bit {bit} out of range")
        old = self.value
        if value:
            self.value = old | (1 << bit)
        else:
            self.value = old & ~(1 << bit)
        return self.value != old

    def reset(self) -> None:
        self.value = self.reset_value

    def snapshot(self) -> int:
        return self.value

    def restore(self, state: int) -> None:
        self.value = state & self.mask

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Register({self.name!r}, width={self.width}, value={self.value:#x})"


class RegisterArray:
    """A bank of identical flip-flop registers (e.g. a queue field).

    Entry ``e``, bit ``b`` is one flip-flop; the array contributes
    ``entries * width`` flip-flops.
    """

    __slots__ = (
        "name",
        "entries",
        "width",
        "values",
        "reset_value",
        "ff_class",
        "functional",
        "config",
        "timing_critical",
    )

    def __init__(
        self,
        name: str,
        entries: int,
        width: int,
        reset_value: int = 0,
        ff_class: FlipFlopClass = FlipFlopClass.TARGET,
        functional: bool = True,
        config: bool = False,
        timing_critical: bool = False,
    ) -> None:
        if entries <= 0 or width <= 0:
            raise ValueError(f"array {name!r}: entries and width must be positive")
        self.name = name
        self.entries = entries
        self.width = width
        self.reset_value = reset_value & ((1 << width) - 1)
        self.values = [self.reset_value] * entries
        self.ff_class = ff_class
        self.functional = functional
        self.config = config
        self.timing_critical = timing_critical

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def flip_flops(self) -> int:
        return self.entries * self.width

    def read(self, entry: int) -> int:
        return self.values[entry]

    def write(self, entry: int, value: int) -> None:
        self.values[entry] = value & self.mask

    def flip(self, bit: int, entry: int = 0) -> None:
        """Inject a single-bit soft error into ``entry``."""
        if not 0 <= entry < self.entries:
            raise IndexError(f"array {self.name!r}: entry {entry} out of range")
        if not 0 <= bit < self.width:
            raise IndexError(f"array {self.name!r}: bit {bit} out of range")
        self.values[entry] ^= 1 << bit

    def force(self, bit: int, value: int, entry: int = 0) -> bool:
        """Force ``entry``'s ``bit`` to ``value``; True if it changed."""
        if not 0 <= entry < self.entries:
            raise IndexError(f"array {self.name!r}: entry {entry} out of range")
        if not 0 <= bit < self.width:
            raise IndexError(f"array {self.name!r}: bit {bit} out of range")
        old = self.values[entry]
        if value:
            self.values[entry] = old | (1 << bit)
        else:
            self.values[entry] = old & ~(1 << bit)
        return self.values[entry] != old

    def reset(self) -> None:
        self.values = [self.reset_value] * self.entries

    def snapshot(self) -> list[int]:
        return list(self.values)

    def restore(self, state: list[int]) -> None:
        if len(state) != self.entries:
            raise ValueError(f"array {self.name!r}: snapshot entry count mismatch")
        self.values = list(state)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RegisterArray({self.name!r}, {self.entries}x{self.width})"


class SramArray:
    """An on-chip SRAM array (ECC-protected; not an injection target).

    ``maps_to_highlevel`` marks arrays whose contents are part of the
    high-level uncore state of Table 1: a golden-model mismatch confined
    to such arrays can be transferred back to the accelerated mode
    (the paper's co-simulation exit condition 1).
    """

    __slots__ = ("name", "entries", "width", "values", "maps_to_highlevel")

    def __init__(
        self,
        name: str,
        entries: int,
        width: int,
        maps_to_highlevel: bool = True,
    ) -> None:
        if entries <= 0 or width <= 0:
            raise ValueError(f"sram {name!r}: entries and width must be positive")
        self.name = name
        self.entries = entries
        self.width = width
        self.values = [0] * entries
        self.maps_to_highlevel = maps_to_highlevel

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def read(self, entry: int) -> int:
        return self.values[entry]

    def write(self, entry: int, value: int) -> None:
        self.values[entry] = value & self.mask

    def flip(self, bit: int, entry: int = 0) -> None:
        """Inject a bit upset into one row (SRAM fault models)."""
        if not 0 <= entry < self.entries:
            raise IndexError(f"sram {self.name!r}: entry {entry} out of range")
        if not 0 <= bit < self.width:
            raise IndexError(f"sram {self.name!r}: bit {bit} out of range")
        self.values[entry] ^= 1 << bit

    def snapshot(self) -> list[int]:
        return list(self.values)

    def restore(self, state: list[int]) -> None:
        if len(state) != self.entries:
            raise ValueError(f"sram {self.name!r}: snapshot entry count mismatch")
        self.values = list(state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SramArray({self.name!r}, {self.entries}x{self.width})"
