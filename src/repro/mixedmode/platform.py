"""The mixed-mode error-injection platform (paper Sec. 2, Fig. 2).

One :class:`MixedModePlatform` instance owns a machine, a workload, and
the error-free **golden run** artefacts (output, length, periodic
snapshots, store log).  Each :meth:`MixedModePlatform.run_injection`
executes the three phases of Fig. 2:

1. *Prepare*: restore the snapshot preceding the injection cycle, run
   accelerated to the injection cycle, quiesce the target component,
   attach the RTL target + golden pair, warm up.
2. *Inject*: flip the chosen target flip-flop; co-simulate with periodic
   golden comparison; stop early on Vanished; hand over to accelerated
   mode once every remaining mismatch maps to high-level state; give up
   (Persistent) at the co-simulation cycle cap.
3. *Determine outcome*: continue in accelerated mode to completion and
   classify against the golden output (ONA / OMM / UT / Hang).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.faults.event import FaultEvent
from repro.faults.models import SingleBitFlip
from repro.mixedmode.adapters import (
    CosimAdapterBase,
    L2cCosimAdapter,
    make_adapter,
)
from repro.system.machine import DEFAULT_ENGINE, Machine, MachineConfig
from repro.system.outcome import Outcome, classify_outcome
from repro.system.snapshots import SnapshotChain
from repro.workloads import build_workload
from repro.workloads.base import WorkloadImage


@dataclass(frozen=True)
class CosimConfig:
    """Co-simulation parameters (paper values, reproduction-scaled).

    Attributes:
        snapshot_interval: accelerated-mode snapshot period Cf
            (paper: 2M cycles at full scale).  Delta snapshot chains
            made checkpoints cheap, so the default is dense: a shorter
            period directly cuts the phase-1 replay distance
            (restore-then-replay dominates injection-run setup).
        warmup_min / warmup_jitter: warm-up period before injection; the
            actual period is ``warmup_min + U[0, warmup_jitter)``
            (paper: at least 1,000 cycles, randomized).
        check_interval: cycles between golden comparisons.
        cosim_cycle_cap: co-simulation length limit (paper: 100K cycles;
            Sec. 4.2 quantifies the cut-off).
        hang_factor: phase-3 cycle budget as a multiple of the error-free
            length before declaring a Hang.
        quiesce_limit: bound on waiting for the component to go idle.
    """

    snapshot_interval: int = 1_000
    warmup_min: int = 500
    warmup_jitter: int = 500
    check_interval: int = 100
    cosim_cycle_cap: int = 30_000
    hang_factor: float = 4.0
    quiesce_limit: int = 5_000


@dataclass
class GoldenRun:
    """Artefacts of the error-free reference execution.

    ``snapshots`` maps checkpoint cycle to a full machine snapshot; it
    is usually a :class:`~repro.system.snapshots.SnapshotChain` (deltas
    on disk -- materialized on access), but any mapping works.
    """

    cycles: int
    output: dict[int, int]
    snapshots: "dict[int, dict] | SnapshotChain"
    pcie_window: "tuple[int, int] | None" = None
    retired: int = 0

    def snapshot_at_or_before(self, cycle: int) -> tuple[int, dict]:
        best = 0
        for c in self.snapshots:
            if c <= cycle and c >= best:
                best = c
        return best, self.snapshots[best]


@dataclass
class CosimResult:
    """What happened during the co-simulation window."""

    cosim_cycles: int = 0
    vanished: bool = False
    persistent: bool = False
    propagated_cycle: "int | None" = None
    corrupted_words: list[int] = field(default_factory=list)
    residual_at_exit: int = 0
    ended_by: str = ""

    def to_dict(self) -> dict:
        return {
            "cosim_cycles": self.cosim_cycles,
            "vanished": self.vanished,
            "persistent": self.persistent,
            "propagated_cycle": self.propagated_cycle,
            "corrupted_words": list(self.corrupted_words),
            "residual_at_exit": self.residual_at_exit,
            "ended_by": self.ended_by,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CosimResult":
        return cls(
            cosim_cycles=data.get("cosim_cycles", 0),
            vanished=data.get("vanished", False),
            persistent=data.get("persistent", False),
            propagated_cycle=data.get("propagated_cycle"),
            corrupted_words=list(data.get("corrupted_words", ())),
            residual_at_exit=data.get("residual_at_exit", 0),
            ended_by=data.get("ended_by", ""),
        )


@dataclass
class InjectionRun:
    """Complete record of one error-injection run."""

    component: str
    instance: int
    benchmark: str
    injection_cycle: int
    flip_location: tuple[str, int, int]
    warmup: int
    outcome: "Outcome | None"
    persistent: bool
    cosim: CosimResult
    #: error-propagation latency to the cores (Fig. 8), if observed
    propagation_latency: "int | None" = None
    #: required rollback distance (Fig. 9), if memory was corrupted
    rollback_distance: "int | None" = None
    ran_phase3: bool = False
    #: the sampled fault behind this run (None for legacy direct calls)
    fault_event: "FaultEvent | None" = None

    @property
    def is_erroneous(self) -> bool:
        return self.outcome is not None and self.outcome.is_erroneous

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "instance": self.instance,
            "benchmark": self.benchmark,
            "injection_cycle": self.injection_cycle,
            "flip_location": list(self.flip_location),
            "warmup": self.warmup,
            "outcome": self.outcome.value if self.outcome else None,
            "persistent": self.persistent,
            "cosim": self.cosim.to_dict(),
            "propagation_latency": self.propagation_latency,
            "rollback_distance": self.rollback_distance,
            "ran_phase3": self.ran_phase3,
            "fault_event": (
                self.fault_event.to_dict() if self.fault_event else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionRun":
        fault = data.get("fault_event")
        outcome = data.get("outcome")
        return cls(
            component=data["component"],
            instance=data.get("instance", 0),
            benchmark=data.get("benchmark", ""),
            injection_cycle=data["injection_cycle"],
            flip_location=tuple(data["flip_location"]),
            warmup=data.get("warmup", 0),
            outcome=Outcome(outcome) if outcome is not None else None,
            persistent=data.get("persistent", False),
            cosim=CosimResult.from_dict(data.get("cosim", {})),
            propagation_latency=data.get("propagation_latency"),
            rollback_distance=data.get("rollback_distance"),
            ran_phase3=data.get("ran_phase3", False),
            fault_event=FaultEvent.from_dict(fault) if fault else None,
        )


def compute_golden(
    machine: Machine,
    cosim: CosimConfig,
    want_pcie_window: bool = False,
    keep_snapshots: bool = True,
) -> GoldenRun:
    """Run a loaded machine to completion as the error-free reference.

    ``keep_snapshots=False`` skips the periodic whole-machine snapshots
    -- the right mode for golden-only experiments that will never
    restore into the run (snapshots dominate the golden run's memory
    and time cost).  Kept snapshots are stored as a delta
    :class:`~repro.system.snapshots.SnapshotChain` (full base + per-Cf
    dirty-state deltas).
    """
    chain = SnapshotChain(machine) if keep_snapshots else None
    if chain is not None:
        chain.checkpoint()
    cf = cosim.snapshot_interval
    watchdog = machine.config.watchdog_cycles
    cap = machine.config.max_cycles
    # obs handles resolved once (null no-ops when disabled); the tracer
    # decision is likewise frozen so the chunk loop stays branch-cheap
    from repro import obs

    chunk_count = obs.counter("golden.chunks")
    chunk_time = obs.timer("golden.chunk_seconds")
    tracer = obs.tracer()
    # Advance checkpoint-to-checkpoint via Machine.advance_until: the
    # O(1) termination checks run between chunks (the early-stop cycle
    # is exact, so successful runs are bit-identical to per-cycle
    # stepping) and the event/compiled engines keep their idle hops.
    # The watchdog bound caps each chunk so a hung run still raises at
    # the same cycle the per-cycle loop would have.
    while True:
        if machine._live_threads == 0:
            break
        if machine._trapped_threads:
            raise RuntimeError(f"golden run trapped: {machine.any_trap()}")
        if machine.cycle >= cap:
            raise RuntimeError("golden run exceeded the cycle cap")
        if machine.cycle - machine._last_retire_cycle > watchdog:
            raise RuntimeError("golden run hung")
        target = machine._last_retire_cycle + watchdog + 1
        if cap < target:
            target = cap
        if chain is not None:
            # first cf multiple strictly after the current cycle
            next_ckpt = machine.cycle + cf - machine.cycle % cf
            if next_ckpt < target:
                target = next_ckpt
        start_cycle = machine.cycle
        if tracer is None:
            with chunk_time.time():
                done = machine.advance_until(target)
        else:
            with chunk_time.time(), tracer.span(
                "golden_chunk",
                "golden",
                start_cycle=start_cycle,
                target=target,
                engine=machine.engine,
            ):
                done = machine.advance_until(target)
        chunk_count.inc()
        if done:
            if chain is not None and machine.cycle % cf == 0:
                chain.checkpoint()
    if chain is not None:
        chain.finalize()
    machine.obs_flush()
    window = machine.pcie.transfer_window() if want_pcie_window else None
    return GoldenRun(
        cycles=machine.cycle,
        output=dict(machine.output),
        snapshots=chain if chain is not None else {},
        pcie_window=window,
        retired=machine.retired_total,
    )


class MixedModePlatform:
    """Owns one machine + workload and runs injection experiments."""

    def __init__(
        self,
        benchmark: str,
        machine_config: "MachineConfig | None" = None,
        cosim_config: "CosimConfig | None" = None,
        scale: float = 1.0 / 40_000.0,
        seed: int = 2015,
        pcie_input: bool = False,
        image: "WorkloadImage | None" = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.benchmark = benchmark
        self.machine_config = (
            machine_config if machine_config is not None else MachineConfig()
        )
        machine_config = self.machine_config
        self.cosim = cosim_config if cosim_config is not None else CosimConfig()
        self.engine = engine
        self.seed = seed
        self.pcie_input = pcie_input
        self.image = image if image is not None else build_workload(
            benchmark, threads=machine_config.total_threads, scale=scale, seed=seed
        )
        self.machine = self._fresh_machine()
        self.golden = self._golden_run()

    # ------------------------------------------------------------------
    # Golden run (one-time, Sec. 2.2 phase 1 setup)
    # ------------------------------------------------------------------
    def _fresh_machine(self) -> Machine:
        machine = Machine(self.machine_config, engine=self.engine)
        machine.load_workload(self.image, pcie_input=self.pcie_input)
        return machine

    def _golden_run(self) -> GoldenRun:
        return compute_golden(
            self.machine,
            self.cosim,
            want_pcie_window=(
                self.image.input_file_words is not None and self.pcie_input
            ),
        )

    # ------------------------------------------------------------------
    # Injection-point sampling
    # ------------------------------------------------------------------
    def sample_injection_point(
        self, component: str, rng: random.Random
    ) -> tuple[int, int, int]:
        """Random (injection_cycle, instance, target_bit) for a component.

        Delegates to the default fault model: the component-aware window
        rules (PCIe injections fall inside the DMA transfer window, the
        paper models PCIe transferring the input file) live in
        :mod:`repro.faults.windows` now, so the platform no longer
        branches on component names here.
        """
        event = SingleBitFlip().sample(self, component, rng)
        return event.cycle, event.instance, event.params["bit"]

    # ------------------------------------------------------------------
    # One injection run (Fig. 2)
    # ------------------------------------------------------------------
    def run_injection(
        self,
        component: str,
        injection_cycle: int,
        target_bit: "int | None" = None,
        instance: int = 0,
        warmup: "int | None" = None,
        rng: "random.Random | None" = None,
        cosim_cycle_cap: "int | None" = None,
        fault=None,
        event: "FaultEvent | None" = None,
    ) -> InjectionRun:
        """One injection run (Fig. 2).

        The legacy form passes an explicit ``target_bit`` (the default
        single-bit flip).  The fault-model form passes a ``fault`` model
        plus the ``event`` it sampled; the model then owns the
        corruption (and, for stuck-at/intermittent faults, its per-cycle
        re-assertion during co-simulation).
        """
        if fault is None and target_bit is None:
            raise ValueError("run_injection needs a target_bit or a fault+event")
        if fault is not None and event is None:
            raise ValueError("run_injection with a fault model needs its event")
        if rng is None:
            rng = random.Random(
                (target_bit if target_bit is not None else 0) * 1_000_003
            )
        cap = cosim_cycle_cap if cosim_cycle_cap is not None else (
            self.cosim.cosim_cycle_cap
        )
        if warmup is None:
            warmup = self.cosim.warmup_min + (
                rng.randrange(self.cosim.warmup_jitter)
                if self.cosim.warmup_jitter
                else 0
            )
        machine = self.machine

        # ---- phase 1: restore, fast-forward, quiesce, attach, warm up ----
        _snap_cycle, snap = self.golden.snapshot_at_or_before(injection_cycle)
        machine.restore(snap)
        machine.run_until_cycle(injection_cycle)
        adapter = self._attach_quiesced(component, instance)
        for _ in range(warmup):
            machine.step()

        # ---- phase 2: inject and co-simulate ------------------------------
        if fault is not None:
            flip_loc = fault.apply_event(adapter, event)
            live = fault.live(event, machine.cycle)
        else:
            flip_loc = adapter.flip(target_bit)
            live = None
        inject_abs = machine.cycle
        cosim = CosimResult()
        outcome: "Outcome | None" = None
        ran_phase3 = False
        error_touched = False
        check = self.cosim.check_interval
        while True:
            steps = min(check, cap - cosim.cosim_cycles)
            if live is None:
                for _ in range(steps):
                    machine.step()
            else:
                self._step_with_live_fault(adapter, live, steps)
            cosim.cosim_cycles += steps
            # a trap during co-simulation ends the run immediately
            trap = machine.any_trap()
            if trap is not None:
                outcome = Outcome.UT
                cosim.ended_by = "trap_during_cosim"
                break
            status = adapter.compare()
            if adapter.erroneous_output_cycle is not None:
                cosim.propagated_cycle = adapter.erroneous_output_cycle
            # while a live fault is still asserted (stuck-at hold,
            # intermittent window) the "guaranteed to match" premise of
            # the early exits does not hold: the fault will re-corrupt
            # state, so keep co-simulating until it releases
            fault_held = (
                live is not None and live.next_active_cycle() is not None
            )
            if (
                not fault_held
                and status.residual == 0
                and status.highlevel == 0
                and not status.corrupted_words
                and adapter.erroneous_output_cycle is None
                and not adapter.golden_diverged
            ):
                # no erroneous packet left the component and every
                # remaining mismatch is benign: the run is guaranteed to
                # match the error-free outcome (Fig. 2 steps 8-9)
                cosim.vanished = True
                outcome = Outcome.VANISHED
                cosim.ended_by = "vanished"
                break
            if not fault_held and status.exitable and adapter.quiescent():
                cosim.corrupted_words = list(status.corrupted_words)
                if isinstance(adapter, L2cCosimAdapter):
                    cosim.corrupted_words = sorted(
                        set(cosim.corrupted_words)
                        | set(adapter.cache_corruption_words())
                    )
                cosim.residual_at_exit = status.residual
                error_touched = (
                    bool(cosim.corrupted_words)
                    or adapter.erroneous_output_cycle is not None
                    or adapter.golden_diverged
                    or status.highlevel > 0
                )
                adapter.detach()
                ran_phase3 = True
                cosim.ended_by = "handover"
                break
            if cosim.cosim_cycles >= cap:
                cosim.persistent = True
                cosim.ended_by = "cap"
                break
        if not ran_phase3:
            # abandoned in co-simulation: restore the machine structure
            # (state is rebuilt from a snapshot on the next run anyway)
            adapter.release()

        # ---- phase 3: determine the application outcome --------------------
        if ran_phase3:
            machine.corrupt_watch = set(cosim.corrupted_words)
            machine.corrupt_read_cycle = None
            hang_cap = int(self.golden.cycles * self.cosim.hang_factor) + 50_000
            result = machine.run(hang_factor_cycles=hang_cap)
            outcome = classify_outcome(result, self.golden.output, error_touched)

        # ---- measurements ----------------------------------------------------
        propagation = None
        if cosim.propagated_cycle is not None:
            propagation = cosim.propagated_cycle - inject_abs
        elif ran_phase3 and machine.corrupt_read_cycle is not None:
            propagation = machine.corrupt_read_cycle - inject_abs
        rollback = None
        if cosim.corrupted_words:
            oldest = min(
                machine.last_store_cycle.get(w, 0) for w in cosim.corrupted_words
            )
            rollback = max(0, inject_abs - oldest)

        return InjectionRun(
            component=component,
            instance=instance,
            benchmark=self.benchmark,
            injection_cycle=injection_cycle,
            flip_location=flip_loc,
            warmup=warmup,
            outcome=outcome,
            persistent=cosim.persistent,
            cosim=cosim,
            propagation_latency=propagation,
            rollback_distance=rollback,
            ran_phase3=ran_phase3,
            fault_event=event,
        )

    # ------------------------------------------------------------------
    def _step_with_live_fault(self, adapter, live, steps: int) -> None:
        """Advance ``steps`` cycles, firing the live fault when due.

        Mirrors the event engine's active-set idea: the fault reports
        its next assertion cycle and simulation batches up to it, so an
        intermittent fault with a long period costs almost nothing while
        a stuck-at (due every cycle) degrades gracefully to
        cycle-stepping.
        """
        machine = self.machine
        end = machine.cycle + steps
        # while the fault is held, the compiled engine must single-step
        # (no in-flight superinstructions while fault state is live)
        machine.hold_live_fault(True)
        try:
            while machine.cycle < end:
                due = live.next_active_cycle()
                if due is None or due >= end:
                    machine.run_until_cycle(end)
                    return
                if due > machine.cycle:
                    machine.run_until_cycle(due)
                live.fire(adapter, machine.cycle)
        finally:
            machine.hold_live_fault(False)

    # ------------------------------------------------------------------
    def _attach_quiesced(self, component: str, instance: int) -> CosimAdapterBase:
        """Wait for the target component to go idle, then swap in the RTL."""
        machine = self.machine
        if component != "pcie":  # the DMA engine is attached mid-transfer
            for _ in range(self.cosim.quiesce_limit):
                if self._component_idle(component, instance):
                    break
                machine.step()
        adapter = make_adapter(machine, component, instance)
        adapter.attach()
        return adapter

    def _component_idle(self, component: str, instance: int) -> bool:
        machine = self.machine
        if component == "l2c":
            mcu_idx = machine.amap.mcu_of_bank(instance)
            return (
                machine.l2banks[instance].in_flight() == 0
                and not machine._bank_ingress[instance]
                and machine.mcus[mcu_idx].in_flight() == 0
                and not machine._mcu_ingress[mcu_idx]
            )
        if component == "mcu":
            return (
                machine.mcus[instance].in_flight() == 0
                and not machine._mcu_ingress[instance]
            )
        if component == "ccx":
            return machine.ccx.in_flight() == 0
        return True
