"""Mixed-mode vs. RTL-only outcome validation (paper Sec. 4.3, Fig. 7).

The paper validates the platform by comparing outcome rates against pure
RTL simulation on a small FFT configuration (4 threads, no OS, ONA and
OMM merged because that setup produces no output files); the mixed-mode
rates match within 0.9-1.1x.  Here the RTL-only arm keeps the target L2C
bank at RTL for the entire run and injects directly, with no golden
model, no state transfer and no early exit -- the ground truth the
mixed-mode methodology is checked against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import MixedModePlatform
from repro.mixedmode.warmup import _FullCosimBank
from repro.soc.geometry import T2_GEOMETRY
from repro.system.machine import Machine, MachineConfig
from repro.system.outcome import Outcome
from repro.utils.stats import BinomialEstimate
from repro.workloads import build_workload

#: Fig. 7 outcome buckets (ONA and OMM merged, as in the paper).
BUCKETS = ("ONA+OMM", "UT", "Hang")


@dataclass
class ValidationRates:
    """Erroneous-outcome rates for one simulation arm."""

    arm: str
    total: int = 0
    counts: dict[str, int] = field(default_factory=lambda: {b: 0 for b in BUCKETS})

    def add(self, bucket: "str | None") -> None:
        self.total += 1
        if bucket is not None:
            self.counts[bucket] += 1

    def rate(self, bucket: str) -> BinomialEstimate:
        return BinomialEstimate(self.counts[bucket], self.total)


@dataclass
class ValidationResult:
    """Fig. 7: the two arms side by side."""

    rtl_only: ValidationRates
    mixed: ValidationRates

    def ratio(self, bucket: str) -> "float | None":
        """mixed / rtl_only rate ratio (paper: 0.9-1.1x)."""
        r = self.rtl_only.rate(bucket).rate
        m = self.mixed.rate(bucket).rate
        if r == 0.0:
            return None
        return m / r


class ValidationExperiment:
    """Runs both arms on the small-FFT configuration."""

    def __init__(
        self,
        benchmark: str = "fft",
        machine_config: MachineConfig = MachineConfig(cores=2, threads_per_core=2),
        scale: float = 1.0 / 300_000.0,
        seed: int = 7,
    ) -> None:
        self.benchmark = benchmark
        self.machine_config = machine_config
        self.scale = scale
        self.seed = seed
        self.image = build_workload(
            benchmark,
            threads=machine_config.total_threads,
            scale=scale,
            seed=seed,
        )

    @staticmethod
    def _bucket(outcome: Outcome) -> "str | None":
        if outcome in (Outcome.ONA, Outcome.OMM):
            return "ONA+OMM"
        if outcome is Outcome.UT:
            return "UT"
        if outcome is Outcome.HANG:
            return "Hang"
        return None

    # ------------------------------------------------------------------
    def run_rtl_only(self, n_injections: int) -> ValidationRates:
        """Ground truth: full-length RTL simulation of the target bank."""
        rng = random.Random(self.seed ^ 0xA5A5)
        # error-free reference
        golden_machine = self._rtl_machine(bank=0)
        golden = golden_machine.run()
        if not golden.completed:
            raise RuntimeError("RTL-only golden run failed")
        rates = ValidationRates("rtl_only")
        nbits = T2_GEOMETRY["l2c"].target_ffs
        for _ in range(n_injections):
            bank = rng.randrange(self.machine_config.l2_banks)
            cycle = rng.randrange(1, golden.cycles - 1)
            bit = rng.randrange(nbits)
            machine = self._rtl_machine(bank)
            machine.run_until_cycle(cycle)
            machine.l2banks[bank].live.flip_target_bit(bit)
            result = machine.run(
                hang_factor_cycles=golden.cycles * 4 + 50_000
            )
            outcome = self._classify(result, golden.output)
            rates.add(self._bucket(outcome))
        return rates

    def _rtl_machine(self, bank: int) -> Machine:
        machine = Machine(self.machine_config)
        machine.load_workload(self.image)
        server = _FullCosimBank(machine, bank)
        machine.l2banks[bank] = server
        machine.uncore_changed()
        return machine

    @staticmethod
    def _classify(result, golden_output) -> Outcome:
        if result.trap is not None:
            return Outcome.UT
        if result.hung:
            return Outcome.HANG
        if result.output != golden_output:
            return Outcome.OMM
        return Outcome.VANISHED

    # ------------------------------------------------------------------
    def run_mixed(self, n_injections: int) -> ValidationRates:
        """The mixed-mode platform on the identical configuration."""
        platform = MixedModePlatform(
            self.benchmark,
            machine_config=self.machine_config,
            scale=self.scale,
            seed=self.seed,
            image=self.image,
        )
        campaign = InjectionCampaign(platform, "l2c", seed=self.seed)
        result = campaign.run(n_injections)
        rates = ValidationRates("mixed")
        for run in result.runs:
            if run.persistent or run.outcome is None:
                rates.add(None)
            else:
                rates.add(self._bucket(run.outcome))
        return rates

    def run(self, n_injections: int) -> ValidationResult:
        return ValidationResult(
            rtl_only=self.run_rtl_only(n_injections),
            mixed=self.run_mixed(n_injections),
        )
