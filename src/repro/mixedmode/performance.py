"""Mixed-mode simulation performance model (paper Sec. 2.3, Table 2).

The paper's analytic model of the time to simulate one injection run of
an application with cycle length L:

* steps 1-2 (snapshot fast-forward): 1M cycles average at 20K cycles/s
  -> 50 s;
* steps 3-10 (co-simulation): 10K cycles at 500 cycles/s -> 20 s;
* steps 11-12 (outcome determination): L/2 cycles for <1% of runs at
  20K cycles/s -> L/4M seconds;
* total: 70 + L/4M seconds, so throughput = L / (70 + L/4M) which
  exceeds 2M cycles/s for L > 280M -- a >20,000x speedup over the
  ~100 cycles/s of RTL-only simulation of the full OpenSPARC T2.

This module reproduces that arithmetic exactly and can also be populated
with *measured* step rates from this reproduction's own platform.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper constants (full-scale OpenSPARC T2 + Simics).
ACCELERATED_RATE = 20_000.0  # cycles/s, accelerated mode
COSIM_RATE = 500.0  # cycles/s, co-simulation mode
FAST_FORWARD_CYCLES = 1_000_000.0  # steps 1-2 average (snapshot spacing)
COSIM_CYCLES = 10_000.0  # steps 3-10 average
PHASE3_FRACTION = 0.01  # <1% of runs execute steps 11-12
RTL_ONLY_RATE = 100.0  # cycles/s, RTL-only simulation [Weaver 08]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2."""

    step: str
    cycles: float
    rate: float

    @property
    def seconds(self) -> float:
        return self.cycles / self.rate


@dataclass(frozen=True)
class PerformanceModel:
    """The paper's analytic throughput model, parameterized."""

    accelerated_rate: float = ACCELERATED_RATE
    cosim_rate: float = COSIM_RATE
    fast_forward_cycles: float = FAST_FORWARD_CYCLES
    cosim_cycles: float = COSIM_CYCLES
    phase3_fraction: float = PHASE3_FRACTION
    rtl_only_rate: float = RTL_ONLY_RATE

    def seconds_per_run(self, app_cycles: float) -> float:
        """Average wall seconds per injection run (Table 2 'Total')."""
        steps12 = self.fast_forward_cycles / self.accelerated_rate
        steps310 = self.cosim_cycles / self.cosim_rate
        steps1112 = (
            app_cycles / 2.0 * self.phase3_fraction / self.accelerated_rate
        )
        return steps12 + steps310 + steps1112

    def throughput(self, app_cycles: float) -> float:
        """Effective simulated cycles per second for length-L applications."""
        return app_cycles / self.seconds_per_run(app_cycles)

    def speedup_vs_rtl(self, app_cycles: float) -> float:
        """Speedup over RTL-only simulation."""
        return self.throughput(app_cycles) / self.rtl_only_rate

    def crossover_length(self, target_throughput: float = 2_000_000.0) -> float:
        """Application length above which throughput exceeds the target.

        The paper reports L > 280M cycles for 2M cycles/s.
        Solving L / (a + bL) = T for L with a = fixed seconds and
        b = phase-3 seconds per cycle.
        """
        a = (
            self.fast_forward_cycles / self.accelerated_rate
            + self.cosim_cycles / self.cosim_rate
        )
        b = self.phase3_fraction / (2.0 * self.accelerated_rate)
        denom = 1.0 - target_throughput * b
        if denom <= 0:
            raise ValueError("target throughput unreachable")
        return target_throughput * a / denom


def table2_model(app_cycles: float = 400e6) -> list[Table2Row]:
    """The rows of Table 2 for an application of length ``app_cycles``."""
    model = PerformanceModel()
    return [
        Table2Row("Steps 1-2", model.fast_forward_cycles, model.accelerated_rate),
        Table2Row("Steps 3-10", model.cosim_cycles, model.cosim_rate),
        Table2Row(
            "Steps 11-12",
            app_cycles / 2.0 * model.phase3_fraction,
            model.accelerated_rate,
        ),
    ]
