"""Co-simulation adapters (paper Fig. 1b).

An adapter replaces one high-level uncore model inside the machine with
a pair of RTL instances: the **target** (error-injected, live -- its
outputs are what the system actually sees) and the **golden** copy
(identical, receives the same inputs, outputs only compared).  The
adapter implements the exact server interface of the high-level model it
replaces, so the machine is oblivious to the swap.

Golden isolation invariants:

* the golden component never writes live memory -- its writebacks land
  in a private fork of DRAM;
* the golden component never reads live memory -- fills are served from
  the fork (so the target's corruption cannot launder the golden copy);
* both sides run behind write-tracking ports, so memory divergence is
  detected by comparing the two memories at the union of written
  addresses only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.dram import WriteTrackingPort
from repro.rtl.compare import Mismatch
from repro.soc.packets import CpxPacket, McuReply, McuRequest, McuOp, PcxPacket
from repro.uncore.ccx import CcxRtl
from repro.uncore.l2c import L2cRtl
from repro.uncore.mcu import McuRtl
from repro.uncore.pcie import PcieRtl


@dataclass
class ComparisonStatus:
    """Result of one golden-model comparison (Fig. 2, step 7)."""

    mismatches: list[Mismatch] = field(default_factory=list)
    #: mismatches that can never cause a functional difference (cond. 2)
    benign: int = 0
    #: mismatches confined to high-level-mapped state (cond. 1)
    highlevel: int = 0
    #: remaining microarchitectural mismatches
    residual: int = 0
    #: word addresses where live memory diverged from the golden fork
    corrupted_words: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatches and not self.corrupted_words

    @property
    def exitable(self) -> bool:
        """Accelerated mode can take over (all mismatches map out)."""
        return self.residual == 0


class CosimAdapterBase:
    """Shared bookkeeping for all four component adapters."""

    def __init__(self) -> None:
        #: cycle of the first erroneous output from the target (Fig. 1b,
        #: item 6) -- return-packet comparison against the golden copy.
        self.erroneous_output_cycle: "int | None" = None
        #: the golden copy refused an input the target took (queue
        #: occupancy divergence); conservatively treated as propagation
        self.golden_diverged = False

    # -- hooks implemented per component --------------------------------
    target = None
    golden = None

    def _note_output_mismatch(self, cycle: int) -> None:
        if self.erroneous_output_cycle is None:
            self.erroneous_output_cycle = cycle

    def compare(self) -> ComparisonStatus:
        status = ComparisonStatus()
        status.mismatches = self.target.compare(self.golden)
        for m in status.mismatches:
            if self.target.is_mismatch_benign(m):
                status.benign += 1
            elif self.target.mismatch_maps_to_highlevel(m):
                status.highlevel += 1
            else:
                status.residual += 1
        status.corrupted_words = self.memory_divergence()
        return status

    def memory_divergence(self) -> list[int]:
        """Word addresses where the error corrupted main memory."""
        return []

    def quiescent(self) -> bool:
        return self.target.in_flight() == 0

    def flip(self, bit_index: int) -> tuple[str, int, int]:
        """Inject the bit flip into the target (Fig. 1b, item 4)."""
        return self.target.flip_target_bit(bit_index)

    # -- location-addressed injection (the fault-model subsystem) --------
    def flip_at(self, name: str, entry: int, bit: int) -> tuple[str, int, int]:
        """Flip an explicit flip-flop location in the target."""
        self.target.flip_bit(name, entry, bit)
        return (name, entry, bit)

    def flip_sram(self, name: str, entry: int, bit: int) -> tuple[str, int, int]:
        """Flip a bit inside one of the target's SRAM rows."""
        self.target.flip_sram_bit(name, entry, bit)
        return ("sram:" + name, entry, bit)

    def force_at(self, name: str, entry: int, bit: int, value: int) -> bool:
        """Force a target flip-flop to ``value`` (stuck-at assertion)."""
        return self.target.force_bit(name, entry, bit, value)

    def release(self) -> None:
        """Unswap the adapter WITHOUT state transfer (abandoned runs)."""
        raise NotImplementedError


class L2cCosimAdapter(CosimAdapterBase):
    """Co-simulates one L2C bank against its golden copy.

    The golden copy's MCU traffic is *slaved* to the target's observed
    reply timing: the real MCU serves only the target; when a target
    fill reply arrives, the golden copy receives a reply for the same
    transaction with data read from the golden memory fork.  This keeps
    the two copies cycle-aligned without double-loading the real MCU.
    Target writebacks are applied to live memory immediately (the bank
    is the only writer of its address range), keeping write visibility
    symmetric between the two sides.
    """

    def __init__(self, machine, bank: int) -> None:
        super().__init__()
        self.machine = machine
        self.bank = bank
        self.hl = machine.l2banks[bank]
        self.golden_dram = machine.dram.fork()
        self.target_port = WriteTrackingPort(machine.dram)
        self.golden_port = WriteTrackingPort(self.golden_dram)
        self._golden_pending_reads: dict[int, int] = {}
        amap = machine.amap
        ways = machine.config.l2_ways
        self.target = L2cRtl(bank, amap, ways, send_mcu=self._target_mcu)
        self.golden = L2cRtl(bank, amap, ways, send_mcu=self._golden_mcu)
        self.target.load_state(machine.l2states[bank])
        self.golden.load_state(machine.l2states[bank])

    # -- MCU plumbing ----------------------------------------------------
    def _target_mcu(self, req: McuRequest) -> None:
        if req.op is McuOp.WRITE:
            self.target_port.write_line(req.line_addr, req.data)
        else:
            self.machine._send_mcu(req)

    def _golden_mcu(self, req: McuRequest) -> None:
        if req.op is McuOp.WRITE:
            self.golden_port.write_line(req.line_addr, req.data)
        else:
            self._golden_pending_reads[req.tag] = req.line_addr

    # -- server interface --------------------------------------------------
    def accept(self, pkt: PcxPacket, cycle: int) -> bool:
        ok = self.target.accept(pkt, cycle)
        if ok and not self.golden.accept(pkt, cycle):
            self.golden_diverged = True
        return ok

    def deliver_mcu_reply(self, reply: McuReply) -> None:
        self.target.deliver_mcu_reply(reply)
        addr = self._golden_pending_reads.pop(reply.tag, None)
        if addr is not None:
            self.golden.deliver_mcu_reply(
                McuReply(addr, self.golden_port.read_line(addr), self.bank, reply.tag)
            )

    def tick(self, cycle: int) -> list[CpxPacket]:
        out_t = self.target.tick(cycle)
        out_g = self.golden.tick(cycle)
        if out_t != out_g:
            self._note_output_mismatch(cycle)
        return out_t

    def in_flight(self) -> int:
        return self.target.in_flight()

    def dma_update(self, addr: int, value: int) -> None:
        """Coherent DMA update applied to both copies (device writes are
        error-free input, identical on both sides)."""
        self.target.dma_update(addr, value)
        self.golden.dma_update(addr, value)

    # -- platform hooks -------------------------------------------------------
    def memory_divergence(self) -> list[int]:
        candidates = self.target_port.written | self.golden_port.written
        live = self.machine.dram
        return sorted(
            a for a in candidates
            if live.read_word(a) != self.golden_dram.read_word(a)
        )

    def cache_corruption_words(self) -> list[int]:
        """Word addresses corrupted inside the architected cache arrays.

        Uses the *golden* copy's tags to name the affected lines (the
        golden values are the correct ones the application should see).
        """
        amap = self.machine.amap
        words: set[int] = set()
        t, g = self.target, self.golden
        for li in range(t.sets * t.ways):
            set_idx = li // t.ways
            g_state = g.state_sram.read(li)
            if not (g_state & 1):
                continue
            g_addr = amap.rebuild_addr(g.tag_sram.read(li), set_idx, self.bank)
            if (
                t.state_sram.read(li) != g_state
                or t.tag_sram.read(li) != g.tag_sram.read(li)
            ):
                for w in range(8):
                    words.add(g_addr + 8 * w)
            elif t.data_sram.read(li) != g.data_sram.read(li):
                diff = t.data_sram.read(li) ^ g.data_sram.read(li)
                for w in range(8):
                    if (diff >> (64 * w)) & ((1 << 64) - 1):
                        words.add(g_addr + 8 * w)
        return sorted(words)

    def attach(self) -> None:
        self.machine.l2banks[self.bank] = self
        self.machine.uncore_changed()

    def detach(self) -> None:
        """Transfer the (possibly corrupted) state back (Fig. 2, step 10)."""
        self.target.extract_state(self.machine.l2states[self.bank])
        self.machine.l2banks[self.bank] = self.hl
        self.machine.uncore_changed()

    def release(self) -> None:
        self.machine.l2banks[self.bank] = self.hl
        self.machine.uncore_changed()


class McuCosimAdapter(CosimAdapterBase):
    """Co-simulates one MCU against its golden copy.

    The MCU is self-contained (requests in, replies/DRAM traffic out),
    so the golden copy simply runs on a fork of main memory.
    """

    def __init__(self, machine, mcu_idx: int) -> None:
        super().__init__()
        self.machine = machine
        self.mcu_idx = mcu_idx
        self.hl = machine.mcus[mcu_idx]
        self.golden_dram = machine.dram.fork()
        self.target_port = WriteTrackingPort(machine.dram)
        self.golden_port = WriteTrackingPort(self.golden_dram)
        self.target = McuRtl(mcu_idx, self.target_port)
        self.golden = McuRtl(mcu_idx, self.golden_port)

    def accept(self, req: McuRequest, cycle: int) -> bool:
        ok = self.target.accept(req, cycle)
        if ok and not self.golden.accept(req, cycle):
            self.golden_diverged = True
        return ok

    def tick(self, cycle: int) -> None:
        rep_t = self.target.tick(cycle)
        rep_g = self.golden.tick(cycle)
        if rep_t != rep_g:
            self._note_output_mismatch(cycle)
        for reply in rep_t:
            self.machine._route_mcu_reply(reply)

    def in_flight(self) -> int:
        return self.target.in_flight()

    def memory_divergence(self) -> list[int]:
        candidates = self.target_port.written | self.golden_port.written
        live = self.machine.dram
        return sorted(
            a for a in candidates
            if live.read_word(a) != self.golden_dram.read_word(a)
        )

    def attach(self) -> None:
        self.machine.mcus[self.mcu_idx] = self
        self.machine.uncore_changed()

    def detach(self) -> None:
        self.machine.mcus[self.mcu_idx] = self.hl
        self.machine.uncore_changed()

    def release(self) -> None:
        self.machine.mcus[self.mcu_idx] = self.hl
        self.machine.uncore_changed()


class CcxCosimAdapter(CosimAdapterBase):
    """Co-simulates the crossbar against its golden copy.

    The crossbar holds no architected state (Table 1): its mismatches
    either vanish as queues drain or manifest as erroneous deliveries.
    """

    def __init__(self, machine) -> None:
        super().__init__()
        self.machine = machine
        self.hl = machine.ccx
        self.target = CcxRtl(machine.amap)
        self.golden = CcxRtl(machine.amap)

    def send_pcx(self, bank: int, pkt: PcxPacket, cycle: int) -> None:
        self.target.send_pcx(bank, pkt, cycle)
        self.golden.send_pcx(bank, pkt, cycle)

    def send_cpx(self, pkt: CpxPacket, cycle: int, src: int = 0) -> None:
        self.target.send_cpx(pkt, cycle, src)
        self.golden.send_cpx(pkt, cycle, src)

    def tick(self, cycle: int) -> None:
        self.target.tick(cycle)
        self.golden.tick(cycle)

    def deliver_pcx(self, cycle: int) -> list[tuple[int, PcxPacket]]:
        out_t = self.target.deliver_pcx(cycle)
        out_g = self.golden.deliver_pcx(cycle)
        if out_t != out_g:
            self._note_output_mismatch(cycle)
        return out_t

    def deliver_cpx(self, cycle: int) -> list[CpxPacket]:
        out_t = self.target.deliver_cpx(cycle)
        out_g = self.golden.deliver_cpx(cycle)
        if out_t != out_g:
            self._note_output_mismatch(cycle)
        return out_t

    def in_flight(self) -> int:
        return self.target.in_flight()

    def attach(self) -> None:
        self.machine.ccx = self
        self.machine.uncore_changed()

    def detach(self) -> None:
        self.machine.ccx = self.hl
        self.machine.uncore_changed()

    def release(self) -> None:
        self.machine.ccx = self.hl
        self.machine.uncore_changed()


class _CapturePort:
    """DMA write port that captures the per-tick write stream."""

    def __init__(self, sink_write) -> None:
        self._sink_write = sink_write
        self.stream: list[tuple[int, int]] = []
        self.written: set[int] = set()

    def write_word(self, addr: int, value: int) -> None:
        self.stream.append((addr & ~7, value))
        self.written.add(addr & ~7)
        self._sink_write(addr, value)

    def take(self) -> list[tuple[int, int]]:
        out = self.stream
        self.stream = []
        return out


class PcieCosimAdapter(CosimAdapterBase):
    """Co-simulates the PCIe controller's DMA engine.

    The engine only *writes* (it streams the host-side input file into
    memory), so golden isolation reduces to capturing both write streams:
    the target writes through the machine's coherent DMA path, the golden
    writes into a memory fork.  Diverging streams are erroneous outputs;
    diverging memories are corruption.
    """

    def __init__(self, machine) -> None:
        super().__init__()
        self.machine = machine
        self.hl = machine.pcie
        self.golden_dram = machine.dram.fork()
        self.target_port = _CapturePort(machine.dma_write_word)
        self.golden_port = _CapturePort(self.golden_dram.write_word)
        self.target = PcieRtl(self.target_port)
        self.golden = PcieRtl(self.golden_port)
        # transfer the in-progress descriptor state from the high-level model
        for module in (self.target, self.golden):
            module.file_words = list(self.hl.file_words)
            module.dma_dest.write(self.hl.dest_base)
            module.dma_len.write(len(self.hl.file_words))
            module.dma_progress.write(self.hl.progress)
            module.dma_status_addr.write(self.hl.status_addr)
            module.dma_active.write(1 if self.hl.active else 0)
            module.start_cycle = self.hl.start_cycle
            module.finish_cycle = self.hl.finish_cycle

    def begin_transfer(self, *args, **kwargs) -> None:  # pragma: no cover
        raise RuntimeError("transfers cannot be armed during co-simulation")

    def tick(self, cycle: int) -> None:
        self.target.tick(cycle)
        self.golden.tick(cycle)
        if self.target_port.take() != self.golden_port.take():
            self._note_output_mismatch(cycle)

    def in_flight(self) -> int:
        return self.target.in_flight()

    @property
    def active(self) -> bool:
        return self.target.active

    def memory_divergence(self) -> list[int]:
        candidates = self.target_port.written | self.golden_port.written
        live = self.machine.dram
        return sorted(
            a for a in candidates
            if live.read_word(a) != self.golden_dram.read_word(a)
        )

    def attach(self) -> None:
        self.machine.pcie = self
        self.machine.uncore_changed()

    def detach(self) -> None:
        """Copy the descriptor state back to the high-level model."""
        self.hl.progress = self.target.dma_progress.value
        self.hl.active = bool(self.target.dma_active.value)
        self.hl.finish_cycle = self.target.finish_cycle
        self.machine.pcie = self.hl
        self.machine.uncore_changed()

    def release(self) -> None:
        self.machine.pcie = self.hl
        self.machine.uncore_changed()


def make_adapter(machine, component: str, instance: int = 0) -> CosimAdapterBase:
    """Build the co-simulation adapter for one uncore component."""
    if component == "l2c":
        return L2cCosimAdapter(machine, instance)
    if component == "mcu":
        return McuCosimAdapter(machine, instance)
    if component == "ccx":
        return CcxCosimAdapter(machine)
    if component == "pcie":
        return PcieCosimAdapter(machine)
    raise ValueError(f"unknown uncore component {component!r}")
