"""The mixed-mode simulation platform (the paper's core contribution).

Combines the accelerated mode (high-level full-system simulation,
Fig. 1a) with co-simulation mode (the target uncore component at RTL,
lock-stepped against a golden copy, Fig. 1b).  The error-injection
methodology of Fig. 2 is implemented in
:class:`repro.mixedmode.platform.MixedModePlatform`.
"""

from repro.mixedmode.platform import (
    CosimConfig,
    CosimResult,
    InjectionRun,
    MixedModePlatform,
)
from repro.mixedmode.performance import (
    PerformanceModel,
    Table2Row,
    table2_model,
)

__all__ = [
    "CosimConfig",
    "CosimResult",
    "InjectionRun",
    "MixedModePlatform",
    "PerformanceModel",
    "Table2Row",
    "table2_model",
]
