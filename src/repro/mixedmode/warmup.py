"""Warm-up convergence experiment (paper Sec. 4.1, Fig. 5).

Compares the microarchitectural state of a *mixed-mode* RTL instance
(attached mid-run with only the architected/high-level state transferred,
everything else at reset) against a *full-co-simulation* instance that
has been running at RTL since cycle 0 and receives the identical input
stream.  The fraction of differing flip-flop bits, as a function of
cycles since attach, is the Fig. 5 curve: it decays to a small residual
within the warm-up period, which justifies injecting only after warm-up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mem.l2state import L2BankState
from repro.soc.packets import CpxPacket, McuReply, PcxPacket
from repro.system.machine import Machine, MachineConfig
from repro.uncore.l2c import L2cRtl
from repro.workloads import build_workload


class _FullCosimBank:
    """An L2C bank simulated at RTL from cycle 0, with an optional
    cold-attached shadow instance fed the same inputs."""

    def __init__(self, machine: Machine, bank: int) -> None:
        self.machine = machine
        self.bank = bank
        self.live = L2cRtl(
            bank, machine.amap, machine.config.l2_ways, send_mcu=machine._send_mcu
        )
        self.live.load_state(machine.l2states[bank])
        self.shadow: "L2cRtl | None" = None

    def attach_shadow(self) -> None:
        """Cold-attach the mixed-mode instance: architected state only."""
        arch = L2BankState(self.bank, self.machine.amap, self.machine.config.l2_ways)
        self.live.extract_state(arch)
        self.shadow = L2cRtl(
            self.bank,
            self.machine.amap,
            self.machine.config.l2_ways,
            send_mcu=lambda req: None,  # shadow requests are not serviced
        )
        self.shadow.load_state(arch)

    # -- machine server interface ----------------------------------------
    def accept(self, pkt: PcxPacket, cycle: int) -> bool:
        ok = self.live.accept(pkt, cycle)
        if ok and self.shadow is not None:
            self.shadow.accept(pkt, cycle)
        return ok

    def deliver_mcu_reply(self, reply: McuReply) -> None:
        self.live.deliver_mcu_reply(reply)
        if self.shadow is not None:
            self.shadow.deliver_mcu_reply(reply)

    def tick(self, cycle: int) -> list[CpxPacket]:
        out = self.live.tick(cycle)
        if self.shadow is not None:
            self.shadow.tick(cycle)
        return out

    def in_flight(self) -> int:
        return self.live.in_flight()

    def dma_update(self, addr: int, value: int) -> None:
        self.live.dma_update(addr, value)
        if self.shadow is not None:
            self.shadow.dma_update(addr, value)

    # -- measurement ---------------------------------------------------------
    def microarch_diff_fraction(self) -> float:
        """Fraction of flip-flop bits that *meaningfully* differ.

        Counts bits of non-benign flip-flop mismatches between the
        cold-attached instance and the always-RTL instance: occupancy
        counters, pointers, valid bits, and the fields of occupied
        entries.  Mismatches the benignity rules prove inert (stale
        contents of invalid queue slots, performance/debug trackers) are
        excluded -- they are bookkeeping left over from before the
        attach, not state the warm-up must restore.  The residual floor
        comes from ring-pointer offsets, which never re-align but are
        rotation-invariant.
        """
        if self.shadow is None:
            raise ValueError("shadow not attached")
        from repro.rtl.compare import MismatchKind

        diff = 0
        for m in self.live.compare(self.shadow):
            if m.kind is MismatchKind.FLIP_FLOP and not self.live.is_mismatch_benign(m):
                diff += m.bit_count
        return diff / self.live.flip_flop_count()


@dataclass
class WarmupResult:
    """Averaged microarchitectural difference per warm-up cycle."""

    horizon: int
    runs: int
    #: index w -> mean fraction of differing flip-flop bits after w cycles
    mean_diff: list[float] = field(default_factory=list)

    def diff_after(self, cycles: int) -> float:
        return self.mean_diff[min(cycles, self.horizon - 1)]

    def series(self, points: int = 11) -> list[tuple[float, float]]:
        """Down-sampled Fig. 5 series."""
        step = max(1, self.horizon // max(1, points - 1))
        xs = list(range(0, self.horizon, step))
        if xs[-1] != self.horizon - 1:
            xs.append(self.horizon - 1)
        return [(float(x), self.mean_diff[x]) for x in xs]


class WarmupExperiment:
    """Runs the Fig. 5 measurement for the L2C."""

    def __init__(
        self,
        benchmark: str = "fft",
        machine_config: MachineConfig = MachineConfig(cores=4, threads_per_core=2),
        scale: float = 1.0 / 200_000.0,
        seed: int = 2015,
    ) -> None:
        self.benchmark = benchmark
        self.machine_config = machine_config
        self.scale = scale
        self.seed = seed

    def run(self, runs: int = 10, horizon: int = 1000) -> WarmupResult:
        rng = random.Random(self.seed)
        totals = [0.0] * horizon
        image = build_workload(
            self.benchmark,
            threads=self.machine_config.total_threads,
            scale=self.scale,
            seed=self.seed,
        )
        for _run in range(runs):
            attach_at = rng.randrange(400, 2000)
            # probe run: find the bank with the most traffic by attach time
            probe = Machine(self.machine_config)
            probe.load_workload(image)
            probe.run_until_cycle(attach_at)
            bank = max(
                range(self.machine_config.l2_banks),
                key=lambda b: probe.l2banks[b].hits + probe.l2banks[b].misses,
            )
            machine = Machine(self.machine_config)
            machine.load_workload(image)
            server = _FullCosimBank(machine, bank)
            machine.l2banks[bank] = server
            machine.uncore_changed()
            machine.run_until_cycle(attach_at)
            # sample a busy instant: at the paper's 64-thread scale the
            # bank is essentially always mid-operation when co-simulation
            # attaches, which is exactly what warm-up must reconstruct
            for _ in range(5_000):
                if server.live.in_flight() >= 2:
                    break
                machine.step()
            server.attach_shadow()
            for w in range(horizon):
                machine.step()
                totals[w] += server.microarch_diff_fraction()
        return WarmupResult(
            horizon=horizon,
            runs=runs,
            mean_diff=[t / runs for t in totals],
        )
