"""The unified retry policy: one failure-handling vocabulary for every
executor backend.

Before this module, failure handling was scattered: the cluster
coordinator had a bare ``max_retries`` counter, the process pool had
none (a crashed pool worker aborted the whole sweep), and nothing could
bound how long a single wedged cell was allowed to stall a shard.
:class:`RetryPolicy` collects the three knobs every backend shares:

* **attempt budget** -- how many times a cell may be dispatched before
  it is declared exhausted (the cluster then degrades it to the local
  merge pass; serial/parallel raise a
  :class:`~repro.api.executor.CellFailure` naming the cell).
* **exponential backoff with deterministic jitter** -- re-dispatch of a
  failed cell waits ``base * factor**(attempt-1)``, spread by a jitter
  term derived from the cell's *spec digest* rather than a live RNG.
  Determinism matters twice: campaign RNG must never be consumed by
  infrastructure (digest-neutrality), and two coordinators retrying the
  same sweep stay in deterministic lockstep, which keeps chaos tests
  reproducible.
* **per-cell wall-clock deadline** (``cell_timeout``) -- a cell running
  longer than this is presumed wedged (SIGSTOPped worker, livelocked
  simulation, lost ``cell_result`` line).  Enforcement uses the
  existing worker *process* boundary: the executor kills the process
  hosting the cell and re-queues it, so a hung cell costs one deadline
  instead of stalling its shard forever.

The policy is pure configuration: it never appears in
:class:`~repro.api.spec.ExperimentSpec`, spec digests, cache keys or
canonical result bytes (the same digest-neutrality contract as
``engine`` and the obs layer).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how fast, and how long a sweep cell may be retried.

    Args:
        max_attempts: total dispatch budget per cell (1 = never retry).
        backoff_base: delay before the first re-dispatch (seconds).
        backoff_factor: multiplier per further attempt.
        backoff_cap: upper bound on the un-jittered delay (seconds).
        jitter: spread fraction; the final delay lands deterministically
            in ``[delay * (1 - jitter/2), delay * (1 + jitter/2)]``.
        cell_timeout: per-attempt wall-clock deadline (seconds); ``None``
            disables deadline enforcement.
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    jitter: float = 0.5
    cell_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")

    # ------------------------------------------------------------------
    def exhausted(self, attempts: int) -> bool:
        """Whether a cell that has been dispatched ``attempts`` times is
        out of budget."""
        return attempts >= self.max_attempts

    def backoff(self, digest: str, attempt: int) -> float:
        """Seconds to wait before dispatching ``attempt`` (1-based count
        of *re*-dispatches) of the cell with the given spec digest.

        The jitter term is a pure function of ``(digest, attempt)`` --
        blake2b, like every other stable hash in the repo -- so retry
        schedules are reproducible and never touch campaign RNG.
        """
        delay = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter == 0 or delay == 0:
            return delay
        blob = f"{digest}:{attempt}".encode("utf-8")
        frac = int.from_bytes(
            hashlib.blake2b(blob, digest_size=8).digest(), "big"
        ) / float(1 << 64)
        return delay * (1.0 - self.jitter / 2.0 + self.jitter * frac)

    def over_deadline(self, started_monotonic: float, now: float) -> bool:
        """Whether a cell started at ``started_monotonic`` has exceeded
        the per-attempt deadline at time ``now``."""
        if self.cell_timeout is None:
            return False
        return now - started_monotonic > self.cell_timeout


#: The conservative default used when a caller asks for retries without
#: specifying a policy (matches the cluster's historical max_retries=2).
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3)
