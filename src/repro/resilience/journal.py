"""The crash-safe sweep journal: durable sweep *intent* plus per-cell
progress, so a killed coordinator costs only the unlanded cells.

The result bus (the content-addressed ``CachingExecutor`` directory)
already makes landed cells durable -- workers rename canonical result
JSON into it atomically, and a warm bus replays as byte-identical cache
hits.  What the bus cannot answer is *what the sweep was*: which grid,
in which order, and how far it got.  The journal records exactly that:

* ``repro sweep --journal DIR`` writes ``DIR/journal.json`` before the
  first cell runs: the full grid description (the same dict the sweep
  JSON embeds), the digest-keyed cell list in reporting order, and a
  per-cell state machine (``pending`` -> ``landed`` | ``failed`` |
  ``exhausted``) folded from the executor event stream as results land.
* Every write is atomic (unique temp name + ``os.replace``, the same
  discipline as the result bus), so a SIGKILL at any instant leaves
  either the previous or the next journal -- never a torn one.
* ``repro sweep --resume DIR`` rebuilds the grid from the journal,
  reconciles cell states against the bus (the bus is authoritative: a
  coordinator killed between a worker's rename and the journal flush
  under-reports, never over-reports), and re-runs the sweep against the
  same bus -- landed cells are byte-identical cache hits, only unlanded
  cells recompute, and the output is byte-identical to an uninterrupted
  run because first-landed-digest-wins made landing idempotent.

Digest-neutrality: the journal is operational state *about* a sweep,
never part of one.  Nothing here enters spec digests, cache keys, or
canonical result bytes.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

#: Bump when the journal layout changes incompatibly.
JOURNAL_VERSION = 1

#: The manifest file name inside a journal directory.
JOURNAL_NAME = "journal.json"

#: Default result-bus subdirectory for journals that own their bus.
DEFAULT_BUS_NAME = "bus"

#: The per-cell state machine.  ``pending`` cells have no durable
#: result; ``landed`` cells are in the bus; ``failed`` cells raised at
#: least once (and may later land via a retry); ``exhausted`` cells ran
#: out of distributed retry budget (the local merge pass still computes
#: them, after which they land).
CELL_STATES = ("pending", "landed", "failed", "exhausted")

_TMP_IDS = itertools.count()


def journal_path(directory: "str | Path") -> Path:
    """Where the manifest lives inside a journal directory."""
    return Path(directory) / JOURNAL_NAME


class SweepJournal:
    """The on-disk manifest of one sweep campaign.

    One instance wraps one journal directory.  Mutators keep the
    in-memory state and the file in sync (:meth:`handle_event` flushes
    on every state transition -- journal writes are one small JSON file,
    orders of magnitude cheaper than a cell).
    """

    def __init__(
        self,
        directory: "str | Path",
        grid: dict,
        cells: "list[dict]",
        bus: str,
        created: "float | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.grid = grid
        self.cells = cells
        self.bus = bus
        self.created = created if created is not None else round(time.time(), 6)
        self._by_digest = {cell["digest"]: cell for cell in cells}

    # ------------------------------------------------------------------
    # construction / loading
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: "str | Path",
        grid: dict,
        specs,
        bus: "str | Path | None" = None,
    ) -> "SweepJournal":
        """Start a journal for ``specs`` (reporting order) under
        ``directory`` and durably write the initial all-pending state.

        ``bus`` names the result-bus directory; ``None`` places it
        inside the journal directory (``DIR/bus``), recorded relative
        so the journal directory can be moved as a unit.
        """
        cells = [
            {
                "digest": spec.digest(),
                "label": spec.label(),
                "state": "pending",
                "attempts": 0,
            }
            for spec in specs
        ]
        bus_text = DEFAULT_BUS_NAME if bus is None else str(bus)
        journal = cls(directory, grid, cells, bus_text)
        journal.directory.mkdir(parents=True, exist_ok=True)
        journal.bus_path().mkdir(parents=True, exist_ok=True)
        journal.flush()
        return journal

    @classmethod
    def load(cls, directory: "str | Path") -> "SweepJournal":
        """Load an existing journal (raises ``FileNotFoundError`` when
        the directory holds none, ``ValueError`` when it is unreadable
        -- a torn write is impossible by construction, so a corrupt
        manifest means external damage and deserves a loud error)."""
        path = journal_path(directory)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt sweep journal {path}: {exc}") from exc
        if not isinstance(data, dict) or "cells" not in data or "grid" not in data:
            raise ValueError(f"corrupt sweep journal {path}: not a manifest")
        version = data.get("journal_version")
        if version != JOURNAL_VERSION:
            raise ValueError(
                f"sweep journal {path} has version {version!r}; this build "
                f"speaks {JOURNAL_VERSION}"
            )
        return cls(
            directory,
            data["grid"],
            data["cells"],
            data.get("bus", DEFAULT_BUS_NAME),
            created=data.get("created"),
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def bus_path(self) -> Path:
        """The result-bus directory (relative entries resolve against
        the journal directory)."""
        bus = Path(self.bus)
        return bus if bus.is_absolute() else self.directory / bus

    def to_grid(self):
        """Rebuild the :class:`~repro.api.grid.Grid` this journal
        recorded, exactly as the original sweep composed it."""
        from repro.api.grid import Grid

        grid = self.grid
        # reject sloppy manifests loudly: a grid-form journal must name
        # its dimensions (Grid.from_dict would silently default them)
        for key in ("components", "benchmarks", "seeds", "mode", "n",
                    "machine", "scale"):
            if key not in grid:
                raise KeyError(key)
        return Grid.from_dict(grid)

    def to_specs(self):
        """The journaled cell specs in reporting order.

        Grid-form journals (``repro sweep --journal``) expand through
        :meth:`to_grid`; explicit-form journals (serve jobs submitting
        a spec list rather than a grid) record ``{"specs": [...]}`` and
        rebuild each :class:`~repro.api.spec.ExperimentSpec` directly.
        """
        if isinstance(self.grid, dict) and "specs" in self.grid:
            from repro.api.spec import ExperimentSpec

            return [
                ExperimentSpec.from_dict(d) for d in self.grid["specs"]
            ]
        return self.to_grid().specs()

    def matches(self, specs) -> bool:
        """Whether ``specs`` (in order) are exactly the journaled cells."""
        return [cell["digest"] for cell in self.cells] == [
            spec.digest() for spec in specs
        ]

    def counts(self) -> dict:
        """Cells per state (always includes every known state)."""
        out = {state: 0 for state in CELL_STATES}
        for cell in self.cells:
            out[cell.get("state", "pending")] = (
                out.get(cell.get("state", "pending"), 0) + 1
            )
        return out

    def unlanded(self) -> "list[int]":
        """Indices (reporting order) of cells with no durable result."""
        return [
            i for i, cell in enumerate(self.cells) if cell["state"] != "landed"
        ]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def mark(
        self, digest: str, state: str, attempts: "int | None" = None
    ) -> bool:
        """Move one cell to ``state`` (returns whether anything changed;
        unknown digests are ignored -- the event stream may mention
        cells from a concurrent sweep sharing the bus)."""
        if state not in CELL_STATES:
            raise ValueError(f"unknown cell state {state!r}")
        cell = self._by_digest.get(digest)
        if cell is None:
            return False
        changed = cell["state"] != state
        cell["state"] = state
        if attempts is not None and attempts != cell.get("attempts"):
            cell["attempts"] = attempts
            changed = True
        return changed

    def handle_event(self, event: dict) -> None:
        """Fold one executor ``on_event`` record into cell state and
        flush on change.  ``cell_done`` and ``cache_hit`` both mean the
        cell's canonical result is durable (the caching layer stores
        before the sweep reports); retries/timeouts bump the attempt
        count; ``cell_exhausted`` marks the distributed budget spent
        (the local merge pass will still land the cell afterwards)."""
        if not isinstance(event, dict):
            return
        digest = event.get("digest")
        if not digest:
            return
        etype = event.get("type")
        if etype in ("cell_done", "cache_hit"):
            changed = self.mark(digest, "landed")
        elif etype == "cell_error":
            changed = self.mark(digest, "failed")
        elif etype in ("cell_retry", "cell_timeout"):
            cell = self._by_digest.get(digest)
            changed = False
            if cell is not None and "attempt" in event:
                changed = event["attempt"] != cell.get("attempts")
                cell["attempts"] = event["attempt"]
        elif etype == "cell_exhausted":
            changed = self.mark(
                digest, "exhausted", attempts=event.get("attempt")
            )
        else:
            return
        if changed:
            self.flush()

    def reconcile(self, specs) -> int:
        """Trust the bus over the journal: mark every cell whose valid
        canonical result is already on the bus as landed (a coordinator
        killed after a worker's atomic rename but before the journal
        flush under-reports).  Returns how many cells flipped."""
        from repro.api.executor import load_cached_result, result_cache_path

        bus = self.bus_path()
        flipped = 0
        for spec in specs:
            digest = spec.digest()
            cell = self._by_digest.get(digest)
            if cell is None or cell["state"] == "landed":
                continue
            cached, _stale = load_cached_result(
                result_cache_path(bus, spec), spec
            )
            if cached is not None:
                cell["state"] = "landed"
                flipped += 1
        if flipped:
            self.flush()
        return flipped

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "journal_version": JOURNAL_VERSION,
            "created": self.created,
            "grid": self.grid,
            "bus": self.bus,
            "cells": self.cells,
        }

    def flush(self) -> None:
        """Atomically publish the manifest (write-then-rename with a
        unique temp name, the result-bus discipline: a SIGKILL mid-write
        leaves the previous manifest intact)."""
        path = journal_path(self.directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_IDS)}.tmp"
        )
        tmp.write_text(blob + "\n")
        tmp.replace(path)
