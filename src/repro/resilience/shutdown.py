"""Graceful shutdown: drain in-flight cells, leave a resumable state.

A sweep interrupted with SIGINT/SIGTERM should stop *between* cells,
not inside one: in-flight cells finish and land (the serial loop
completes the current cell, pool/cluster workers drain what they are
running), the journal flushes, and the process exits with everything
durable -- ``repro sweep --resume`` then recomputes only what never
landed.  A second signal skips the drain and raises
``KeyboardInterrupt`` immediately, so a wedged drain can always be
overridden from the keyboard.
"""

from __future__ import annotations

import signal
import threading


class SweepInterrupted(Exception):
    """A sweep stopped early on request, with a consistent, resumable
    state (raised by executors when their ``stop`` event is set).

    Attributes:
        done: cells that landed before the stop.
        total: cells the sweep was asked to run.
    """

    def __init__(self, done: int, total: int) -> None:
        self.done = done
        self.total = total
        super().__init__(
            f"sweep interrupted after {done}/{total} cells (state is "
            f"consistent and resumable)"
        )


class GracefulShutdown:
    """Context manager translating SIGINT/SIGTERM into a stop event.

    The first signal sets :attr:`stop` -- executors that accept a
    ``stop`` keyword check it between cells, drain what is in flight,
    and raise :class:`SweepInterrupted`.  The second signal raises
    ``KeyboardInterrupt`` from the handler, the ordinary hard-stop
    path.  Handlers are only installed from the main thread (signal
    rules); elsewhere the context is inert and :attr:`stop` simply
    never fires.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.stop = threading.Event()
        self.signals_seen = 0
        self._previous: dict = {}

    # ------------------------------------------------------------------
    def _handle(self, signum, frame) -> None:
        self.signals_seen += 1
        if self.stop.is_set():
            raise KeyboardInterrupt
        self.stop.set()

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for sig in self.SIGNALS:
                self._previous[sig] = signal.signal(sig, self._handle)
        return self

    def __exit__(self, *exc) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()
