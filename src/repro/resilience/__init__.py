"""Crash-safe sweeps: journal, retry policy, graceful shutdown, fsck.

The execution fabric's resilience layer, in four pieces:

* :class:`RetryPolicy` (:mod:`repro.resilience.retry`) -- the unified
  attempt-budget / backoff / per-cell-deadline vocabulary threaded
  through every executor backend.
* :class:`SweepJournal` (:mod:`repro.resilience.journal`) -- the
  atomic, digest-keyed manifest behind ``repro sweep --journal`` /
  ``--resume``: a killed coordinator costs only the unlanded cells.
* :class:`GracefulShutdown` / :class:`SweepInterrupted`
  (:mod:`repro.resilience.shutdown`) -- SIGINT/SIGTERM drain in-flight
  cells and exit with a resumable state.
* :func:`fsck_cache` (:mod:`repro.resilience.fsck`) -- audit and
  quarantine damage in a result bus (``repro cache fsck``).

The chaos harness (:mod:`repro.resilience.chaos`) lives alongside but
is imported on demand (``from repro.resilience import chaos``): it is
test machinery, not a runtime dependency.

Everything here is operational state about a sweep, never part of one:
no field of this package enters spec digests, cache keys, or canonical
result bytes (the obs-layer digest-neutrality contract).
"""

from repro.resilience.fsck import FsckReport, fsck_cache
from repro.resilience.journal import (
    JOURNAL_VERSION,
    SweepJournal,
    journal_path,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.resilience.shutdown import GracefulShutdown, SweepInterrupted

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FsckReport",
    "GracefulShutdown",
    "JOURNAL_VERSION",
    "RetryPolicy",
    "SweepInterrupted",
    "SweepJournal",
    "fsck_cache",
    "journal_path",
]
