"""``repro cache fsck``: audit (and quarantine damage in) a result bus.

The content-addressed store is self-verifying -- every entry is
``<spec-digest>.json`` whose embedded spec must round-trip to that
digest, which is exactly the staleness check
:func:`repro.api.executor.load_cached_result` applies before trusting
an entry.  Sweeps therefore *recover* from damage automatically (a
corrupt or mismatched entry is recomputed as a ``cache_stale`` miss),
but silently: fsck makes the damage visible, and ``--repair`` moves the
bad bytes into ``DIR/quarantine/`` so the evidence survives the
recompute that would otherwise overwrite it.

Entry classification:

* ``ok`` -- parses, and the embedded spec's digest matches the file name.
* ``corrupt`` -- unreadable or not a canonical result document
  (interrupted write, truncation, bit rot).
* ``mismatched`` -- a valid result filed under the wrong digest
  (tampering or a tooling bug; these poison nothing, but they can never
  be hit and waste the recompute that landed them).
* ``orphan_tmp`` -- a ``*.tmp`` staging file with no living writer
  (writers rename within milliseconds; an old temp file is the corpse
  of a killed writer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

#: Temp files younger than this may belong to a live writer and are
#: left alone (atomic publishes take milliseconds; one minute is eons).
ORPHAN_TMP_AGE_SECONDS = 60.0

#: Quarantine subdirectory created by ``--repair``.
QUARANTINE_DIR = "quarantine"


@dataclass
class FsckReport:
    """What a scan found (paths are bus-relative for readable logs)."""

    cache_dir: Path
    ok: int = 0
    corrupt: "list[str]" = field(default_factory=list)
    mismatched: "list[str]" = field(default_factory=list)
    orphan_tmp: "list[str]" = field(default_factory=list)
    skipped_tmp: int = 0
    quarantined: "list[str]" = field(default_factory=list)

    @property
    def issues(self) -> int:
        return len(self.corrupt) + len(self.mismatched) + len(self.orphan_tmp)

    def to_dict(self) -> dict:
        return {
            "cache_dir": str(self.cache_dir),
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "mismatched": list(self.mismatched),
            "orphan_tmp": list(self.orphan_tmp),
            "skipped_tmp": self.skipped_tmp,
            "quarantined": list(self.quarantined),
            "issues": self.issues,
        }


def scan_entry(path: Path) -> str:
    """Classify one ``<digest>.json`` entry: ``ok`` | ``corrupt`` |
    ``mismatched`` (the same failure modes ``load_cached_result`` folds
    into its stale signal, split apart for reporting)."""
    from repro.api.result import ExperimentResult

    try:
        result = ExperimentResult.load(path)
    except (ValueError, KeyError, OSError):
        return "corrupt"
    if result.spec.digest() != path.stem:
        return "mismatched"
    return "ok"


def fsck_cache(
    cache_dir: "str | Path",
    repair: bool = False,
    *,
    tmp_age: float = ORPHAN_TMP_AGE_SECONDS,
) -> FsckReport:
    """Scan a result bus; with ``repair`` move damaged entries and
    orphaned temp files into ``cache_dir/quarantine/``.

    Quarantining (not deleting) keeps repair safe to run on a live bus:
    worst case a racing writer re-lands the digest, which is idempotent
    by construction.
    """
    cache_dir = Path(cache_dir)
    report = FsckReport(cache_dir=cache_dir)
    if not cache_dir.is_dir():
        raise FileNotFoundError(f"no result cache at {cache_dir}")
    quarantine = cache_dir / QUARANTINE_DIR
    now = time.time()

    def _quarantine(path: Path) -> None:
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / path.name
        try:
            path.replace(target)
        except OSError:
            return  # vanished mid-repair (racing writer); nothing to move
        report.quarantined.append(path.name)

    for path in sorted(cache_dir.iterdir()):
        if not path.is_file():
            continue
        if path.name.endswith(".tmp"):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # unlinked between listing and stat
            if age < tmp_age:
                report.skipped_tmp += 1
                continue
            report.orphan_tmp.append(path.name)
            if repair:
                _quarantine(path)
            continue
        if path.suffix != ".json":
            continue
        status = scan_entry(path)
        if status == "ok":
            report.ok += 1
            continue
        getattr(report, status).append(path.name)
        if repair:
            _quarantine(path)
    return report
