"""The chaos harness: inject real faults into the execution fabric.

The paper injects faults into a simulated SoC; this module injects them
into the *reproduction's own* machinery, so the resilience claims
(journaled resume, deadline re-queue, stale-entry recompute, protocol
robustness) are exercised against genuine process kills and corrupted
bytes rather than mocks.  ``tests/test_chaos.py`` drives every scenario
and asserts the fabric's core invariant afterwards: the surviving or
resumed sweep is **byte-identical** to an uninterrupted serial run, and
progress accounting stays coherent.

Scenario toolkit:

* **Process chaos** -- :func:`sigkill` (crash), :func:`sigstop` /
  :func:`sigcont` (a *hung* worker: the process is alive, heartbeats
  stop, the cell never finishes -- exactly what a wedged simulation
  looks like from outside).
* **Bus chaos** -- :func:`corrupt_entry`, :func:`truncate_entry`,
  :func:`plant_orphan_tmp`: the three shapes of on-disk damage a
  crashed writer or flaky filesystem leaves behind.
* **Protocol chaos** -- :class:`ChaosLauncher` wraps any cluster
  launcher and deterministically drops or garbles worker->coordinator
  lines (:class:`LineChaos`).  Dropped ``cell_result`` lines are the
  nastiest case: the result *is* durable on the bus but the coordinator
  never hears so -- the per-cell deadline re-queues the cell, the retry
  resolves as a free bus hit, and the re-sent ``cell_result`` closes
  the loop.

Chaos decisions derive from seeded RNG and per-line counters, never
from wall-clock or campaign RNG, so every scenario replays identically.
"""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path


# ----------------------------------------------------------------------
# process chaos
# ----------------------------------------------------------------------
def sigkill(pid: int) -> bool:
    """SIGKILL a process (returns False when it is already gone)."""
    return _signal(pid, signal.SIGKILL)


def sigstop(pid: int) -> bool:
    """SIGSTOP a process: alive but frozen -- the 'hung worker' fault."""
    return _signal(pid, signal.SIGSTOP)


def sigcont(pid: int) -> bool:
    """Undo :func:`sigstop` (cleanup in tests; SIGKILL also works on a
    stopped process, which is how the coordinator reaps hung workers)."""
    return _signal(pid, signal.SIGCONT)


def _signal(pid: int, sig) -> bool:
    try:
        os.kill(pid, sig)
    except (OSError, ProcessLookupError):
        return False
    return True


def wait_for(predicate, timeout: float = 30.0, interval: float = 0.05) -> bool:
    """Poll ``predicate`` until truthy or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


# ----------------------------------------------------------------------
# bus chaos
# ----------------------------------------------------------------------
def corrupt_entry(path: "str | Path") -> Path:
    """Overwrite a bus entry with non-JSON garbage (bit-rot stand-in)."""
    path = Path(path)
    path.write_bytes(b"\x00garbage\xff not json {")
    return path


def truncate_entry(path: "str | Path", keep: int = 40) -> Path:
    """Truncate a bus entry mid-document (interrupted-write stand-in
    for stores that lack the atomic-rename discipline)."""
    path = Path(path)
    path.write_bytes(path.read_bytes()[:keep])
    return path


def plant_orphan_tmp(
    cache_dir: "str | Path", age_seconds: float = 3600.0
) -> Path:
    """Drop a stale ``*.tmp`` staging file (a killed writer's corpse)."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    tmp = cache_dir / "deadbeef.json.99999.0.tmp"
    tmp.write_text('{"half": "written')
    old = time.time() - age_seconds
    os.utime(tmp, (old, old))
    return tmp


# ----------------------------------------------------------------------
# protocol chaos
# ----------------------------------------------------------------------
class LineChaos:
    """Deterministic per-line damage policy for one worker's stdout.

    Each line draws from a seeded RNG: dropped entirely with
    probability ``drop``, garbled into non-JSON with probability
    ``garble``, else passed through.  Message types in ``protect`` are
    never touched (default: the ``ready`` handshake, so version
    checking stays meaningful under chaos).
    """

    def __init__(
        self,
        drop: float = 0.2,
        garble: float = 0.2,
        seed: int = 2015,
        protect: tuple = ("ready",),
    ) -> None:
        if drop + garble > 1.0:
            raise ValueError("drop + garble must not exceed 1.0")
        self.drop = drop
        self.garble = garble
        self.seed = seed
        self.protect = tuple(protect)

    def for_worker(self, worker_id: int) -> "random.Random":
        # one independent, reproducible stream per worker
        return random.Random((self.seed << 16) ^ worker_id)

    def apply(self, rng: "random.Random", line: str) -> "str | None":
        """One line's fate: the line, a garbled variant, or ``None``."""
        for mtype in self.protect:
            if f'"type":"{mtype}"' in line:
                return line
        roll = rng.random()
        if roll < self.drop:
            return None
        if roll < self.drop + self.garble:
            return "\x7f{chaos-garbled " + line[: 24].rstrip("\n") + "\n"
        return line


class _ChaosStdout:
    """Iterates a real worker stdout through a :class:`LineChaos`."""

    def __init__(self, stream, chaos: LineChaos, rng) -> None:
        self._stream = stream
        self._chaos = chaos
        self._rng = rng
        self.dropped = 0
        self.garbled = 0

    def __iter__(self):
        for line in self._stream:
            mangled = self._chaos.apply(self._rng, line)
            if mangled is None:
                self.dropped += 1
                continue
            if mangled is not line:
                self.garbled += 1
            yield mangled

    def __getattr__(self, name):
        return getattr(self._stream, name)


class _ChaosProc:
    """A Popen proxy whose stdout is chaos-filtered (everything else --
    poll/wait/kill/stdin/pid -- passes straight through)."""

    def __init__(self, proc, chaos: LineChaos, worker_id: int) -> None:
        self._proc = proc
        self.stdout = _ChaosStdout(
            proc.stdout, chaos, chaos.for_worker(worker_id)
        )

    def __getattr__(self, name):
        return getattr(self._proc, name)


class ChaosLauncher:
    """Wraps any cluster launcher, interposing line chaos on every
    worker it spawns.  The coordinator cannot tell the difference --
    which is the point: its protocol handling must already tolerate a
    lossy, garbling transport."""

    def __init__(self, inner, chaos: "LineChaos | None" = None) -> None:
        self.inner = inner
        self.chaos = chaos if chaos is not None else LineChaos()
        self.procs: "list[_ChaosProc]" = []

    def command(self, worker_id: int, worker_args: "list[str]") -> "list[str]":
        return self.inner.command(worker_id, worker_args)

    def launch(self, worker_id: int, worker_args: "list[str]"):
        proc = _ChaosProc(
            self.inner.launch(worker_id, worker_args), self.chaos, worker_id
        )
        self.procs.append(proc)
        return proc

    @property
    def dropped(self) -> int:
        return sum(p.stdout.dropped for p in self.procs)

    @property
    def garbled(self) -> int:
        return sum(p.stdout.garbled for p in self.procs)

    def __repr__(self) -> str:
        return f"ChaosLauncher({self.inner!r}, {self.chaos!r})"
