"""Reproduction of "Understanding Soft Errors in Uncore Components".

(Cho, Cher, Shepherd, Mitra -- DAC 2015.)

This package implements, in pure Python, the paper's complete system:

* a flip-flop-accurate RTL modelling kernel (:mod:`repro.rtl`),
* cycle-level behavioural models of the OpenSPARC T2 uncore components
  (L2 cache controller, DRAM controller, crossbar, PCI Express
  controller) in :mod:`repro.uncore`,
* a small full-system simulator with multi-threaded in-order cores
  (:mod:`repro.core`, :mod:`repro.system`) standing in for Simics,
* the mixed-mode co-simulation platform (:mod:`repro.mixedmode`),
* the soft-error injection methodology (:mod:`repro.injection`),
* checkpoint-recovery analyses (:mod:`repro.recovery`),
* the Quick Replay Recovery technique (:mod:`repro.qrr`), and
* the physical (area/power) cost model (:mod:`repro.physical`).

Quickstart::

    from repro.system import Machine, MachineConfig
    from repro.workloads import build_workload

    machine = Machine(MachineConfig(cores=2, threads_per_core=2))
    workload = build_workload("fft", scale=0.05)
    result = machine.run_workload(workload)
    print(result.outcome, result.cycles)
"""

__version__ = "1.0.0"

from repro.soc.geometry import T2_GEOMETRY

__all__ = ["T2_GEOMETRY", "__version__"]
