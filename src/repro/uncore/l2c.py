"""Flip-flop-level RTL model of one L2 cache controller bank (L2C).

Microarchitecture (mirrors the OpenSPARC T2 L2 bank at reproduction
scale):

* a 16-entry input queue (IQ) latching incoming PCX packets,
* a 4-deep request pipeline (P1..P4) ending in tag lookup / execute,
* an 8-entry miss buffer (MB) tracking outstanding fills; a *store miss*
  acknowledges the core immediately and keeps post-processing in the MB
  after the return packet -- exactly the behaviour that defeats
  core-resident recovery and that QRR's completion monitor handles
  (paper Sec. 6.1),
* a 4-entry fill queue (FQ) for MCU data returns and a 4-entry
  writeback buffer (WBB) for dirty victims,
* a 16-entry output queue (OQ) toward the CPX crossbar,
* ECC-protected data-path staging (excluded from injection, Table 4),
* BIST/redundancy scan chains (inactive, Table 4).

The architected arrays (tag, state, data, L1 directory, victim pointers)
are SRAM -- part of the Table 1 high-level state and transferred to/from
:class:`repro.mem.l2state.L2BankState` at co-simulation entry/exit.

The register inventory totals exactly the Table 3 / Table 4 figures for
the L2C: 31,675 flip-flops per instance, of which 18,369 are injection
targets, 8,650 ECC/CRC-protected and 4,656 inactive.
"""

from __future__ import annotations

from typing import Callable

from repro.mem.l2state import L2BankState
from repro.rtl.compare import Mismatch, MismatchKind
from repro.rtl.module import RtlModule
from repro.rtl.registers import FlipFlopClass
from repro.soc.address import AddressMap, WORDS_PER_LINE
from repro.soc.packets import (
    CpxPacket,
    CpxType,
    McuOp,
    McuReply,
    McuRequest,
    PcxPacket,
    PcxType,
)

IQ_ENTRIES = 16
MB_ENTRIES = 8
FQ_ENTRIES = 4
WBB_ENTRIES = 4
OQ_ENTRIES = 16
INVQ_ENTRIES = 16
#: packet field widths: valid + type + core + thread + addr + data + reqid
_PKT_BITS = dict(valid=1, ptype=3, core=3, thread=3, addr=40, data=64, reqid=16)

#: Table 3 / Table 4 totals for one L2C instance.
TOTAL_FFS = 31_675
TARGET_FFS = 18_369
PROTECTED_FFS = 8_650
INACTIVE_FFS = 4_656

_LINE_MASK = (1 << 512) - 1
_WORD_MASK = (1 << 64) - 1


class L2cRtl(RtlModule):
    """RTL model of one L2C bank instance."""

    def __init__(
        self,
        bank: int,
        amap: AddressMap,
        ways: int,
        send_mcu: "Callable[[McuRequest], None]",
    ) -> None:
        super().__init__(f"l2c{bank}")
        self.bank = bank
        self.amap = amap
        self.ways = ways
        self.sets = amap.l2_sets
        self.send_mcu = send_mcu
        nlines = self.sets * ways

        # ---- architected SRAM arrays (Table 1 high-level state) -------
        self.tag_sram = self.sram_array("tag_array", nlines, 40)
        self.state_sram = self.sram_array("state_array", nlines, 2)
        self.data_sram = self.sram_array("data_array", nlines, 512)
        self.dir_sram = self.sram_array("dir_array", nlines, 8)
        self.victim_sram = self.sram_array("victim_ptr", self.sets, 3)

        # ---- input queue ----------------------------------------------
        self._queue_fields("iq", IQ_ENTRIES)
        self.iq_head = self.reg("iq_head", 4)
        self.iq_tail = self.reg("iq_tail", 4)
        self.iq_count = self.reg("iq_count", 5)

        # ---- request pipeline P1..P4 ------------------------------------
        for stage in range(1, 5):
            self._queue_fields(f"p{stage}", 1)

        # ---- miss buffer -------------------------------------------------
        self._queue_fields("mb", MB_ENTRIES)
        self.mb_state = self.reg_array("mb_state", MB_ENTRIES, 2)

        # ---- fill queue / writeback buffer --------------------------------
        self.fq_valid = self.reg_array("fq_valid", FQ_ENTRIES, 1)
        self.fq_addr = self.reg_array("fq_addr", FQ_ENTRIES, 40)
        self.fq_data = self.reg_array("fq_data", FQ_ENTRIES, 512)
        # The writeback buffer holds the only copy of dirty victim data
        # while it drains to the MCU; it is ECC-protected (excluded from
        # injection per Table 4) and excluded from the QRR reset domain
        # (Sec. 6.2 preserves array contents; the WBB is array-adjacent).
        self.wbb_valid = self.reg_array(
            "wbb_valid", WBB_ENTRIES, 1, ff_class=FlipFlopClass.PROTECTED
        )
        self.wbb_addr = self.reg_array(
            "wbb_addr", WBB_ENTRIES, 40, ff_class=FlipFlopClass.PROTECTED
        )
        self.wbb_data = self.reg_array(
            "wbb_data", WBB_ENTRIES, 512, ff_class=FlipFlopClass.PROTECTED
        )

        # ---- output queue / invalidation queue ------------------------------
        self._queue_fields("oq", OQ_ENTRIES)
        self.oq_head = self.reg("oq_head", 4)
        self.oq_tail = self.reg("oq_tail", 4)
        self.oq_count = self.reg("oq_count", 5)
        self.invq_valid = self.reg_array("invq_valid", INVQ_ENTRIES, 1)
        self.invq_core = self.reg_array("invq_core", INVQ_ENTRIES, 3)
        self.invq_addr = self.reg_array("invq_addr", INVQ_ENTRIES, 40)

        # ---- MCU interface / flow control ------------------------------------
        self.mcu_req_valid = self.reg("mcu_req_valid", 1)
        self.mcu_req_op = self.reg("mcu_req_op", 1)
        self.mcu_req_addr = self.reg("mcu_req_addr", 40)
        self.mcu_req_tag = self.reg("mcu_req_tag", 16)
        self.mcu_req_data = self.reg("mcu_req_data", 512)
        self.fill_credits = self.reg("fill_credits", 3, reset_value=FQ_ENTRIES)
        self.mb_next_tag = self.reg("mb_next_tag", 16)

        # ---- store-miss completion signalling (QRR hook) ----------------------
        self.store_miss_done_valid = self.reg("store_miss_done_valid", 1)
        self.store_miss_done_reqid = self.reg("store_miss_done_reqid", 16)

        # ---- config registers (hardened under QRR, Sec. 6.4 cat. 2) ------------
        self.cfg_enable = self.reg("cfg_cache_enable", 1, reset_value=1, config=True)
        self.cfg_bank_id = self.reg(
            "cfg_bank_id", 6, reset_value=bank, config=True
        )
        self.reg("cfg_mode", 48, reset_value=0x2A, config=True)

        # ---- performance/debug counters (non-functional) -----------------------
        self.perf_hits = self.reg("perf_hits", 64, functional=False)
        self.perf_misses = self.reg("perf_misses", 64, functional=False)
        self.perf_evictions = self.reg("perf_evictions", 64, functional=False)
        self.perf_fills = self.reg("perf_fills", 64, functional=False)
        self.dbg_last_addr = self.reg("dbg_last_addr", 40, functional=False)

        # ---- arbitration / timing-critical control (hardened, cat. 1) -----------
        # These registers sit on the critical tag-lookup path; QRR hardens
        # them instead of adding a parity XOR tree (1,650 FFs, Sec. 6.4).
        # They shadow the per-lookup compare values: the functional result
        # is recomputed from the SRAMs each cycle, so a flip here is
        # overwritten by the next lookup of the same set.
        # functional=False: the architected hit result is recomputed from
        # the SRAMs every lookup, so these shadows never feed back.
        self.arb_grant = self.reg(
            "arb_grant_vec", 46, timing_critical=True, functional=False
        )
        self.tag_cmp_stage = self.reg_array(
            "tag_cmp_stage", 8, 128, timing_critical=True, functional=False
        )
        self.way_sel_stage = self.reg_array(
            "way_sel_stage", 10, 58, timing_critical=True, functional=False
        )

        # ---- ECC-protected data-path staging (Table 4: excluded) ----------------
        self.ecc_fill_stage = self.reg_array(
            "ecc_fill_stage", 4, 576, ff_class=FlipFlopClass.PROTECTED
        )
        self.reg_array("ecc_data_out", 2, 576, ff_class=FlipFlopClass.PROTECTED)
        self.reg_array("ecc_dir_stage", 2, 576, ff_class=FlipFlopClass.PROTECTED)
        used_prot = self.flip_flop_count_by_class()[FlipFlopClass.PROTECTED]
        self.reg(
            "ecc_tag_stage",
            PROTECTED_FFS - used_prot,
            ff_class=FlipFlopClass.PROTECTED,
        )

        # ---- inactive BIST / redundancy chains (Table 4: excluded) ---------------
        self.reg_array("bist_scan_chain", 97, 48, ff_class=FlipFlopClass.INACTIVE)

        # ---- balance register bank: brings the target total to Table 4 ------------
        used = self.flip_flop_count_by_class()[FlipFlopClass.TARGET]
        remaining = TARGET_FFS - used
        if remaining <= 0:  # pragma: no cover - inventory is static
            raise AssertionError("L2C inventory exceeds Table 4 target count")
        width = 61
        entries, tail = divmod(remaining, width)
        self.reg_array("csr_shadow_bank", entries, width, functional=False)
        if tail:
            self.reg("csr_shadow_tail", tail, functional=False)

        counts = self.flip_flop_count_by_class()
        assert counts[FlipFlopClass.TARGET] == TARGET_FFS
        assert counts[FlipFlopClass.PROTECTED] == PROTECTED_FFS
        assert counts[FlipFlopClass.INACTIVE] == INACTIVE_FFS
        assert self.flip_flop_count() == TOTAL_FFS

        #: store-miss completions observed this tick (QRR hook).
        self.store_miss_completions: list[int] = []
        #: operations executed this tick as (reqid, reply_packet) -- the
        #: QRR request/completion monitor snoops this to learn when an
        #: operation's architected effect has been applied (reply_packet
        #: is None for store-miss completions, whose ack went out earlier).
        self.exec_log: list[tuple[int, "CpxPacket | None"]] = []
        #: protocol anomalies observed (malformed packets etc.).
        self.protocol_errors = 0
        #: when True, writes to the architected SRAMs are suppressed and
        #: output-valid signals are gated (QRR recovery, Sec. 6.2).
        self.write_disable = False

    # ------------------------------------------------------------------
    # Register-bank plumbing
    # ------------------------------------------------------------------
    def _queue_fields(self, prefix: str, entries: int) -> None:
        for field, width in _PKT_BITS.items():
            self.reg_array(f"{prefix}_{field}", entries, width)

    def _prefix_regs(self, prefix: str) -> tuple:
        """Cached (valid, ptype, core, thread, addr, data, reqid)
        register arrays for a queue prefix -- avoids per-access f-string
        construction and dict lookups on the co-simulation hot path."""
        cache = self.__dict__.get("_prefix_reg_cache")
        if cache is None:
            cache = self._prefix_reg_cache = {}
        regs = cache.get(prefix)
        if regs is None:
            table = self._registers
            regs = cache[prefix] = tuple(
                table[f"{prefix}_{field}"]
                for field in ("valid", "ptype", "core", "thread", "addr",
                              "data", "reqid")
            )
        return regs

    def _entry_read(self, prefix: str, idx: int) -> PcxPacket:
        _v, ptype, core, thread, addr, data, reqid = self._prefix_regs(prefix)
        return PcxPacket.unpack_fields(
            ptype.values[idx],
            core.values[idx],
            thread.values[idx],
            addr.values[idx],
            data.values[idx],
            reqid.values[idx],
        )

    def _entry_write(self, prefix: str, idx: int, pkt: PcxPacket, valid: int = 1) -> None:
        rv, rp, rc, rt, ra, rd, rq = self._prefix_regs(prefix)
        ptype, core, thread, addr, data, reqid = pkt.pack_fields()
        rv.write(idx, valid)
        rp.write(idx, ptype)
        rc.write(idx, core)
        rt.write(idx, thread)
        ra.write(idx, addr)
        rd.write(idx, data)
        rq.write(idx, reqid)

    def _entry_invalidate(self, prefix: str, idx: int) -> None:
        self._prefix_regs(prefix)[0].write(idx, 0)

    def _entry_valid(self, prefix: str, idx: int) -> bool:
        return bool(self._prefix_regs(prefix)[0].values[idx])

    # ------------------------------------------------------------------
    # Architected array helpers
    # ------------------------------------------------------------------
    def _line_index(self, set_idx: int, way: int) -> int:
        return set_idx * self.ways + way

    def _lookup(self, addr: int) -> "tuple[int, int] | None":
        set_idx = self.amap.set_of(addr)
        tag = self.amap.tag_of(addr)
        hit = None
        hit_vector = 0
        for way in range(self.ways):
            li = self._line_index(set_idx, way)
            if self.state_sram.read(li) & 1 and self.tag_sram.read(li) == tag:
                hit = (set_idx, way)
                hit_vector |= 1 << way
        # latch the compare/select stages (timing-critical shadow state;
        # the architected result above is recomputed from the SRAMs)
        self.tag_cmp_stage.write(set_idx % 8, (tag << 8) | hit_vector)
        self.way_sel_stage.write(
            set_idx % 10, (hit_vector << 40) | (addr & ((1 << 40) - 1))
        )
        self.arb_grant.write((self.arb_grant.value << 1 | bool(hit)) & ((1 << 46) - 1))
        return hit

    def _read_word(self, li: int, word: int) -> int:
        return (self.data_sram.read(li) >> (64 * word)) & _WORD_MASK

    def _write_word(self, li: int, word: int, value: int) -> None:
        if self.write_disable:
            return
        line = self.data_sram.read(li)
        shift = 64 * word
        line = (line & ~(_WORD_MASK << shift)) | ((value & _WORD_MASK) << shift)
        self.data_sram.write(li, line)

    def _emit_cpx(self, pkt: CpxPacket) -> bool:
        """Push a CPX packet into the output queue (False when full)."""
        if self.write_disable:
            return True  # output-valid gated during recovery
        if self.oq_count.value >= OQ_ENTRIES:
            return False
        tail = self.oq_tail.value % OQ_ENTRIES
        ctype, core, thread, addr, data, reqid = pkt.pack_fields()
        rv, rp, rc, rt, ra, rd, rq = self._prefix_regs("oq")
        rv.write(tail, 1)
        rp.write(tail, ctype)
        rc.write(tail, core)
        rt.write(tail, thread)
        ra.write(tail, addr)
        rd.write(tail, data)
        rq.write(tail, reqid)
        self.oq_tail.write((self.oq_tail.value + 1) % OQ_ENTRIES)
        self.oq_count.write(self.oq_count.value + 1)
        return True

    def _queue_inv(self, core: int, line_addr: int) -> None:
        for i in range(INVQ_ENTRIES):
            if not self.invq_valid.read(i):
                self.invq_valid.write(i, 1)
                self.invq_core.write(i, core)
                self.invq_addr.write(i, line_addr)
                return
        # queue overflow drops the invalidation (bounded hardware);
        # counts as a protocol anomaly
        self.protocol_errors += 1

    def _send_invs(self, li: int, line_addr: int, keep_core: int = -1) -> None:
        directory = self.dir_sram.read(li)
        core = 0
        while directory:
            if directory & 1 and core != keep_core:
                self._queue_inv(core, line_addr)
            directory >>= 1
            core += 1

    # ------------------------------------------------------------------
    # Server interface (same shape as HighLevelL2Bank)
    # ------------------------------------------------------------------
    def accept(self, pkt: PcxPacket, cycle: int) -> bool:
        if self.write_disable:
            return False  # QRR recovery blocks new packets
        if self.iq_count.value >= IQ_ENTRIES:
            return False
        tail = self.iq_tail.value % IQ_ENTRIES
        self._entry_write("iq", tail, pkt)
        self.iq_tail.write((self.iq_tail.value + 1) % IQ_ENTRIES)
        self.iq_count.write(self.iq_count.value + 1)
        return True

    def deliver_mcu_reply(self, reply: McuReply) -> None:
        data_int = 0
        for i, word in enumerate(reply.data):
            data_int |= (word & _WORD_MASK) << (64 * i)
        for i in range(FQ_ENTRIES):
            if not self.fq_valid.read(i):
                self.fq_valid.write(i, 1)
                self.fq_addr.write(i, reply.line_addr)
                self.fq_data.write(i, data_int)
                # ECC staging mirrors the fill data (protected path)
                self.ecc_fill_stage.write(i % 4, data_int & ((1 << 576) - 1))
                return
        self.protocol_errors += 1  # fill with no free FQ entry

    def tick(self, cycle: int) -> list[CpxPacket]:
        self.store_miss_completions = []
        self.exec_log = []
        self.store_miss_done_valid.write(0)
        self.store_miss_done_reqid.write(0)
        if not self.write_disable:
            self._drain_writeback()
            self._process_fill()
            self._advance_pipeline()
            self._drain_invq()
        return self._drain_oq()

    def in_flight(self) -> int:
        count = self.iq_count.value + self.oq_count.value
        for stage in range(1, 5):
            count += self._entry_valid(f"p{stage}", 0)
        for i in range(MB_ENTRIES):
            count += self._entry_valid("mb", i)
        for i in range(FQ_ENTRIES):
            count += bool(self.fq_valid.read(i))
        for i in range(WBB_ENTRIES):
            count += bool(self.wbb_valid.read(i))
        for i in range(INVQ_ENTRIES):
            count += bool(self.invq_valid.read(i))
        count += bool(self.mcu_req_valid.value)
        return count

    # ------------------------------------------------------------------
    # Datapath stages
    # ------------------------------------------------------------------
    def _drain_writeback(self) -> None:
        for i in range(WBB_ENTRIES):
            if self.wbb_valid.read(i):
                data_int = self.wbb_data.read(i)
                words = tuple(
                    (data_int >> (64 * w)) & _WORD_MASK for w in range(WORDS_PER_LINE)
                )
                self.send_mcu(
                    McuRequest(
                        McuOp.WRITE, self.wbb_addr.read(i), words, self.bank, 0
                    )
                )
                self.wbb_valid.write(i, 0)
                return  # one writeback per cycle

    def _alloc_wbb(self, line_addr: int, data_int: int) -> bool:
        for i in range(WBB_ENTRIES):
            if not self.wbb_valid.read(i):
                self.wbb_valid.write(i, 1)
                self.wbb_addr.write(i, line_addr)
                self.wbb_data.write(i, data_int)
                return True
        return False

    def _process_fill(self) -> None:
        if self.oq_count.value > OQ_ENTRIES - 4:
            return  # ensure completion CPX/INVs can always be queued
        slot = None
        for i in range(FQ_ENTRIES):
            if self.fq_valid.read(i):
                slot = i
                break
        if slot is None:
            return
        fill_addr = self.fq_addr.read(slot)
        # find the miss-buffer entry this fill answers
        mb_idx = None
        for i in range(MB_ENTRIES):
            if self._entry_valid("mb", i):
                mb_addr = self._registers["mb_addr"].read(i)
                if self.amap.line_addr(mb_addr) == fill_addr:
                    mb_idx = i
                    break
        if mb_idx is None:
            # orphaned fill (e.g. corrupted MB address): drop it
            self.fq_valid.write(slot, 0)
            self.fill_credits.write(min(FQ_ENTRIES, self.fill_credits.value + 1))
            self.protocol_errors += 1
            return
        # choose victim
        set_idx = self.amap.set_of(fill_addr)
        victim_way = None
        for way in range(self.ways):
            if not (self.state_sram.read(self._line_index(set_idx, way)) & 1):
                victim_way = way
                break
        rotated = False
        if victim_way is None:
            victim_way = self.victim_sram.read(set_idx) % self.ways
            rotated = True
        li = self._line_index(set_idx, victim_way)
        state = self.state_sram.read(li)
        if state & 1:
            victim_addr = self.amap.rebuild_addr(
                self.tag_sram.read(li), set_idx, self.bank
            )
            if state & 2:  # dirty: needs writeback
                if not self._alloc_wbb(victim_addr, self.data_sram.read(li)):
                    return  # WBB full; retry next cycle (pointer untouched)
            self._send_invs(li, victim_addr)
            self.perf_evictions.write(self.perf_evictions.value + 1)
        if rotated and not self.write_disable:
            self.victim_sram.write(set_idx, (victim_way + 1) % self.ways)
        # install the line
        if not self.write_disable:
            self.tag_sram.write(li, self.amap.tag_of(fill_addr))
            self.state_sram.write(li, 1)
            self.data_sram.write(li, self.fq_data.read(slot))
            self.dir_sram.write(li, 0)
        self.fq_valid.write(slot, 0)
        self.fill_credits.write(min(FQ_ENTRIES, self.fill_credits.value + 1))
        self.perf_fills.write(self.perf_fills.value + 1)
        # complete the miss-buffer operation
        pkt = self._entry_read("mb", mb_idx)
        self._execute_op(pkt, li, is_fill_completion=True, mb_idx=mb_idx)

    def _advance_pipeline(self) -> None:
        # execute stage (P4)
        if self._entry_valid("p4", 0):
            pkt = self._entry_read("p4", 0)
            if self._dependency_blocked(pkt.addr):
                return  # whole pipeline stalls behind the dependency
            loc = self._lookup(pkt.addr)
            if loc is not None:
                li = self._line_index(*loc)
                self.perf_hits.write(self.perf_hits.value + 1)
                if not self._execute_op(pkt, li, is_fill_completion=False):
                    return  # OQ back-pressure: retry next cycle
                self._entry_invalidate("p4", 0)
            else:
                if not self._start_miss(pkt):
                    return  # MB/credit back-pressure
                self._entry_invalidate("p4", 0)
            self.dbg_last_addr.write(pkt.addr)
        # shift P3->P4, P2->P3, P1->P2
        for dst, src in (("p4", "p3"), ("p3", "p2"), ("p2", "p1")):
            if not self._entry_valid(dst, 0) and self._entry_valid(src, 0):
                self._entry_write(dst, 0, self._entry_read(src, 0))
                self._entry_invalidate(src, 0)
        # IQ head -> P1
        if not self._entry_valid("p1", 0) and self.iq_count.value > 0:
            head = self.iq_head.value % IQ_ENTRIES
            if self._entry_valid("iq", head):
                self._entry_write("p1", 0, self._entry_read("iq", head))
            else:
                # valid bit flipped away: the request is lost
                self.protocol_errors += 1
            self._entry_invalidate("iq", head)
            self.iq_head.write((self.iq_head.value + 1) % IQ_ENTRIES)
            self.iq_count.write(self.iq_count.value - 1)

    def _dependency_blocked(self, addr: int) -> bool:
        """A request whose line has an outstanding miss, or whose line is
        sitting in the writeback buffer, must wait (WBB snooping prevents
        a fill read overtaking the victim's writeback)."""
        line = self.amap.line_addr(addr)
        for i in range(MB_ENTRIES):
            if self._entry_valid("mb", i):
                if self.amap.line_addr(self._registers["mb_addr"].read(i)) == line:
                    return True
        for i in range(WBB_ENTRIES):
            if self.wbb_valid.read(i) and self.wbb_addr.read(i) == line:
                return True
        return False

    def _start_miss(self, pkt: PcxPacket) -> bool:
        if self.fill_credits.value == 0:
            return False
        if pkt.ptype is PcxType.STORE and self.oq_count.value >= OQ_ENTRIES:
            return False  # the immediate store ack must not be dropped
        mb_idx = None
        for i in range(MB_ENTRIES):
            if not self._entry_valid("mb", i):
                mb_idx = i
                break
        if mb_idx is None:
            return False
        self.perf_misses.write(self.perf_misses.value + 1)
        self._entry_write("mb", mb_idx, pkt)
        self.mb_state.write(mb_idx, 1)  # waiting for fill
        self.fill_credits.write(self.fill_credits.value - 1)
        # stage and send the MCU read
        self.mcu_req_valid.write(1)
        self.mcu_req_op.write(McuOp.READ)
        self.mcu_req_addr.write(self.amap.line_addr(pkt.addr))
        tag = self.mb_next_tag.value
        self.mb_next_tag.write((tag + 1) & 0xFFFF)
        self.mcu_req_tag.write(tag)
        self.send_mcu(
            McuRequest(
                McuOp.READ, self.mcu_req_addr.value, None, self.bank, tag
            )
        )
        self.mcu_req_valid.write(0)
        # a store miss acknowledges the core immediately; the line fill
        # continues in the miss buffer after the return packet
        if pkt.ptype is PcxType.STORE:
            self._emit_cpx(
                CpxPacket(
                    CpxType.STORE_ACK, pkt.core, pkt.thread, pkt.addr, 0, pkt.reqid
                )
            )
        return True

    def _execute_op(
        self,
        pkt: PcxPacket,
        li: int,
        is_fill_completion: bool,
        mb_idx: "int | None" = None,
    ) -> bool:
        """Perform the architected operation on resident line ``li``.

        Returns False if output back-pressure prevents completion (only
        possible for the hit path; fill completions always finish).
        """
        word = self.amap.word_in_line(pkt.addr)
        line_addr = self.amap.line_addr(pkt.addr)
        if pkt.ptype in (PcxType.LOAD, PcxType.IFETCH):
            value = self._read_word(li, word)
            ctype = (
                CpxType.LOAD_RET if pkt.ptype is PcxType.LOAD else CpxType.IFETCH_RET
            )
            reply = CpxPacket(ctype, pkt.core, pkt.thread, pkt.addr, value, pkt.reqid)
            if not self._emit_cpx(reply):
                return False
            if not self.write_disable:
                self.dir_sram.write(li, self.dir_sram.read(li) | (1 << pkt.core))
            self.exec_log.append((pkt.reqid, reply))
        elif pkt.ptype is PcxType.STORE:
            reply = None
            if not is_fill_completion:
                reply = CpxPacket(
                    CpxType.STORE_ACK, pkt.core, pkt.thread, pkt.addr, 0, pkt.reqid
                )
                if not self._emit_cpx(reply):
                    return False
            self._send_invs(li, line_addr, keep_core=pkt.core)
            self._write_word(li, word, pkt.data)
            if not self.write_disable:
                self.state_sram.write(li, self.state_sram.read(li) | 2)
                self.dir_sram.write(li, 1 << pkt.core)
            self.exec_log.append((pkt.reqid, reply))
            if is_fill_completion:
                # post-return-packet store-miss completion (QRR monitors this)
                self.store_miss_done_valid.write(1)
                self.store_miss_done_reqid.write(pkt.reqid)
                self.store_miss_completions.append(pkt.reqid)
        elif pkt.ptype in (PcxType.ATOMIC_TAS, PcxType.ATOMIC_ADD):
            old = self._read_word(li, word)
            new = 1 if pkt.ptype is PcxType.ATOMIC_TAS else (old + pkt.data)
            reply = CpxPacket(
                CpxType.ATOMIC_RET, pkt.core, pkt.thread, pkt.addr, old, pkt.reqid
            )
            if not self._emit_cpx(reply):
                return False
            if not (pkt.ptype is PcxType.ATOMIC_ADD and pkt.data == 0):
                # (fetch-and-add of zero is a pure atomic read)
                self._send_invs(li, line_addr)
                self._write_word(li, word, new)
                if not self.write_disable:
                    self.state_sram.write(li, self.state_sram.read(li) | 2)
                    self.dir_sram.write(li, 0)
            self.exec_log.append((pkt.reqid, reply))
        else:
            # malformed packet type: protocol error, request dropped
            self.protocol_errors += 1
        if mb_idx is not None:
            self._entry_invalidate("mb", mb_idx)
            self.mb_state.write(mb_idx, 0)
        return True

    def _drain_invq(self) -> None:
        sent = 0
        for i in range(INVQ_ENTRIES):
            if sent >= 2:
                break
            if self.invq_valid.read(i):
                if self._emit_cpx(
                    CpxPacket(
                        CpxType.INVALIDATE,
                        self.invq_core.read(i),
                        0,
                        self.invq_addr.read(i),
                        0,
                        0,
                    )
                ):
                    self.invq_valid.write(i, 0)
                    sent += 1

    def _drain_oq(self) -> list[CpxPacket]:
        out: list[CpxPacket] = []
        for _ in range(2):  # return bandwidth: 2 packets/cycle
            if self.oq_count.value == 0:
                break
            head = self.oq_head.value % OQ_ENTRIES
            if self._entry_valid("oq", head):
                regs = self._registers
                out.append(
                    CpxPacket.unpack_fields(
                        regs["oq_ptype"].read(head),
                        regs["oq_core"].read(head),
                        regs["oq_thread"].read(head),
                        regs["oq_addr"].read(head),
                        regs["oq_data"].read(head),
                        regs["oq_reqid"].read(head),
                    )
                )
            else:
                self.protocol_errors += 1  # packet lost to a valid-bit flip
            self._entry_invalidate("oq", head)
            self.oq_head.write((self.oq_head.value + 1) % OQ_ENTRIES)
            self.oq_count.write(self.oq_count.value - 1)
        return out

    def dma_update(self, addr: int, value: int) -> None:
        """Coherent device write: patch the resident copy and any
        in-flight fill data for the same line (see the high-level model's
        docstring for why both are required)."""
        word = self.amap.word_in_line(addr)
        loc = self._lookup(addr)
        if loc is not None:
            self._write_word(self._line_index(*loc), word, value)
        line_addr = self.amap.line_addr(addr)
        for i in range(FQ_ENTRIES):
            if self.fq_valid.read(i) and self.fq_addr.read(i) == line_addr:
                data = self.fq_data.read(i)
                shift = 64 * word
                data = (data & ~(_WORD_MASK << shift)) | (
                    (value & _WORD_MASK) << shift
                )
                self.fq_data.write(i, data)

    # ------------------------------------------------------------------
    # State transfer (co-simulation entry / exit)
    # ------------------------------------------------------------------
    def load_state(self, state: L2BankState) -> None:
        """Write the high-level bank state into the architected SRAMs."""
        for set_idx in range(self.sets):
            for way in range(self.ways):
                li = self._line_index(set_idx, way)
                line = state.lines[set_idx][way]
                self.tag_sram.write(li, line.tag)
                self.state_sram.write(
                    li, (1 if line.valid else 0) | (2 if line.dirty else 0)
                )
                data_int = 0
                for w, word in enumerate(line.data):
                    data_int |= (word & _WORD_MASK) << (64 * w)
                self.data_sram.write(li, data_int)
                self.dir_sram.write(li, line.directory)
            self.victim_sram.write(set_idx, state.victim_ptr[set_idx] % 8)

    def extract_state(self, state: L2BankState) -> None:
        """Read the architected SRAMs back into the high-level state.

        Carries any corruption the injected error left in the arrays --
        the accelerated mode then simulates its downstream effects
        (paper Fig. 2, step 10).
        """
        for set_idx in range(self.sets):
            for way in range(self.ways):
                li = self._line_index(set_idx, way)
                line = state.lines[set_idx][way]
                bits = self.state_sram.read(li)
                line.valid = bool(bits & 1)
                line.dirty = bool(bits & 2)
                line.tag = self.tag_sram.read(li)
                data_int = self.data_sram.read(li)
                line.data = [
                    (data_int >> (64 * w)) & _WORD_MASK for w in range(WORDS_PER_LINE)
                ]
                line.directory = self.dir_sram.read(li)
            state.victim_ptr[set_idx] = self.victim_sram.read(set_idx) % self.ways

    # ------------------------------------------------------------------
    # Mismatch benignity (co-simulation exit condition 2)
    # ------------------------------------------------------------------
    _QUEUE_PREFIXES = ("iq", "oq", "mb", "p1", "p2", "p3", "p4")

    def is_mismatch_benign(self, mismatch: Mismatch) -> bool:
        if super().is_mismatch_benign(mismatch):
            return True
        if mismatch.kind is not MismatchKind.FLIP_FLOP:
            return False
        name = mismatch.name
        for prefix in self._QUEUE_PREFIXES:
            if name.startswith(prefix + "_") and not name.endswith("_valid"):
                # corrupted field of an entry whose valid flag is clear
                if not self._entry_valid(prefix, mismatch.entry):
                    return True
        if name.startswith("fq_") and name != "fq_valid":
            return not self.fq_valid.read(mismatch.entry)
        if name.startswith("wbb_") and name != "wbb_valid":
            return not self.wbb_valid.read(mismatch.entry)
        if name.startswith("invq_") and name != "invq_valid":
            return not self.invq_valid.read(mismatch.entry)
        if name.startswith("mcu_req_") and name != "mcu_req_valid":
            return not self.mcu_req_valid.value
        return False
