"""Flip-flop-level RTL model of the crossbar interconnect (CCX).

The CCX moves PCX packets from eight core ports to eight L2-bank ports
and CPX packets back.  Per direction it has one 8-entry input FIFO per
source port, a round-robin arbiter per destination port, and an output
staging register per destination -- one packet per destination per cycle.

Routing is *computed from the latched address field* (PCX) or core field
(CPX), so a flipped address bit misroutes the packet to the wrong bank --
the request reaches a bank that does not serve that address range and is
answered with data for the aliased line, or the reply reaches the wrong
core and is dropped there.  Both reproduce real crossbar failure modes.

The crossbar has no high-level uncore state (Table 1 footnote: its state
is reconstructed in co-simulation mode), no ECC-protected flip-flops and
only 340 inactive ones (Table 4: 41,181 of 41,521 flip-flops are
injection targets).
"""

from __future__ import annotations

from repro.rtl.compare import Mismatch, MismatchKind
from repro.rtl.module import RtlModule
from repro.rtl.registers import FlipFlopClass
from repro.soc.address import AddressMap
from repro.soc.packets import CpxPacket, PcxPacket

PORTS = 8
FIFO_DEPTH = 8

#: Table 3 / Table 4 totals.
TOTAL_FFS = 41_521
TARGET_FFS = 41_181
PROTECTED_FFS = 0
INACTIVE_FFS = 340

_FIELDS = dict(valid=1, ptype=3, core=3, thread=3, addr=40, data=64, reqid=16)


class CcxRtl(RtlModule):
    """RTL model of the crossbar (single instance on the chip)."""

    def __init__(self, amap: AddressMap) -> None:
        super().__init__("ccx")
        self.amap = amap
        for direction in ("pcx", "cpx"):
            for field, width in _FIELDS.items():
                self.reg_array(f"{direction}_fifo_{field}", PORTS * FIFO_DEPTH, width)
            self.reg_array(f"{direction}_head", PORTS, 3)
            self.reg_array(f"{direction}_tail", PORTS, 3)
            self.reg_array(f"{direction}_count", PORTS, 4)
            for field, width in _FIELDS.items():
                self.reg_array(f"{direction}_out_{field}", PORTS, width)
            self.reg_array(f"{direction}_rr", PORTS, 3)
        self.perf_pcx = self.reg("perf_pcx", 64, functional=False)
        self.perf_cpx = self.reg("perf_cpx", 64, functional=False)
        # inactive BIST chain (Table 4)
        self.reg_array("bist_scan_chain", 340, 1, ff_class=FlipFlopClass.INACTIVE)
        # steering configuration shadow / debug capture registers
        used = self.flip_flop_count_by_class()[FlipFlopClass.TARGET]
        remaining = TARGET_FFS - used
        if remaining <= 0:  # pragma: no cover
            raise AssertionError("CCX inventory exceeds Table 4 target count")
        width = 67
        entries, tail = divmod(remaining, width)
        self.reg_array("steer_debug_bank", entries, width, functional=False)
        if tail:
            self.reg("steer_debug_tail", tail, functional=False)
        counts = self.flip_flop_count_by_class()
        assert counts[FlipFlopClass.TARGET] == TARGET_FFS
        assert counts[FlipFlopClass.INACTIVE] == INACTIVE_FFS
        assert self.flip_flop_count() == TOTAL_FFS

        self.protocol_errors = 0
        self.write_disable = False
        #: packets that overflowed an input FIFO (dropped)
        self.dropped = 0

    # ------------------------------------------------------------------
    # FIFO helpers
    # ------------------------------------------------------------------
    def _push(self, direction: str, port: int, fields: tuple) -> bool:
        regs = self._registers
        count = regs[f"{direction}_count"].read(port)
        if count >= FIFO_DEPTH:
            self.dropped += 1
            return False
        tail = regs[f"{direction}_tail"].read(port) % FIFO_DEPTH
        slot = port * FIFO_DEPTH + tail
        ptype, core, thread, addr, data, reqid = fields
        regs[f"{direction}_fifo_valid"].write(slot, 1)
        regs[f"{direction}_fifo_ptype"].write(slot, ptype)
        regs[f"{direction}_fifo_core"].write(slot, core)
        regs[f"{direction}_fifo_thread"].write(slot, thread)
        regs[f"{direction}_fifo_addr"].write(slot, addr)
        regs[f"{direction}_fifo_data"].write(slot, data)
        regs[f"{direction}_fifo_reqid"].write(slot, reqid)
        regs[f"{direction}_tail"].write(port, (tail + 1) % FIFO_DEPTH)
        regs[f"{direction}_count"].write(port, count + 1)
        return True

    def _head_fields(self, direction: str, port: int) -> "tuple | None":
        regs = self._registers
        if regs[f"{direction}_count"].read(port) == 0:
            return None
        head = regs[f"{direction}_head"].read(port) % FIFO_DEPTH
        slot = port * FIFO_DEPTH + head
        if not regs[f"{direction}_fifo_valid"].read(slot):
            # request lost to a valid-bit flip; consume the slot
            self._pop(direction, port)
            self.protocol_errors += 1
            return None
        return (
            regs[f"{direction}_fifo_ptype"].read(slot),
            regs[f"{direction}_fifo_core"].read(slot),
            regs[f"{direction}_fifo_thread"].read(slot),
            regs[f"{direction}_fifo_addr"].read(slot),
            regs[f"{direction}_fifo_data"].read(slot),
            regs[f"{direction}_fifo_reqid"].read(slot),
        )

    def _pop(self, direction: str, port: int) -> None:
        regs = self._registers
        head = regs[f"{direction}_head"].read(port) % FIFO_DEPTH
        regs[f"{direction}_fifo_valid"].write(port * FIFO_DEPTH + head, 0)
        regs[f"{direction}_head"].write(port, (head + 1) % FIFO_DEPTH)
        regs[f"{direction}_count"].write(
            port, max(0, regs[f"{direction}_count"].read(port) - 1)
        )

    # ------------------------------------------------------------------
    # Machine-facing interface (same shape as HighLevelCcx)
    # ------------------------------------------------------------------
    def send_pcx(self, bank: int, pkt: PcxPacket, cycle: int) -> None:
        """Core-side ingress; the source port is the issuing core."""
        self._push("pcx", pkt.core & 7, pkt.pack_fields())

    def send_cpx(self, pkt: CpxPacket, cycle: int, src: int = 0) -> None:
        """Bank-side ingress; the source port is the sending L2 bank."""
        self._push("cpx", src & 7, pkt.pack_fields())

    def tick(self, cycle: int) -> None:
        """Arbitrate: move one FIFO head per free destination port."""
        if self.write_disable:
            return
        regs = self._registers
        for direction, dest_of in (
            ("pcx", lambda f: self.amap.bank_of(f[3]) & 7),
            ("cpx", lambda f: f[1] & 7),
        ):
            out_valid = regs[f"{direction}_out_valid"]
            rr = regs[f"{direction}_rr"]
            for dest in range(PORTS):
                if out_valid.read(dest):
                    continue  # stage still occupied (not yet delivered)
                start = rr.read(dest)
                for offset in range(PORTS):
                    src = (start + offset) % PORTS
                    fields = self._head_fields(direction, src)
                    if fields is None or dest_of(fields) != dest:
                        continue
                    ptype, core, thread, addr, data, reqid = fields
                    out_valid.write(dest, 1)
                    regs[f"{direction}_out_ptype"].write(dest, ptype)
                    regs[f"{direction}_out_core"].write(dest, core)
                    regs[f"{direction}_out_thread"].write(dest, thread)
                    regs[f"{direction}_out_addr"].write(dest, addr)
                    regs[f"{direction}_out_data"].write(dest, data)
                    regs[f"{direction}_out_reqid"].write(dest, reqid)
                    self._pop(direction, src)
                    rr.write(dest, (src + 1) % PORTS)
                    break

    def deliver_pcx(self, cycle: int) -> list[tuple[int, PcxPacket]]:
        """Drain the bank-side output stages: (bank, packet)."""
        regs = self._registers
        out = []
        for dest in range(PORTS):
            if regs["pcx_out_valid"].read(dest):
                pkt = PcxPacket.unpack_fields(
                    regs["pcx_out_ptype"].read(dest),
                    regs["pcx_out_core"].read(dest),
                    regs["pcx_out_thread"].read(dest),
                    regs["pcx_out_addr"].read(dest),
                    regs["pcx_out_data"].read(dest),
                    regs["pcx_out_reqid"].read(dest),
                )
                out.append((dest, pkt))
                regs["pcx_out_valid"].write(dest, 0)
                self.perf_pcx.write(self.perf_pcx.value + 1)
        return out

    def deliver_cpx(self, cycle: int) -> list[CpxPacket]:
        """Drain the core-side output stages."""
        regs = self._registers
        out = []
        for dest in range(PORTS):
            if regs["cpx_out_valid"].read(dest):
                out.append(
                    CpxPacket.unpack_fields(
                        regs["cpx_out_ptype"].read(dest),
                        regs["cpx_out_core"].read(dest),
                        regs["cpx_out_thread"].read(dest),
                        regs["cpx_out_addr"].read(dest),
                        regs["cpx_out_data"].read(dest),
                        regs["cpx_out_reqid"].read(dest),
                    )
                )
                regs["cpx_out_valid"].write(dest, 0)
                self.perf_cpx.write(self.perf_cpx.value + 1)
        return out

    def in_flight(self) -> int:
        regs = self._registers
        count = 0
        for direction in ("pcx", "cpx"):
            for port in range(PORTS):
                count += regs[f"{direction}_count"].read(port)
                count += regs[f"{direction}_out_valid"].read(port)
        return count

    # ------------------------------------------------------------------
    # Mismatch benignity
    # ------------------------------------------------------------------
    def is_mismatch_benign(self, mismatch: Mismatch) -> bool:
        if super().is_mismatch_benign(mismatch):
            return True
        if mismatch.kind is not MismatchKind.FLIP_FLOP:
            return False
        name = mismatch.name
        regs = self._registers
        for direction in ("pcx", "cpx"):
            if name.startswith(f"{direction}_fifo_") and not name.endswith("_valid"):
                return not regs[f"{direction}_fifo_valid"].read(mismatch.entry)
            if name.startswith(f"{direction}_out_") and not name.endswith("_valid"):
                return not regs[f"{direction}_out_valid"].read(mismatch.entry)
        return False
