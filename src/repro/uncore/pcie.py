"""Flip-flop-level RTL model of the PCI Express I/O controller.

The paper uses an industrial PCIe gen-3 controller implementation
(footnote 7) and models the situation where PCIe transfers the
application's input data file.  This model implements that DMA input
path at flip-flop granularity:

* a DMA descriptor register set (destination address, length, progress),
* a two-stage word pipeline (fetch stage -> payload stage -> memory
  write), so in-flight data and addresses live in flip-flops for a
  couple of cycles,
* a 16-entry TLP replay buffer (retransmission storage, rotating),
* sequence counters and flow-control credit registers,
* LCRC/ECC-protected staging (Table 4: 5,539 protected flip-flops),
* the RX/TX transfer-buffer SRAMs of Table 1 (8KB / 4KB).

Failure modes emerge naturally: a flipped destination or progress bit
redirects or repeats part of the stream (silent data corruption -> OMM
or trap); a flipped length or active bit truncates the transfer or
prevents the completion flag from ever being written (the application
polls forever -> Hang); payload-stage flips corrupt input data values
(the paper's explanation for the PCIe's high OMM rate, Sec. 3.3).

Inventory matches Table 3 / Table 4: 29,022 flip-flops, 23,483 targets,
5,539 protected, 0 inactive.
"""

from __future__ import annotations

from repro.rtl.compare import Mismatch, MismatchKind
from repro.rtl.module import RtlModule
from repro.rtl.registers import FlipFlopClass

#: Table 3 / Table 4 totals.
TOTAL_FFS = 29_022
TARGET_FFS = 23_483
PROTECTED_FFS = 5_539
INACTIVE_FFS = 0

REPLAY_ENTRIES = 16
DMA_DONE_FLAG = 1

_WORD_MASK = (1 << 64) - 1


class PcieRtl(RtlModule):
    """RTL model of the PCIe controller's DMA input engine."""

    def __init__(self, port) -> None:
        """``port`` provides ``write_word(addr, value)`` (coherent path)."""
        super().__init__("pcie")
        self.port = port

        # ---- Table 1 transfer buffers (SRAM; high-level state) ----------
        self.rx_buffer = self.sram_array("rx_buffer", 1024, 64)  # 8KB
        self.tx_buffer = self.sram_array("tx_buffer", 512, 64)  # 4KB

        # ---- DMA descriptor ----------------------------------------------
        self.dma_active = self.reg("dma_active", 1)
        self.dma_dest = self.reg("dma_dest", 40)
        self.dma_len = self.reg("dma_len", 32)
        self.dma_progress = self.reg("dma_progress", 32)
        self.dma_status_addr = self.reg("dma_status_addr", 40)

        # ---- word pipeline: fetch stage -> payload stage --------------------
        self.fetch_valid = self.reg("fetch_valid", 1)
        self.fetch_data = self.reg("fetch_data", 64)
        self.fetch_idx = self.reg("fetch_idx", 32)
        self.pay_valid = self.reg("pay_valid", 1)
        self.pay_data = self.reg("pay_data", 64)
        self.pay_addr = self.reg("pay_addr", 40)

        # ---- TLP replay buffer (retransmission storage) -----------------------
        # Slots hold TLPs until the link partner ACKs them; with the
        # modelled error-free link every slot is already acknowledged
        # ("dead"), so corruption there can never be replayed onto the
        # link -- mismatches are benign (functional=False).
        self.replay_data = self.reg_array(
            "replay_buffer", REPLAY_ENTRIES, 640, functional=False
        )
        self.replay_ptr = self.reg("replay_ptr", 4)

        # ---- link-layer counters / credits ----------------------------------------
        self.seq_tx = self.reg("seq_tx", 12)
        self.seq_rx = self.reg("seq_rx", 12)
        self.reg("fc_credits_p", 12, reset_value=64)
        self.reg("fc_credits_np", 12, reset_value=32)
        self.reg("fc_credits_cpl", 12, reset_value=64)

        # ---- config registers (hardened under a QRR-style scheme) -------------------
        self.reg("cfg_bar0", 64, reset_value=0x1000, config=True)
        self.reg("cfg_link_ctl", 48, reset_value=0x3, config=True)
        self.reg("cfg_max_payload", 16, reset_value=256, config=True)

        # ---- lane / PHY status and performance (non-functional) -----------------------
        self.reg_array("phy_lane_status", 16, 40, functional=False)
        self.perf_tlps = self.reg("perf_tlps", 64, functional=False)
        self.perf_bytes = self.reg("perf_bytes", 64, functional=False)

        # ---- LCRC / ECC protected staging (Table 4: excluded) -----------------------------
        self.reg_array("lcrc_replay_stage", 8, 640, ff_class=FlipFlopClass.PROTECTED)
        self.reg("lcrc_pipe", 419, ff_class=FlipFlopClass.PROTECTED)

        # ---- balance bank ---------------------------------------------------------------------
        used = self.flip_flop_count_by_class()[FlipFlopClass.TARGET]
        remaining = TARGET_FFS - used
        if remaining <= 0:  # pragma: no cover
            raise AssertionError("PCIe inventory exceeds Table 4 target count")
        width = 63
        entries, tail = divmod(remaining, width)
        self.reg_array("tlp_tracking_bank", entries, width, functional=False)
        if tail:
            self.reg("tlp_tracking_tail", tail, functional=False)

        counts = self.flip_flop_count_by_class()
        assert counts[FlipFlopClass.TARGET] == TARGET_FFS
        assert counts[FlipFlopClass.PROTECTED] == PROTECTED_FFS
        assert counts[FlipFlopClass.INACTIVE] == INACTIVE_FFS
        assert self.flip_flop_count() == TOTAL_FFS

        #: host-side source data (outside the chip; not injectable state)
        self.file_words: list[int] = []
        self.start_cycle = 0
        self.finish_cycle: "int | None" = None
        self.write_disable = False

    # ------------------------------------------------------------------
    # HighLevelPcieDma-compatible interface
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return bool(self.dma_active.value)

    def begin_transfer(
        self, file_words: list[int], dest_base: int, status_addr: int, cycle: int
    ) -> None:
        if dest_base & 7 or status_addr & 7:
            raise ValueError("DMA addresses must be word aligned")
        self.file_words = list(file_words)
        self.dma_dest.write(dest_base)
        self.dma_len.write(len(file_words))
        self.dma_progress.write(0)
        self.dma_status_addr.write(status_addr)
        self.dma_active.write(1)
        self.fetch_valid.write(0)
        self.pay_valid.write(0)
        self.start_cycle = cycle
        self.finish_cycle = None

    def tick(self, cycle: int) -> None:
        if self.write_disable:
            return
        # stage 3: payload stage writes to memory
        if self.pay_valid.value:
            if not self.write_disable:
                self.port.write_word(self.pay_addr.value, self.pay_data.value)
                # mirror into the RX transfer buffer ring (Table 1 state)
                self.rx_buffer.write(
                    (self.pay_addr.value >> 3) & 1023, self.pay_data.value
                )
                # rotate the TLP into the replay buffer
                slot = self.replay_ptr.value % REPLAY_ENTRIES
                tlp = (self.pay_addr.value << 576) | self.pay_data.value
                self.replay_data.write(slot, tlp & ((1 << 640) - 1))
                self.lcrc_replay_stage_mirror(slot, tlp)
                self.replay_ptr.write((self.replay_ptr.value + 1) % REPLAY_ENTRIES)
                self.seq_tx.write((self.seq_tx.value + 1) & 0xFFF)
                self.perf_tlps.write(self.perf_tlps.value + 1)
                self.perf_bytes.write(self.perf_bytes.value + 8)
            self.pay_valid.write(0)
        # stage 2: fetch stage computes the destination address
        if self.fetch_valid.value and not self.pay_valid.value:
            idx = self.fetch_idx.value
            self.pay_addr.write((self.dma_dest.value + 8 * idx) & ((1 << 40) - 1))
            self.pay_data.write(self.fetch_data.value)
            self.pay_valid.write(1)
            self.fetch_valid.write(0)
        # stage 1: fetch the next host word
        if self.dma_active.value and not self.fetch_valid.value:
            progress = self.dma_progress.value
            if progress >= self.dma_len.value:
                # transfer complete (only once the pipeline has drained)
                if not self.pay_valid.value:
                    self.port.write_word(self.dma_status_addr.value, DMA_DONE_FLAG)
                    self.dma_active.write(0)
                    self.finish_cycle = cycle
            else:
                # reading beyond the host buffer returns zeros (a flipped
                # length register streams garbage, it does not crash)
                word = (
                    self.file_words[progress]
                    if progress < len(self.file_words)
                    else 0
                )
                self.fetch_data.write(word)
                self.fetch_idx.write(progress)
                self.fetch_valid.write(1)
                self.dma_progress.write((progress + 1) & 0xFFFF_FFFF)

    def lcrc_replay_stage_mirror(self, slot: int, tlp: int) -> None:
        """Mirror the TLP into the CRC-protected staging (protected FFs)."""
        stage = self._registers["lcrc_replay_stage"]
        stage.write(slot % 8, tlp & ((1 << 640) - 1))

    def in_flight(self) -> int:
        remaining = 0
        if self.dma_active.value:
            remaining = max(0, self.dma_len.value - self.dma_progress.value)
        return remaining + self.fetch_valid.value + self.pay_valid.value

    def transfer_window(self) -> tuple[int, int]:
        if self.finish_cycle is None:
            raise ValueError("transfer has not completed")
        return (self.start_cycle, self.finish_cycle)

    # ------------------------------------------------------------------
    # Mismatch benignity
    # ------------------------------------------------------------------
    def is_mismatch_benign(self, mismatch: Mismatch) -> bool:
        if super().is_mismatch_benign(mismatch):
            return True
        if mismatch.kind is not MismatchKind.FLIP_FLOP:
            return False
        name = mismatch.name
        if name in ("fetch_data", "fetch_idx"):
            return not self.fetch_valid.value
        if name in ("pay_data", "pay_addr"):
            return not self.pay_valid.value
        return False
