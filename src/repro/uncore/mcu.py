"""Flip-flop-level RTL model of one DRAM controller (MCU).

Microarchitecture:

* a 16-entry request queue (RQ) fed by the two L2 banks the MCU serves,
* eight DRAM-bank finite-state machines with open-row tracking and
  bank-busy timers (row hit: CAS latency; row miss:
  precharge+activate+CAS),
* a 4-entry write data buffer (WDB) holding writeback lines until their
  bank op completes (reads snoop it for same-line ordering),
* a 4-entry read return queue (RRQ) toward the L2 banks,
* a refresh counter that periodically steals a bank cycle,
* ECC-protected data-path staging (excluded per Table 4),
* BIST/redundancy chains (inactive per Table 4).

Inventory matches Table 3 / Table 4: 18,068 flip-flops per instance;
12,007 targets, 4,782 protected, 1,279 inactive.  The architected state
is the DRAM contents themselves (Table 1), which live outside the module
in :class:`repro.mem.dram.Dram`.
"""

from __future__ import annotations

from repro.rtl.compare import Mismatch, MismatchKind
from repro.rtl.module import RtlModule
from repro.rtl.registers import FlipFlopClass
from repro.soc.address import WORDS_PER_LINE
from repro.soc.packets import McuOp, McuReply, McuRequest

RQ_ENTRIES = 16
WDB_ENTRIES = 4
RRQ_ENTRIES = 4
DRAM_BANKS = 8

#: row-hit CAS latency / row-miss (PRE+ACT+CAS) latency, cycles
CAS_LATENCY = 26
ROW_MISS_LATENCY = 58
#: refresh interval and duration
REFRESH_INTERVAL = 2048
REFRESH_CYCLES = 12

#: Table 3 / Table 4 totals for one MCU instance.
TOTAL_FFS = 18_068
TARGET_FFS = 12_007
PROTECTED_FFS = 4_782
INACTIVE_FFS = 1_279

_WORD_MASK = (1 << 64) - 1


class McuRtl(RtlModule):
    """RTL model of one MCU instance."""

    def __init__(self, mcu_idx: int, dram) -> None:
        super().__init__(f"mcu{mcu_idx}")
        self.mcu_idx = mcu_idx
        self.dram = dram

        # ---- request queue ------------------------------------------------
        self.rq_valid = self.reg_array("rq_valid", RQ_ENTRIES, 1)
        self.rq_op = self.reg_array("rq_op", RQ_ENTRIES, 1)
        self.rq_addr = self.reg_array("rq_addr", RQ_ENTRIES, 40)
        self.rq_tag = self.reg_array("rq_tag", RQ_ENTRIES, 16)
        self.rq_src = self.reg_array("rq_src", RQ_ENTRIES, 3)
        self.rq_wdb_slot = self.reg_array("rq_wdb_slot", RQ_ENTRIES, 2)
        self.rq_head = self.reg("rq_head", 4)
        self.rq_tail = self.reg("rq_tail", 4)
        self.rq_count = self.reg("rq_count", 5)

        # ---- in-service registers (one op per DRAM bank) --------------------
        self.svc_valid = self.reg_array("svc_valid", DRAM_BANKS, 1)
        self.svc_op = self.reg_array("svc_op", DRAM_BANKS, 1)
        self.svc_addr = self.reg_array("svc_addr", DRAM_BANKS, 40)
        self.svc_tag = self.reg_array("svc_tag", DRAM_BANKS, 16)
        self.svc_src = self.reg_array("svc_src", DRAM_BANKS, 3)
        self.svc_wdb_slot = self.reg_array("svc_wdb_slot", DRAM_BANKS, 2)
        self.svc_timer = self.reg_array("svc_timer", DRAM_BANKS, 8)

        # ---- DRAM bank state -------------------------------------------------
        self.bank_open_row = self.reg_array("bank_open_row", DRAM_BANKS, 17)
        self.bank_row_valid = self.reg_array("bank_row_valid", DRAM_BANKS, 1)

        # ---- write data buffer -------------------------------------------------
        # Holds the only copy of dirty writeback data until the DRAM op
        # completes: ECC-protected (Table 4) and excluded from the QRR
        # reset domain, so recovery can re-issue pending writes.
        self.wdb_valid = self.reg_array(
            "wdb_valid", WDB_ENTRIES, 1, ff_class=FlipFlopClass.PROTECTED
        )
        self.wdb_addr = self.reg_array(
            "wdb_addr", WDB_ENTRIES, 40, ff_class=FlipFlopClass.PROTECTED
        )
        self.wdb_data = self.reg_array(
            "wdb_data", WDB_ENTRIES, 512, ff_class=FlipFlopClass.PROTECTED
        )

        # ---- read return queue ----------------------------------------------------
        self.rrq_valid = self.reg_array("rrq_valid", RRQ_ENTRIES, 1)
        self.rrq_addr = self.reg_array("rrq_addr", RRQ_ENTRIES, 40)
        self.rrq_data = self.reg_array("rrq_data", RRQ_ENTRIES, 512)
        self.rrq_tag = self.reg_array("rrq_tag", RRQ_ENTRIES, 16)
        self.rrq_src = self.reg_array("rrq_src", RRQ_ENTRIES, 3)

        # ---- refresh engine ---------------------------------------------------------
        self.refresh_ctr = self.reg("refresh_ctr", 12)
        self.refresh_busy = self.reg("refresh_busy", 5)

        # ---- config registers (hardened under QRR, Sec. 6.4 cat. 2) --------------------
        self.cfg_enable = self.reg("cfg_enable", 1, reset_value=1, config=True)
        self.reg("cfg_timing_params", 148, reset_value=0x1234, config=True)
        self.reg("cfg_addr_decode", 160, reset_value=0x77, config=True)

        # ---- timing-critical FFs (hardened under QRR, Sec. 6.4 cat. 1: 36 FFs) -----------
        self.phy_strobe_align = self.reg("phy_strobe_align", 36, timing_critical=True)

        # ---- performance counters ------------------------------------------------------
        self.perf_reads = self.reg("perf_reads", 64, functional=False)
        self.perf_writes = self.reg("perf_writes", 64, functional=False)
        self.perf_row_hits = self.reg("perf_row_hits", 64, functional=False)
        self.perf_refreshes = self.reg("perf_refreshes", 64, functional=False)

        # ---- ECC-protected data path (Table 4: excluded) -----------------------------------
        self.reg_array("ecc_rrq_stage", 2, 576, ff_class=FlipFlopClass.PROTECTED)
        used_prot = self.flip_flop_count_by_class()[FlipFlopClass.PROTECTED]
        self.reg(
            "ecc_syndrome_pipe",
            PROTECTED_FFS - used_prot,
            ff_class=FlipFlopClass.PROTECTED,
        )

        # ---- inactive BIST chains (Table 4: excluded) ----------------------------------------
        self.reg_array("bist_scan_chain", 1279, 1, ff_class=FlipFlopClass.INACTIVE)

        # ---- balance bank ------------------------------------------------------------------------
        used = self.flip_flop_count_by_class()[FlipFlopClass.TARGET]
        remaining = TARGET_FFS - used
        if remaining <= 0:  # pragma: no cover - inventory is static
            raise AssertionError("MCU inventory exceeds Table 4 target count")
        width = 59
        entries, tail = divmod(remaining, width)
        self.reg_array("calib_shadow_bank", entries, width, functional=False)
        if tail:
            self.reg("calib_shadow_tail", tail, functional=False)

        counts = self.flip_flop_count_by_class()
        assert counts[FlipFlopClass.TARGET] == TARGET_FFS
        assert counts[FlipFlopClass.PROTECTED] == PROTECTED_FFS
        assert counts[FlipFlopClass.INACTIVE] == INACTIVE_FFS
        assert self.flip_flop_count() == TOTAL_FFS

        #: replies produced this tick.
        self.replies: list[McuReply] = []
        self.protocol_errors = 0
        self.write_disable = False

    # ------------------------------------------------------------------
    # Server interface (same shape as HighLevelMcu)
    # ------------------------------------------------------------------
    def accept(self, req: McuRequest, cycle: int) -> bool:
        if self.write_disable:
            return False
        if self.rq_count.value >= RQ_ENTRIES:
            return False
        wdb_slot = 0
        if req.op is McuOp.WRITE:
            slot = None
            for i in range(WDB_ENTRIES):
                if not self.wdb_valid.read(i):
                    slot = i
                    break
            if slot is None:
                return False  # no write-data space
            data_int = 0
            for i, word in enumerate(req.data):
                data_int |= (word & _WORD_MASK) << (64 * i)
            self.wdb_valid.write(slot, 1)
            self.wdb_addr.write(slot, req.line_addr)
            self.wdb_data.write(slot, data_int)
            wdb_slot = slot
        tail = self.rq_tail.value % RQ_ENTRIES
        self.rq_valid.write(tail, 1)
        self.rq_op.write(tail, int(req.op))
        self.rq_addr.write(tail, req.line_addr)
        self.rq_tag.write(tail, req.tag)
        self.rq_src.write(tail, req.src_bank)
        self.rq_wdb_slot.write(tail, wdb_slot)
        self.rq_tail.write((self.rq_tail.value + 1) % RQ_ENTRIES)
        self.rq_count.write(self.rq_count.value + 1)
        return True

    def tick(self, cycle: int) -> list[McuReply]:
        self.replies = []
        if self.write_disable:
            return self.replies
        self._refresh_tick()
        self._complete_bank_ops()
        self._issue_from_queue()
        self._drain_rrq()
        # strobe-alignment tracking rotates continuously with the refresh
        # counter (timing-critical shadow state, re-derived every cycle)
        self.phy_strobe_align.write(
            ((self.phy_strobe_align.value << 1) | (self.refresh_ctr.value & 1))
            & ((1 << 36) - 1)
        )
        return self.replies

    def in_flight(self) -> int:
        count = self.rq_count.value
        for i in range(DRAM_BANKS):
            count += bool(self.svc_valid.read(i))
        for i in range(RRQ_ENTRIES):
            count += bool(self.rrq_valid.read(i))
        for i in range(WDB_ENTRIES):
            count += bool(self.wdb_valid.read(i))
        return count

    #: callback set by the owner to deliver replies (adapter wiring)
    send_reply = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _dram_bank_of(addr: int) -> int:
        return (addr >> 9) & (DRAM_BANKS - 1)

    @staticmethod
    def _row_of(addr: int) -> int:
        return (addr >> 12) & 0x1FFFF

    def _refresh_tick(self) -> None:
        if self.refresh_busy.value:
            self.refresh_busy.write(self.refresh_busy.value - 1)
            return
        ctr = (self.refresh_ctr.value + 1) % REFRESH_INTERVAL
        self.refresh_ctr.write(ctr)
        if ctr == 0:
            self.refresh_busy.write(REFRESH_CYCLES)
            self.perf_refreshes.write(self.perf_refreshes.value + 1)
            # refresh closes all rows
            for b in range(DRAM_BANKS):
                self.bank_row_valid.write(b, 0)

    def _complete_bank_ops(self) -> None:
        for b in range(DRAM_BANKS):
            if not self.svc_valid.read(b):
                continue
            timer = self.svc_timer.read(b)
            if timer > 0:
                self.svc_timer.write(b, timer - 1)
                continue
            addr = self.svc_addr.read(b)
            if self.svc_op.read(b) == int(McuOp.READ):
                slot = None
                for i in range(RRQ_ENTRIES):
                    if not self.rrq_valid.read(i):
                        slot = i
                        break
                if slot is None:
                    continue  # RRQ full; retry next cycle
                data = self.dram.read_line(addr)
                data_int = 0
                for i, word in enumerate(data):
                    data_int |= (word & _WORD_MASK) << (64 * i)
                self.rrq_valid.write(slot, 1)
                self.rrq_addr.write(slot, addr)
                self.rrq_data.write(slot, data_int)
                self.rrq_tag.write(slot, self.svc_tag.read(b))
                self.rrq_src.write(slot, self.svc_src.read(b))
                self.perf_reads.write(self.perf_reads.value + 1)
            else:
                wdb_slot = self.svc_wdb_slot.read(b)
                if self.wdb_valid.read(wdb_slot):
                    data_int = self.wdb_data.read(wdb_slot)
                    words = tuple(
                        (data_int >> (64 * w)) & _WORD_MASK
                        for w in range(WORDS_PER_LINE)
                    )
                    # note: the *address written* comes from the service
                    # register, so a flipped svc_addr silently corrupts an
                    # arbitrary memory line -- the paper's Sec. 5.2 case
                    self.dram.write_line(addr, words)
                    self.wdb_valid.write(wdb_slot, 0)
                else:
                    self.protocol_errors += 1  # write data vanished
                self.perf_writes.write(self.perf_writes.value + 1)
            self.svc_valid.write(b, 0)

    def _issue_from_queue(self) -> None:
        if self.refresh_busy.value or self.rq_count.value == 0:
            return
        head = self.rq_head.value % RQ_ENTRIES
        if not self.rq_valid.read(head):
            # lost request (e.g. valid-bit flip): skip the slot
            self.rq_head.write((self.rq_head.value + 1) % RQ_ENTRIES)
            self.rq_count.write(self.rq_count.value - 1)
            self.protocol_errors += 1
            return
        addr = self.rq_addr.read(head)
        bank = self._dram_bank_of(addr)
        if self.svc_valid.read(bank):
            return  # bank busy; head-of-line blocks (FIFO ordering)
        # same-line ordering: a read must not overtake a buffered write
        if self.rq_op.read(head) == int(McuOp.READ):
            for i in range(WDB_ENTRIES):
                if self.wdb_valid.read(i) and self.wdb_addr.read(i) == addr:
                    in_service = False
                    for bb in range(DRAM_BANKS):
                        if (
                            self.svc_valid.read(bb)
                            and self.svc_op.read(bb) == int(McuOp.WRITE)
                            and self.svc_wdb_slot.read(bb) == i
                        ):
                            in_service = True
                    if not in_service:
                        return  # wait until the write has been issued
        row = self._row_of(addr)
        if self.bank_row_valid.read(bank) and self.bank_open_row.read(bank) == row:
            latency = CAS_LATENCY
            self.perf_row_hits.write(self.perf_row_hits.value + 1)
        else:
            latency = ROW_MISS_LATENCY
        self.bank_open_row.write(bank, row)
        self.bank_row_valid.write(bank, 1)
        self.svc_valid.write(bank, 1)
        self.svc_op.write(bank, self.rq_op.read(head))
        self.svc_addr.write(bank, addr)
        self.svc_tag.write(bank, self.rq_tag.read(head))
        self.svc_src.write(bank, self.rq_src.read(head))
        self.svc_wdb_slot.write(bank, self.rq_wdb_slot.read(head))
        self.svc_timer.write(bank, latency)
        self.rq_valid.write(head, 0)
        self.rq_head.write((self.rq_head.value + 1) % RQ_ENTRIES)
        self.rq_count.write(self.rq_count.value - 1)

    def _drain_rrq(self) -> None:
        for i in range(RRQ_ENTRIES):
            if self.rrq_valid.read(i):
                data_int = self.rrq_data.read(i)
                words = tuple(
                    (data_int >> (64 * w)) & _WORD_MASK for w in range(WORDS_PER_LINE)
                )
                self.replies.append(
                    McuReply(
                        self.rrq_addr.read(i),
                        words,
                        self.rrq_src.read(i),
                        self.rrq_tag.read(i),
                    )
                )
                self.rrq_valid.write(i, 0)
                return  # one reply per cycle

    # ------------------------------------------------------------------
    # Mismatch benignity
    # ------------------------------------------------------------------
    def is_mismatch_benign(self, mismatch: Mismatch) -> bool:
        if super().is_mismatch_benign(mismatch):
            return True
        if mismatch.kind is not MismatchKind.FLIP_FLOP:
            return False
        name = mismatch.name
        for prefix, valid in (
            ("rq_", self.rq_valid),
            ("svc_", self.svc_valid),
            ("wdb_", self.wdb_valid),
            ("rrq_", self.rrq_valid),
        ):
            if name.startswith(prefix) and not name.endswith("_valid"):
                return not valid.read(mismatch.entry)
        return False
