"""Accelerated-mode functional uncore models (paper Fig. 1a).

Under error-free conditions these models produce the same return packets
to the processor cores as the RTL uncore components; they carry exactly
the architected "high-level uncore state" listed in Table 1.
"""

from repro.uncore.highlevel.l2c import HighLevelL2Bank
from repro.uncore.highlevel.mcu import HighLevelMcu
from repro.uncore.highlevel.ccx import HighLevelCcx
from repro.uncore.highlevel.pcie import HighLevelPcieDma

__all__ = [
    "HighLevelCcx",
    "HighLevelL2Bank",
    "HighLevelMcu",
    "HighLevelPcieDma",
]
