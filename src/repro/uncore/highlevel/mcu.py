"""Functional (high-level) model of one DRAM controller (MCU).

The high-level MCU state is simply the DRAM contents (Table 1).  Requests
from the two L2 banks it serves are queued and answered after a fixed
access latency; writebacks are posted.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.soc.packets import McuOp, McuReply, McuRequest

#: DRAM access latency (queue head to data back at the L2), in cycles.
DRAM_LATENCY = 60
#: Request queue capacity.
QUEUE_DEPTH = 16


class HighLevelMcu:
    """Accelerated-mode model of one MCU instance.

    Args:
        mcu_idx: controller index (0..3).
        dram: the DRAM port (anything with ``read_line`` / ``write_line``).
        send_reply: callback delivering :class:`McuReply` back to an
            L2 bank (routed by ``src_bank``).
    """

    def __init__(
        self,
        mcu_idx: int,
        dram,
        send_reply: Callable[[McuReply], None],
    ) -> None:
        self.mcu_idx = mcu_idx
        self.dram = dram
        self.send_reply = send_reply
        #: (ready_cycle, request) in FIFO order.
        self._queue: deque[tuple[int, McuRequest]] = deque()
        self.reads = 0
        self.writes = 0

    def accept(self, req: McuRequest, cycle: int) -> bool:
        """Enqueue a request (the L2-side credit scheme bounds depth)."""
        self._queue.append((cycle + DRAM_LATENCY, req))
        return True

    def tick(self, cycle: int) -> None:
        """Complete every request whose latency has elapsed."""
        while self._queue and self._queue[0][0] <= cycle:
            _ready, req = self._queue.popleft()
            if req.op is McuOp.READ:
                self.reads += 1
                data = self.dram.read_line(req.line_addr)
                self.send_reply(
                    McuReply(req.line_addr, data, req.src_bank, req.tag)
                )
            else:
                self.writes += 1
                self.dram.write_line(req.line_addr, req.data)

    def in_flight(self) -> int:
        return len(self._queue)

    def next_active_cycle(self) -> "int | None":
        """Earliest cycle ``tick`` completes a request (None: idle).

        The queue is FIFO with a fixed access latency, so the head's
        ready cycle is the earliest observable work.
        """
        return self._queue[0][0] if self._queue else None

    def snapshot(self) -> dict:
        return {
            "queue": list(self._queue),
            "reads": self.reads,
            "writes": self.writes,
        }

    def restore(self, snap: dict) -> None:
        self._queue = deque(snap["queue"])
        self.reads = snap["reads"]
        self.writes = snap["writes"]
