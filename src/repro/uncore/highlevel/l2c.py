"""Functional (high-level) model of one L2 cache bank.

Processes PCX requests strictly in arrival order.  Hits complete one per
cycle; a miss blocks the bank's queue head until the MCU fill returns
(the paper's observation that the L2C orders dependent requests is thus
conservative here: the functional model orders *all* requests, which is
the same total order QRR enforces).  Architected content lives in a
shared :class:`repro.mem.l2state.L2BankState`, which is what the
mixed-mode platform transfers to/from the RTL model.

Store semantics are write-allocate/write-back at the L2, write-through
from the cores' L1s, with directory-based L1 invalidation:

* STORE: write the word, mark dirty, invalidate every directory core
  except the storer, directory := {storer}.
* LOAD: return the word, directory |= {requester}.
* Atomics: serialize at the bank, invalidate all directory cores,
  directory := {} (atomics are never L1-cached).
* Eviction of a line invalidates all directory cores (inclusive L2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.mem.l2state import L2BankState
from repro.soc.address import AddressMap
from repro.soc.packets import (
    CpxPacket,
    CpxType,
    McuOp,
    McuReply,
    McuRequest,
    PcxPacket,
    PcxType,
)

#: Return-path latency charged on a hit (tag + data pipeline).
HIT_LATENCY = 8
#: Input queue capacity; accept() back-pressures beyond this.
INPUT_QUEUE_DEPTH = 16

#: Shared empty tick result (callers never mutate it).
_EMPTY: list = []


class HighLevelL2Bank:
    """Accelerated-mode model of one L2 cache bank (L2C instance).

    Args:
        bank: bank index (0..7).
        state: the architected bank state (shared with state transfer).
        send_mcu: callback delivering an :class:`McuRequest` to the MCU
            serving this bank.
        log_store: optional callback ``(word_addr, cycle)`` recording
            processor stores for the rollback-distance analysis.
    """

    def __init__(
        self,
        bank: int,
        state: L2BankState,
        send_mcu: Callable[[McuRequest], None],
        log_store: "Callable[[int, int], None] | None" = None,
    ) -> None:
        self.bank = bank
        self.state = state
        self.amap: AddressMap = state.amap
        self.send_mcu = send_mcu
        self.log_store = log_store
        self._queue: deque[PcxPacket] = deque()
        #: Completed CPX packets waiting out their latency: (ready, pkt).
        self._out: deque[tuple[int, CpxPacket]] = deque()
        #: Head-of-queue miss waiting for a fill: (pkt, mcu_tag).
        self._waiting_fill: tuple[PcxPacket, int] | None = None
        self._fill_data: tuple[int, ...] | None = None
        self._next_tag = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Server interface
    # ------------------------------------------------------------------
    def accept(self, pkt: PcxPacket, cycle: int) -> bool:
        """Enqueue a request; False when the input queue is full."""
        if len(self._queue) >= INPUT_QUEUE_DEPTH:
            return False
        self._queue.append(pkt)
        return True

    def deliver_mcu_reply(self, reply: McuReply) -> None:
        """Fill data arriving from the MCU."""
        if self._waiting_fill is not None and reply.tag == self._waiting_fill[1]:
            self._fill_data = reply.data

    def dma_update(self, addr: int, value: int) -> None:
        """Coherent device write: update the resident copy if present.

        DMA traffic enters the T2 memory subsystem through the L2, so a
        device write must be visible to subsequent cached accesses.  The
        word is updated in place when the line is resident (main memory
        is written by the caller either way).  An *in-flight fill* of the
        same line captured pre-DMA data and must be patched too, or the
        install would resurrect the stale value.
        """
        word = self.amap.word_in_line(addr)
        loc = self.state.lookup(addr)
        if loc is not None:
            set_idx, way = loc
            line = self.state.lines[set_idx][way]
            line.data[word] = value & ((1 << 64) - 1)
        if (
            self._fill_data is not None
            and self._waiting_fill is not None
            and self.amap.line_addr(self._waiting_fill[0].addr)
            == self.amap.line_addr(addr)
        ):
            data = list(self._fill_data)
            data[word] = value & ((1 << 64) - 1)
            self._fill_data = tuple(data)

    def tick(self, cycle: int) -> list[CpxPacket]:
        """Advance one cycle; returns CPX packets leaving this cycle."""
        # 1. finish a pending fill, if its data arrived
        if self._waiting_fill is not None:
            if self._fill_data is not None:
                pkt, _tag = self._waiting_fill
                self._install_and_complete(pkt, self._fill_data, cycle)
                self._waiting_fill = None
                self._fill_data = None
        # 2. otherwise process the queue head (lookup inlined: this is
        #    the hottest uncore leaf in the repository)
        else:
            queue = self._queue
            if queue:
                pkt = queue.popleft()
                addr = pkt.addr
                amap = self.amap
                set_idx = (addr >> amap._set_shift) & amap._set_mask
                tag = addr >> amap._tag_shift
                hit_way = None
                for way, line in enumerate(self.state.lines[set_idx]):
                    if line.valid and line.tag == tag:
                        hit_way = way
                        break
                if hit_way is not None:
                    self.hits += 1
                    self._complete(pkt, (set_idx, hit_way), cycle)
                else:
                    self.misses += 1
                    tag = self._next_tag
                    self._next_tag = (self._next_tag + 1) & 0xFFFF
                    self.send_mcu(
                        McuRequest(
                            McuOp.READ, addr & ~63, None, self.bank, tag
                        )
                    )
                    self._waiting_fill = (pkt, tag)
        # 3. release CPX packets whose latency elapsed
        out = self._out
        if not out or out[0][0] > cycle:
            return _EMPTY
        ready: list[CpxPacket] = []
        while out and out[0][0] <= cycle:
            ready.append(out.popleft()[1])
        return ready

    def in_flight(self) -> int:
        return len(self._queue) + len(self._out) + (self._waiting_fill is not None)

    def next_active_cycle(self) -> "int | None":
        """Earliest cycle ``tick`` can do observable work (None: idle).

        A bank waiting on an MCU fill whose data has not arrived sleeps;
        the machine wakes it when it routes the reply.  Completed packets
        waiting out their latency wake the bank at the head's ready cycle
        (the out queue is in ready order: every emit charges the same
        latency at monotonically increasing cycles).
        """
        if self._waiting_fill is not None:
            nxt = 0 if self._fill_data is not None else None
        elif self._queue:
            nxt = 0
        else:
            nxt = None
        if self._out:
            ready = self._out[0][0]
            if nxt is None or ready < nxt:
                nxt = ready
        return nxt

    # ------------------------------------------------------------------
    # Functional operations
    # ------------------------------------------------------------------
    def _emit(self, cycle: int, pkt: CpxPacket, extra_latency: int = 0) -> None:
        self._out.append((cycle + HIT_LATENCY + extra_latency, pkt))

    def _install_and_complete(
        self, pkt: PcxPacket, data: tuple[int, ...], cycle: int
    ) -> None:
        """Install a filled line (evicting a victim) and run the op."""
        set_idx = self.amap.set_of(pkt.addr)
        way = self.state.choose_victim(set_idx)
        victim = self.state.lines[set_idx][way]
        if victim.valid:
            victim_addr = self.amap.rebuild_addr(victim.tag, set_idx, self.bank)
            if victim.dirty:
                self.send_mcu(
                    McuRequest(
                        McuOp.WRITE,
                        victim_addr,
                        tuple(victim.data),
                        self.bank,
                        0,
                    )
                )
            self._invalidate_directory(victim, victim_addr, cycle)
        victim.valid = True
        victim.dirty = False
        victim.tag = self.amap.tag_of(pkt.addr)
        victim.data = list(data)
        victim.directory = 0
        self._complete(pkt, (set_idx, way), cycle, was_miss=True)

    def _invalidate_directory(
        self, line, line_addr: int, cycle: int, keep_core: int = -1
    ) -> None:
        """Send INVALIDATE packets to every directory core except one."""
        directory = line.directory
        if not directory or (
            keep_core >= 0 and directory == 1 << keep_core
        ):
            # empty directory, or only the kept core caches the line:
            # nothing to invalidate (the common store case)
            return
        core = 0
        while directory:
            if directory & 1 and core != keep_core:
                self._out.append(
                    (
                        cycle + HIT_LATENCY,
                        CpxPacket(CpxType.INVALIDATE, core, 0, line_addr, 0, 0),
                    )
                )
            directory >>= 1
            core += 1

    def _complete(
        self,
        pkt: PcxPacket,
        loc: tuple[int, int],
        cycle: int,
        was_miss: bool = False,
        _LOAD=PcxType.LOAD,
        _STORE=PcxType.STORE,
        _TAS=PcxType.ATOMIC_TAS,
        _ADD=PcxType.ATOMIC_ADD,
    ) -> None:
        set_idx, way = loc
        line = self.state.lines[set_idx][way]
        addr = pkt.addr
        word = (addr & 63) >> 3
        ptype = pkt.ptype
        core = pkt.core
        ready = cycle + HIT_LATENCY  # MCU latency (if any) already elapsed
        if ptype is _LOAD or ptype is PcxType.IFETCH:
            line.directory |= 1 << core
            ctype = CpxType.LOAD_RET if ptype is _LOAD else CpxType.IFETCH_RET
            self._out.append(
                (
                    ready,
                    CpxPacket(
                        ctype, core, pkt.thread, addr, line.data[word], pkt.reqid
                    ),
                )
            )
        elif ptype is _STORE:
            self._invalidate_directory(line, addr & ~63, cycle, keep_core=core)
            line.data[word] = pkt.data
            line.dirty = True
            line.directory = 1 << core
            if self.log_store is not None:
                self.log_store(addr & ~7, cycle)
            self._out.append(
                (
                    ready,
                    CpxPacket(
                        CpxType.STORE_ACK, core, pkt.thread, addr, 0, pkt.reqid
                    ),
                )
            )
        elif ptype is _TAS or ptype is _ADD:
            old = line.data[word]
            if ptype is _ADD and pkt.data == 0:
                # fetch-and-add of zero is a pure atomic read: no array
                # write, no dirtying, no invalidation traffic
                pass
            else:
                self._invalidate_directory(line, addr & ~63, cycle)
                if ptype is _TAS:
                    line.data[word] = 1
                else:
                    line.data[word] = (old + pkt.data) & ((1 << 64) - 1)
                line.dirty = True
                line.directory = 0
                if self.log_store is not None:
                    self.log_store(addr & ~7, cycle)
            self._out.append(
                (
                    ready,
                    CpxPacket(
                        CpxType.ATOMIC_RET, core, pkt.thread, addr, old, pkt.reqid
                    ),
                )
            )
        else:  # pragma: no cover - all PcxTypes handled
            raise ValueError(f"unhandled packet type {pkt.ptype}")

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "state": self.state.snapshot(),
            "queue": list(self._queue),
            "out": list(self._out),
            "waiting_fill": self._waiting_fill,
            "fill_data": self._fill_data,
            "next_tag": self._next_tag,
            "hits": self.hits,
            "misses": self.misses,
        }

    def restore(self, snap: dict) -> None:
        self.state.restore(snap["state"])
        self._queue = deque(snap["queue"])
        self._out = deque(snap["out"])
        self._waiting_fill = snap["waiting_fill"]
        self._fill_data = snap["fill_data"]
        self._next_tag = snap["next_tag"]
        self.hits = snap["hits"]
        self.misses = snap["misses"]
