"""Functional (high-level) model of the crossbar interconnect (CCX).

The crossbar only delivers packets between processor cores and L2 cache
banks; it has *no* high-level uncore state in Table 1 (footnote 4: its
state can be reconstructed in co-simulation mode).  The accelerated-mode
model is therefore a pair of fixed-latency delivery pipes.
"""

from __future__ import annotations

from collections import deque

from repro.soc.packets import CpxPacket, PcxPacket

#: One-way crossbar traversal latency, in cycles.
CCX_LATENCY = 3

#: Shared empty delivery result (callers never mutate deliveries).
_EMPTY: list = []


class HighLevelCcx:
    """Fixed-latency PCX/CPX delivery between cores and L2 banks."""

    def __init__(self, latency: int = CCX_LATENCY) -> None:
        if latency < 1:
            raise ValueError("latency must be at least 1 cycle")
        self.latency = latency
        self._pcx: deque[tuple[int, int, PcxPacket]] = deque()  # (ready, bank, pkt)
        self._cpx: deque[tuple[int, CpxPacket]] = deque()  # (ready, pkt)
        self.pcx_delivered = 0
        self.cpx_delivered = 0

    def send_pcx(self, bank: int, pkt: PcxPacket, cycle: int) -> None:
        """Core-side ingress toward L2 bank ``bank``."""
        self._pcx.append((cycle + self.latency, bank, pkt))

    def send_cpx(self, pkt: CpxPacket, cycle: int, src: int = 0) -> None:
        """Bank-side ingress toward core ``pkt.core``.

        ``src`` is the sending L2 bank; the fixed-latency model ignores
        it, the RTL crossbar uses it as the ingress port.
        """
        self._cpx.append((cycle + self.latency, pkt))

    def tick(self, cycle: int) -> None:
        """No per-cycle work in the fixed-latency model."""

    def deliver_pcx(self, cycle: int) -> list[tuple[int, PcxPacket]]:
        """Packets reaching the L2 banks this cycle: (bank, pkt)."""
        pcx = self._pcx
        if not pcx or pcx[0][0] > cycle:
            return _EMPTY
        out = []
        while pcx and pcx[0][0] <= cycle:
            _ready, bank, pkt = pcx.popleft()
            out.append((bank, pkt))
            self.pcx_delivered += 1
        return out

    def deliver_cpx(self, cycle: int) -> list[CpxPacket]:
        """Packets reaching the cores this cycle."""
        cpx = self._cpx
        if not cpx or cpx[0][0] > cycle:
            return _EMPTY
        out = []
        while cpx and cpx[0][0] <= cycle:
            out.append(cpx.popleft()[1])
            self.cpx_delivered += 1
        return out

    def in_flight(self) -> int:
        return len(self._pcx) + len(self._cpx)

    def next_active_cycle(self) -> "int | None":
        """Earliest cycle this model can do observable work (None: idle).

        Both deques hold entries in ready-cycle order (fixed latency,
        monotonically increasing send cycles), so the heads are the
        earliest deliveries.  Skipping ``tick``/``deliver_*`` on cycles
        before the returned value is provably a no-op.
        """
        nxt = self._pcx[0][0] if self._pcx else None
        if self._cpx:
            ready = self._cpx[0][0]
            if nxt is None or ready < nxt:
                nxt = ready
        return nxt

    def snapshot(self) -> dict:
        return {
            "pcx": list(self._pcx),
            "cpx": list(self._cpx),
            "pcx_delivered": self.pcx_delivered,
            "cpx_delivered": self.cpx_delivered,
        }

    def restore(self, snap: dict) -> None:
        self._pcx = deque(snap["pcx"])
        self._cpx = deque(snap["cpx"])
        self.pcx_delivered = snap["pcx_delivered"]
        self.cpx_delivered = snap["cpx_delivered"]
