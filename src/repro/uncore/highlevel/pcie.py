"""Functional (high-level) model of the PCI Express I/O controller.

The paper models a situation where PCIe I/O transfers the application's
input data file (Sec. 3.2); the high-level state is the RX/TX transfer
buffers (Table 1).  This model DMA-streams the input file into a DRAM
region at a fixed rate and finally sets a completion flag word that the
application polls before consuming its input.
"""

from __future__ import annotations

from typing import Callable

#: Words transferred per cycle while the DMA is active.
DMA_WORDS_PER_CYCLE = 2
#: Completion flag value written once the whole file has landed.
DMA_DONE_FLAG = 1


def file_bytes_to_words(data: bytes) -> list[int]:
    """Pack a byte string into 64-bit little-endian words (zero padded)."""
    words = []
    for i in range(0, len(data), 8):
        chunk = data[i : i + 8]
        words.append(int.from_bytes(chunk.ljust(8, b"\0"), "little"))
    return words


class HighLevelPcieDma:
    """Accelerated-mode model of the PCIe controller's DMA input path.

    Args:
        dram: DRAM port with ``write_word``.
        log_store: optional callback ``(word_addr, cycle)`` recording
            device writes for the rollback-distance analysis.
    """

    def __init__(
        self,
        dram,
        log_store: "Callable[[int, int], None] | None" = None,
        rate: int = DMA_WORDS_PER_CYCLE,
    ) -> None:
        if rate < 1:
            raise ValueError("rate must be at least one word per cycle")
        self.dram = dram
        self.log_store = log_store
        self.rate = rate
        self.file_words: list[int] = []
        self.dest_base = 0
        self.status_addr = 0
        self.progress = 0
        self.active = False
        self.start_cycle = 0
        self.finish_cycle: int | None = None

    def begin_transfer(
        self, file_words: list[int], dest_base: int, status_addr: int, cycle: int
    ) -> None:
        """Arm a DMA transfer of ``file_words`` into ``dest_base``."""
        if dest_base & 7 or status_addr & 7:
            raise ValueError("DMA addresses must be word aligned")
        self.file_words = file_words
        self.dest_base = dest_base
        self.status_addr = status_addr
        self.progress = 0
        self.active = True
        self.start_cycle = cycle
        self.finish_cycle = None

    def tick(self, cycle: int) -> None:
        if not self.active:
            return
        end = min(self.progress + self.rate, len(self.file_words))
        while self.progress < end:
            addr = self.dest_base + 8 * self.progress
            self.dram.write_word(addr, self.file_words[self.progress])
            if self.log_store is not None:
                self.log_store(addr, cycle)
            self.progress += 1
        if self.progress >= len(self.file_words):
            self.dram.write_word(self.status_addr, DMA_DONE_FLAG)
            if self.log_store is not None:
                self.log_store(self.status_addr, cycle)
            self.active = False
            self.finish_cycle = cycle

    def in_flight(self) -> int:
        return len(self.file_words) - self.progress if self.active else 0

    def next_active_cycle(self) -> "int | None":
        """An armed DMA streams every cycle; otherwise the engine idles."""
        return 0 if self.active else None

    def transfer_window(self) -> tuple[int, int]:
        """(start, finish) cycles of the transfer; finish requires completion."""
        if self.finish_cycle is None:
            raise ValueError("transfer has not completed")
        return (self.start_cycle, self.finish_cycle)

    def snapshot(self) -> dict:
        return {
            "file_words": list(self.file_words),
            "dest_base": self.dest_base,
            "status_addr": self.status_addr,
            "progress": self.progress,
            "active": self.active,
            "start_cycle": self.start_cycle,
            "finish_cycle": self.finish_cycle,
        }

    def restore(self, snap: dict) -> None:
        self.file_words = list(snap["file_words"])
        self.dest_base = snap["dest_base"]
        self.status_addr = snap["status_addr"]
        self.progress = snap["progress"]
        self.active = snap["active"]
        self.start_cycle = snap["start_cycle"]
        self.finish_cycle = snap["finish_cycle"]
