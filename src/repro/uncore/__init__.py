"""Uncore component models.

Two model families exist for every studied component:

* **High-level models** (:mod:`repro.uncore.highlevel`) carry only the
  architected state of Table 1 and run in the accelerated mode.
* **RTL models** (:mod:`repro.uncore.l2c`, :mod:`repro.uncore.mcu`,
  :mod:`repro.uncore.ccx`, :mod:`repro.uncore.pcie`) model every
  flip-flop (Table 3 / Table 4 inventory) and run in co-simulation mode.
"""

from repro.uncore.highlevel import (
    HighLevelCcx,
    HighLevelL2Bank,
    HighLevelMcu,
    HighLevelPcieDma,
)

__all__ = [
    "HighLevelCcx",
    "HighLevelL2Bank",
    "HighLevelMcu",
    "HighLevelPcieDma",
]
