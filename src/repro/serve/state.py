"""Durable job state for the serve daemon: requests in, journals out.

A *job* is one submitted campaign -- a grid or an explicit spec list --
identified by the blake2b digest of its normalized request, so
resubmitting the same campaign (any key order, whitespace, or client)
attaches to the existing job instead of duplicating work.  Each job
owns a directory under ``STATE/jobs/<id>/`` holding:

* ``job.json`` -- the job manifest (status, counters, timestamps),
  written atomically with the result-bus rename discipline.
* ``journal.json`` -- a standard :class:`repro.resilience.SweepJournal`
  over the job's cells, pointed at the daemon's shared result bus.

That layering is the crash-safety story: a SIGKILLed daemon loses only
in-memory queue order.  On restart the store reloads every manifest,
re-enqueues ``queued``/``running`` jobs (their journals reconcile
against the bus, so landed cells replay as byte-identical cache hits),
and ``done`` jobs re-serve their results straight from the bus.

Digest-neutrality: job ids, statuses and counters are operational
state *about* campaigns; none of it enters spec digests, cache keys,
or canonical result bytes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from pathlib import Path

from repro.api.grid import Grid
from repro.api.result import dumps_canonical
from repro.api.spec import ExperimentSpec
from repro.resilience import SweepJournal

#: Bump when the job manifest layout changes incompatibly.
JOB_VERSION = 1

#: The job state machine.  ``queued`` and ``running`` jobs re-enqueue
#: after a daemon restart; ``done`` jobs serve results from the bus;
#: ``failed``/``cancelled`` jobs stay inspectable and may be
#: resubmitted (the resubmission resets them to ``queued``).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_TMP_IDS = itertools.count()


def normalize_request(request: dict) -> "tuple[dict, list[ExperimentSpec]]":
    """Validate one submission and pin down its canonical identity.

    Accepted shapes (mutually exclusive):

    * ``{"grid": {...}}`` -- a :meth:`Grid.to_dict` description; cells
      expand in reporting order exactly like ``repro sweep``.
    * ``{"spec": {...}}`` / ``{"specs": [...]}`` -- explicit canonical
      spec dicts, run in the given order.

    Returns ``(grid_payload, specs)`` where ``grid_payload`` is the
    normalized grid description embedded in the job's journal and in
    the result JSON (for grid submissions it is ``Grid.to_dict()`` of
    the parsed grid, so key order and defaults never change identity).
    Raises ``ValueError`` for anything malformed.
    """
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    keys = [k for k in ("grid", "spec", "specs") if k in request]
    if len(keys) != 1:
        raise ValueError(
            "request must carry exactly one of 'grid', 'spec', 'specs'"
        )
    kind = keys[0]
    try:
        if kind == "grid":
            if not isinstance(request["grid"], dict):
                raise ValueError("'grid' must be an object")
            grid = Grid.from_dict(request["grid"])
            specs = grid.specs()
            payload = grid.to_dict()
        else:
            raw = [request["spec"]] if kind == "spec" else request["specs"]
            if not isinstance(raw, list) or not all(
                isinstance(d, dict) for d in raw
            ):
                raise ValueError("'specs' must be a list of objects")
            specs = [ExperimentSpec.from_dict(d) for d in raw]
            payload = {"specs": [spec.to_dict() for spec in specs]}
    except ValueError:
        raise
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed {kind} request: {exc}") from exc
    if not specs:
        raise ValueError("request expands to zero valid cells")
    return payload, specs


def job_id_for(grid_payload: dict) -> str:
    """The content-addressed job identity: a short blake2b digest of
    the canonical normalized request, so identical campaigns dedupe."""
    blob = dumps_canonical(grid_payload).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


class Job:
    """One submitted campaign: in-memory handle + persisted manifest."""

    __slots__ = (
        "id", "grid", "status", "client", "cells", "created", "started",
        "finished", "error", "hits", "misses", "stale", "run_seconds",
        "resumes",
    )

    def __init__(
        self,
        job_id: str,
        grid: dict,
        cells: int,
        client: "str | None" = None,
        created: "float | None" = None,
    ) -> None:
        self.id = job_id
        self.grid = grid
        self.status = "queued"
        self.client = client
        self.cells = cells
        self.created = created if created is not None else round(time.time(), 6)
        self.started: "float | None" = None
        self.finished: "float | None" = None
        self.error: "str | None" = None
        #: cache tally of the *latest* run attempt: after a crash-resume,
        #: ``hits >= cells landed before the crash`` is the observable
        #: proof that only unlanded cells recomputed.
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.run_seconds: "float | None" = None
        #: how many times this job re-entered the queue (daemon
        #: restarts, drains) -- purely diagnostic.
        self.resumes = 0

    def to_dict(self) -> dict:
        return {
            "job_version": JOB_VERSION,
            "id": self.id,
            "grid": self.grid,
            "status": self.status,
            "client": self.client,
            "cells": self.cells,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "run_seconds": self.run_seconds,
            "resumes": self.resumes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        version = data.get("job_version")
        if version != JOB_VERSION:
            raise ValueError(
                f"job manifest version {version!r}; this build speaks "
                f"{JOB_VERSION}"
            )
        job = cls(
            data["id"], data["grid"], data["cells"],
            client=data.get("client"), created=data.get("created"),
        )
        status = data.get("status", "queued")
        if status not in JOB_STATES:
            raise ValueError(f"unknown job status {status!r}")
        job.status = status
        job.started = data.get("started")
        job.finished = data.get("finished")
        job.error = data.get("error")
        job.hits = data.get("hits", 0)
        job.misses = data.get("misses", 0)
        job.stale = data.get("stale", 0)
        job.run_seconds = data.get("run_seconds")
        job.resumes = data.get("resumes", 0)
        return job

    def specs(self) -> list[ExperimentSpec]:
        """Rebuild the job's cells in reporting order."""
        if "specs" in self.grid:
            return [ExperimentSpec.from_dict(d) for d in self.grid["specs"]]
        return Grid.from_dict(self.grid).specs()


class JobStore:
    """The on-disk registry of jobs under ``STATE/jobs/``.

    Pure persistence -- locking, queueing and admission live in
    :class:`repro.serve.service.CampaignService`.  Every manifest write
    is atomic (unique temp + ``os.replace``), so a SIGKILL at any
    instant leaves the previous or the next manifest, never a torn one.
    """

    def __init__(self, root: "str | Path", bus: "str | Path") -> None:
        self.root = Path(root)
        self.bus = Path(bus)
        self.jobs: dict[str, Job] = {}

    # ------------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def create(
        self, job_id: str, grid: dict, specs, client: "str | None" = None
    ) -> Job:
        """Persist a new job: manifest plus an all-pending journal
        pointing at the shared bus (recorded absolute, because the bus
        outlives and is shared across job directories)."""
        job = Job(job_id, grid, len(specs), client=client)
        SweepJournal.create(
            self.job_dir(job_id), grid, specs, bus=self.bus.resolve()
        )
        self.save(job)
        self.jobs[job_id] = job
        return job

    def save(self, job: Job) -> None:
        path = self.job_dir(job.id) / "job.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(job.to_dict(), sort_keys=True, separators=(",", ":"))
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_IDS)}.tmp")
        tmp.write_text(blob + "\n")
        tmp.replace(path)

    def journal(self, job: Job) -> SweepJournal:
        return SweepJournal.load(self.job_dir(job.id))

    # ------------------------------------------------------------------
    def load_all(self) -> "list[str]":
        """Reload every persisted job (daemon restart).  Returns the
        names of job directories that failed to load -- damaged
        manifests are skipped loudly, never fatal, so one corrupted job
        cannot keep the daemon down."""
        self.jobs.clear()
        damaged: list[str] = []
        if not self.root.is_dir():
            return damaged
        for entry in sorted(self.root.iterdir()):
            manifest = entry / "job.json"
            if not manifest.is_file():
                continue
            try:
                job = Job.from_dict(json.loads(manifest.read_text()))
            except (ValueError, KeyError, OSError):
                damaged.append(entry.name)
                continue
            self.jobs[job.id] = job
        return damaged

    def recoverable(self) -> list[Job]:
        """Jobs that must re-enter the queue after a restart, oldest
        first: ``queued`` jobs never ran, ``running`` jobs were cut off
        mid-flight (their journals know which cells already landed)."""
        return sorted(
            (
                job for job in self.jobs.values()
                if job.status in ("queued", "running")
            ),
            key=lambda job: job.created,
        )
