"""A small stdlib client for the serve daemon's HTTP/JSON API.

Backpressure-aware by default: 429/503 responses carry ``Retry-After``
and :class:`ServeClient` honors it with bounded retries, so a fleet of
well-behaved clients converges instead of hammering an overloaded
daemon.  Everything rides :mod:`urllib` -- no new dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

#: Admission statuses worth waiting out (the daemon said "later").
RETRYABLE = (429, 503)


class ServeError(Exception):
    """A non-2xx response that was not (or could no longer be)
    retried.  ``status`` is the HTTP code, ``body`` the parsed JSON
    error document when one came back."""

    def __init__(self, status: int, body, message: "str | None" = None):
        self.status = status
        self.body = body
        detail = message
        if detail is None and isinstance(body, dict):
            detail = body.get("error")
        super().__init__(f"HTTP {status}: {detail or body}")


class ServeClient:
    """One daemon endpoint, one client identity.

    ``client_id`` feeds the daemon's per-client in-flight cap (the
    ``X-Repro-Client`` header); defaults to this process's pid so
    parallel test clients are distinct.
    """

    def __init__(
        self,
        base_url: str,
        client_id: "str | None" = None,
        timeout: float = 30.0,
        max_tries: int = 8,
        retry_cap: float = 5.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = (
            client_id if client_id is not None else f"pid-{id(self) & 0xffff}"
        )
        self.timeout = timeout
        self.max_tries = max(1, max_tries)
        self.retry_cap = retry_cap

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        retry: bool = True,
    ) -> "tuple[int, dict, bytes]":
        """One HTTP exchange; retries 429/503 per ``Retry-After`` when
        ``retry``.  Returns ``(status, headers, raw body bytes)``."""
        url = self.base_url + path
        data = None
        headers = {"X-Repro-Client": self.client_id}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        tries = self.max_tries if retry else 1
        last: "tuple[int, dict, bytes] | None" = None
        for attempt in range(tries):
            request = urllib.request.Request(
                url, data=data, method=method, headers=headers
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    return resp.status, dict(resp.headers), resp.read()
            except urllib.error.HTTPError as exc:
                payload = exc.read()
                last = (exc.code, dict(exc.headers), payload)
                if exc.code not in RETRYABLE or attempt == tries - 1:
                    return last
                delay = _retry_after(exc.headers, default=0.5)
                time.sleep(min(self.retry_cap, delay))
        assert last is not None  # tries >= 1
        return last

    @staticmethod
    def _parse(raw: bytes):
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None

    def _json_call(
        self, method: str, path: str, body=None, retry: bool = True,
        ok=(200, 201),
    ) -> dict:
        status, _headers, raw = self._request(
            method, path, body=body, retry=retry
        )
        doc = self._parse(raw)
        if status not in ok:
            raise ServeError(status, doc)
        return doc if isinstance(doc, dict) else {}

    # ------------------------------------------------------------------
    # the API surface
    # ------------------------------------------------------------------
    def submit(self, request: dict, retry: bool = True) -> dict:
        """Submit a campaign (``{"grid": ...}`` or ``{"spec(s)": ...}``);
        returns the job view (``view["created"]`` says fresh vs
        deduped).  With ``retry=False`` a 429/503 raises immediately --
        the overload tests assert on exactly that."""
        return self._json_call("POST", "/jobs", body=request, retry=retry)

    def job(self, job_id: str) -> dict:
        return self._json_call("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._json_call("GET", "/jobs").get("jobs", [])

    def cancel(self, job_id: str) -> dict:
        return self._json_call("DELETE", f"/jobs/{job_id}")

    def stats(self) -> dict:
        return self._json_call("GET", "/stats")

    def healthz(self) -> dict:
        return self._json_call("GET", "/healthz")

    def ready(self) -> bool:
        status, _headers, _raw = self._request(
            "GET", "/readyz", retry=False
        )
        return status == 200

    def result_bytes(
        self, job_id: str, wait: bool = False, timeout: float = 120.0
    ) -> bytes:
        """The canonical result document for a ``done`` job.

        ``wait=True`` polls through 409 (still queued/running) honoring
        ``Retry-After`` until ``timeout``; a terminal ``failed`` /
        ``cancelled`` job raises :class:`ServeError` immediately.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, headers, raw = self._request(
                "GET", f"/jobs/{job_id}/result", retry=False
            )
            if status == 200:
                return raw
            doc = self._parse(raw)
            state = doc.get("status") if isinstance(doc, dict) else None
            waitable = status == 409 and state in ("queued", "running")
            if not wait or not waitable:
                raise ServeError(status, doc)
            if time.monotonic() >= deadline:
                raise ServeError(
                    status, doc, message=f"timed out waiting on {job_id}"
                )
            time.sleep(min(self.retry_cap, _retry_after(headers, 0.2)))

    def run(
        self, request: dict, timeout: float = 120.0
    ) -> "tuple[dict, bytes]":
        """Submit-and-wait convenience: returns ``(job view, result
        bytes)``."""
        view = self.submit(request)
        raw = self.result_bytes(view["id"], wait=True, timeout=timeout)
        return self.job(view["id"]), raw


def _retry_after(headers, default: float) -> float:
    try:
        value = headers.get("Retry-After") if headers is not None else None
        return max(0.05, float(value)) if value is not None else default
    except (TypeError, ValueError):
        return default
