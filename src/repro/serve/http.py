"""The HTTP/JSON transport over :class:`~repro.serve.service.CampaignService`.

Stdlib-only (``http.server.ThreadingHTTPServer``): the daemon adds no
dependencies, matching the repo's contract.  The surface is small and
boring on purpose -- every hard problem (admission, durability,
byte-identity) lives in the service layer:

* ``POST /jobs`` -- submit ``{"grid": {...}}`` or ``{"spec(s)": ...}``;
  201 on a fresh job, 200 when the digest-deduped job already exists,
  429/503 + ``Retry-After`` when admission refuses.
* ``GET /jobs`` / ``GET /jobs/<id>`` -- manifests with live journal
  counts (``landed`` is how the chaos suite watches mid-sweep progress).
* ``GET /jobs/<id>/result`` -- the canonical result document, exactly
  the bytes ``repro sweep --json`` writes for the same grid; 409 +
  ``Retry-After`` while the job is still queued/running.
* ``DELETE /jobs/<id>`` -- cancel.
* ``GET /healthz`` (liveness, always 200 while the process serves),
  ``GET /readyz`` (503 once draining), ``GET /stats`` (operational
  state), ``GET /metrics`` (the standard obs snapshot shape --
  ``repro top http://host:port/metrics`` renders it; ``?format=prom``
  serves Prometheus text exposition).

The bound endpoint is advertised in ``STATE/http.json`` (atomic write)
so tests and scripts can use ``--port 0`` without parsing logs.
"""

from __future__ import annotations

import json
import os
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.serve.service import AdmissionError, CampaignService, UnknownJob

#: Maximum accepted request body (a grid description is tiny; anything
#: bigger is a mistake or abuse).
MAX_BODY_BYTES = 1 << 20


class ServeHandler(BaseHTTPRequestHandler):
    """One request; the service owns all state.  Every response is
    JSON except a result fetch (canonical result bytes verbatim) and
    ``/metrics?format=prom``."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is obs's job, not stderr noise

    def _client_id(self) -> str:
        header = self.headers.get("X-Repro-Client")
        if header:
            return header.strip()[:64]
        return self.client_address[0] if self.client_address else "anon"

    def _send(self, status: int, body: bytes, content_type: str,
              headers: "dict | None" = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _json(self, status: int, doc: dict,
              headers: "dict | None" = None) -> None:
        body = (
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        self._send(status, body, "application/json", headers)

    def _error(self, status: int, message: str,
               headers: "dict | None" = None) -> None:
        self._json(status, {"error": message}, headers)

    def _read_body(self) -> "dict | None":
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            return None
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._guarded(self._get)

    def do_POST(self) -> None:  # noqa: N802
        self._guarded(self._post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._guarded(self._delete)

    def _guarded(self, handler) -> None:
        try:
            handler()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # one bad request must not kill serving
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _get(self) -> None:
        path, _, query = self.path.partition("?")
        service = self.service
        if path == "/healthz":
            self._json(200, {"ok": True, "pid": os.getpid()})
        elif path == "/readyz":
            if service.draining:
                self._json(
                    503, {"ready": False, "draining": True},
                    headers={"Retry-After": 5},
                )
            else:
                self._json(200, {"ready": True})
        elif path == "/stats":
            self._json(200, service.stats())
        elif path == "/metrics":
            from repro import obs

            service.update_registry()
            doc = obs.snapshot()
            if "format=prom" in query:
                self._send(
                    200, obs.render_prometheus(doc).encode("utf-8"),
                    "text/plain; version=0.0.4",
                )
            else:
                self._json(200, doc)
        elif path == "/jobs":
            views = [
                service.job_view(job)
                for job in sorted(
                    service.store.jobs.values(), key=lambda j: j.created
                )
            ]
            self._json(200, {"jobs": views})
        elif path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            try:
                job = service.job(parts[0])
            except UnknownJob:
                self._error(404, f"no job {parts[0]!r}")
                return
            if len(parts) == 1:
                self._json(200, service.job_view(job))
            elif len(parts) == 2 and parts[1] == "result":
                payload = service.result_payload(job.id)
                if payload is not None:
                    self._send(200, payload, "application/json")
                elif job.status in ("queued", "running"):
                    self._json(
                        409,
                        {"status": job.status, "error": "job not done"},
                        headers={"Retry-After": 1},
                    )
                else:
                    self._json(
                        409,
                        {
                            "status": job.status,
                            "error": job.error or f"job {job.status}",
                        },
                    )
            else:
                self._error(404, f"unknown path {path!r}")
        else:
            self._error(404, f"unknown path {path!r}")

    def _post(self) -> None:
        if self.path.partition("?")[0] != "/jobs":
            self._error(404, f"unknown path {self.path!r}")
            return
        request = self._read_body()
        if request is None:
            self._error(400, "request body must be a JSON object")
            return
        try:
            job, created = self.service.submit(
                request, client=self._client_id()
            )
        except AdmissionError as exc:
            self._json(
                exc.status,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": exc.retry_after},
            )
            return
        except ValueError as exc:
            self._error(400, str(exc))
            return
        view = self.service.job_view(job)
        view["created"] = created
        self._json(201 if created else 200, view)

    def _delete(self) -> None:
        path = self.path.partition("?")[0]
        if not path.startswith("/jobs/"):
            self._error(404, f"unknown path {path!r}")
            return
        job_id = path[len("/jobs/"):]
        try:
            job = self.service.cancel(job_id)
        except UnknownJob:
            self._error(404, f"no job {job_id!r}")
            return
        self._json(200, self.service.job_view(job))


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the HTTP front end (``port=0`` picks an ephemeral port;
    read it back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def endpoint_path(state_dir: "str | Path") -> Path:
    return Path(state_dir) / "http.json"


def write_endpoint_file(
    state_dir: "str | Path", host: str, port: int
) -> Path:
    """Advertise the bound endpoint atomically (``--port 0`` discovery
    for tests, CI, and scripts)."""
    path = endpoint_path(state_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "url": f"http://{host}:{port}",
        "host": host,
        "port": port,
        "pid": os.getpid(),
        "started": round(time.time(), 6),
    }
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    )
    tmp.replace(path)
    return path
