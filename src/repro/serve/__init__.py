"""``repro serve``: the self-healing, always-on campaign service.

The serve package composes the repo's resilience primitives -- the
content-addressed result bus, :class:`~repro.resilience.RetryPolicy`,
the atomic :class:`~repro.resilience.SweepJournal`, ``fsck`` -- into a
long-running daemon with an HTTP/JSON job API:

* :mod:`repro.serve.state` -- content-addressed job identity and the
  crash-safe on-disk job store (manifest + journal per job).
* :mod:`repro.serve.service` -- :class:`CampaignService`: admission
  control (bounded queue, per-client caps, ``Retry-After``), the warm
  :class:`PooledSession` platform LRU, runner + supervisor threads,
  startup/crash ``fsck``, graceful drain.
* :mod:`repro.serve.http` -- the stdlib HTTP transport
  (``/jobs``, ``/healthz``, ``/readyz``, ``/stats``, ``/metrics``).
* :mod:`repro.serve.client` -- a backpressure-aware urllib client.

The headline contract is inherited, not new: a campaign served over
HTTP -- through crashes, restarts, and resubmissions -- returns bytes
identical to ``repro sweep --json`` in a fresh serial process.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.http import (
    ServeHandler,
    endpoint_path,
    make_server,
    write_endpoint_file,
)
from repro.serve.service import (
    AdmissionError,
    CampaignService,
    ClientBusy,
    Draining,
    PooledSession,
    QueueFull,
    UnknownJob,
)
from repro.serve.state import (
    JOB_STATES,
    Job,
    JobStore,
    job_id_for,
    normalize_request,
)

__all__ = [
    "AdmissionError",
    "CampaignService",
    "ClientBusy",
    "Draining",
    "JOB_STATES",
    "Job",
    "JobStore",
    "PooledSession",
    "QueueFull",
    "ServeClient",
    "ServeError",
    "ServeHandler",
    "UnknownJob",
    "endpoint_path",
    "job_id_for",
    "make_server",
    "normalize_request",
    "write_endpoint_file",
]
