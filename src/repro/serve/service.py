"""The always-on campaign service: admission, execution, recovery.

:class:`CampaignService` composes the primitives earlier layers built
-- the content-addressed result bus, :class:`~repro.resilience.RetryPolicy`,
the atomic :class:`~repro.resilience.SweepJournal`, ``fsck`` -- into a
long-running daemon whose design center is *robustness*:

* **Admission control.**  The job queue is bounded and each client has
  an in-flight cap; past either limit :meth:`submit` raises
  :class:`QueueFull` (503) or :class:`ClientBusy` (429) carrying a
  ``Retry-After`` estimate, so overload sheds load instead of accepting
  unbounded work.  Identical campaigns dedupe to one job by content
  digest, making resubmission free and idempotent.
* **Warm starts.**  All serial job execution shares one
  :class:`PooledSession` -- an LRU over mixed-mode platforms and their
  golden/snapshot chains -- so repeat campaigns skip the cold start
  that dominates small jobs.
* **Crash safety.**  Every job's progress lives in a
  :class:`~repro.resilience.SweepJournal` against the shared bus.  On
  startup the service runs ``fsck --repair`` over the bus, reloads job
  manifests, and re-enqueues interrupted jobs; their landed cells
  replay as byte-identical cache hits and only unlanded cells
  recompute -- the same guarantee ``repro sweep --resume`` proves.
* **Supervision.**  A supervisor thread relaunches dead runner threads
  (executor workers below them are already supervised by
  :class:`~repro.api.executor.ParallelExecutor`), enforces per-job
  deadlines, and refreshes obs gauges.  After any executor crash the
  bus is fsck'd before the next job runs.
* **Graceful drain.**  :meth:`drain` stops admitting (``/readyz`` goes
  503), interrupts running jobs *between* cells, and re-queues them
  durably -- a drained daemon restarts exactly where it left off.

Digest-neutrality: everything here is operational state.  Serving a
campaign over HTTP, from a warm pool, after three crashes, yields the
same canonical bytes as ``repro sweep`` in a fresh process.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path

from repro.api.executor import CellFailure, make_executor
from repro.api.result import SCHEMA_VERSION, dumps_canonical
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.resilience import RetryPolicy, SweepInterrupted, fsck_cache
from repro.serve.state import Job, JobStore, job_id_for, normalize_request
from repro.system.machine import DEFAULT_ENGINE


class AdmissionError(Exception):
    """A submission the service refuses right now.  ``status`` is the
    HTTP code the transport should answer with and ``retry_after`` the
    seconds a well-behaved client should wait before retrying."""

    status = 503

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class QueueFull(AdmissionError):
    """The bounded job queue is at capacity (503)."""

    status = 503


class ClientBusy(AdmissionError):
    """The client is at its in-flight cap (429)."""

    status = 429


class Draining(AdmissionError):
    """The service is shutting down and admits nothing new (503)."""

    status = 503


class UnknownJob(KeyError):
    """No job with that id."""


class PooledSession(Session):
    """A :class:`Session` whose platform cache is a bounded LRU.

    Platforms (and the golden runs + snapshot chains they own) are the
    expensive state a daemon must keep warm *and* must not hoard
    unboundedly: each one holds full memory images.  ``capacity`` caps
    the pool; the least-recently-used platform is evicted when a new
    one would exceed it.  Hit/miss/eviction tallies feed ``/stats``.
    """

    def __init__(
        self, capacity: int = 8, engine: str = DEFAULT_ENGINE
    ) -> None:
        super().__init__(cache_platforms=True, engine=engine)
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._platforms: OrderedDict = OrderedDict()
        self.pool_hits = 0
        self.pool_misses = 0
        self.pool_evictions = 0
        self._lock = threading.Lock()

    def platform(self, spec: ExperimentSpec):
        key = spec.platform_key()
        with self._lock:
            cached = self._platforms.get(key)
            if cached is not None:
                self._platforms.move_to_end(key)
                self.pool_hits += 1
                return cached
            self.pool_misses += 1
        # build outside the lock: platform construction is the expensive
        # golden run and must not serialize against pool bookkeeping
        platform = self._build(spec)
        with self._lock:
            self._platforms[key] = platform
            self._platforms.move_to_end(key)
            while len(self._platforms) > self.capacity:
                self._platforms.popitem(last=False)
                self.pool_evictions += 1
        return platform

    def _build(self, spec: ExperimentSpec):
        from repro.mixedmode.platform import MixedModePlatform

        return MixedModePlatform(
            spec.benchmark,
            machine_config=spec.machine,
            scale=spec.scale,
            seed=spec.seed,
            pcie_input=spec.pcie_input,
            engine=spec.engine or self.engine,
        )

    def pool_stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "platforms": len(self._platforms),
                "hits": self.pool_hits,
                "misses": self.pool_misses,
                "evictions": self.pool_evictions,
            }


class CampaignService:
    """The daemon core behind ``repro serve`` (transport-agnostic:
    the HTTP layer in :mod:`repro.serve.http` is one thin client)."""

    def __init__(
        self,
        state_dir: "str | Path",
        cache_dir: "str | Path | None" = None,
        *,
        queue_limit: int = 8,
        per_client_limit: int = 2,
        runners: int = 1,
        workers: int = 1,
        warm_platforms: int = 8,
        engine: "str | None" = None,
        retry: "RetryPolicy | None" = None,
        job_timeout: "float | None" = None,
        fsck_on_start: bool = True,
        before_job=None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.bus = (
            Path(cache_dir) if cache_dir is not None
            else self.state_dir / "bus"
        )
        self.queue_limit = max(1, queue_limit)
        self.per_client_limit = max(1, per_client_limit)
        self.runners = max(1, runners)
        self.workers = max(1, workers)
        self.engine = engine if engine is not None else DEFAULT_ENGINE
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=2, backoff_base=0.05
        )
        self.job_timeout = job_timeout
        self.fsck_on_start = fsck_on_start
        #: test/chaos instrumentation: called with the job right after
        #: it is claimed (status ``running``) and before any cell runs.
        self.before_job = before_job

        self.store = JobStore(self.state_dir / "jobs", self.bus)
        self.session = PooledSession(
            capacity=max(1, warm_platforms), engine=self.engine
        )
        self.started_at = time.monotonic()

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: deque[str] = deque()
        self._stops: dict[str, threading.Event] = {}
        self._cancelled: set[str] = set()
        self._timed_out: set[str] = set()
        self._active: dict[str, str] = {}  # runner name -> job id
        self._draining = False
        self._closed = False
        self._threads: list[threading.Thread] = []
        self._supervisor: "threading.Thread | None" = None
        self._runner_ids = 0
        self.counters = {
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "cells_done": 0,
            "records": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_stale": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_deaths": 0,
            "rejected_busy": 0,
            "rejected_full": 0,
            "rejected_draining": 0,
            "deduped": 0,
            "fsck_runs": 0,
            "fsck_quarantined": 0,
            "runner_relaunches": 0,
        }
        self.recovered: dict = {"jobs": 0, "damaged": [], "fsck": None}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover durable state, then launch runners + supervisor."""
        self.bus.mkdir(parents=True, exist_ok=True)
        if self.fsck_on_start:
            self.recovered["fsck"] = self._fsck()
        damaged = self.store.load_all()
        self.recovered["damaged"] = damaged
        with self._lock:
            for job in self.store.recoverable():
                # reconcile against the bus before re-queueing so the
                # manifest reflects what actually landed pre-crash
                if job.status == "running":
                    job.status = "queued"
                    job.resumes += 1
                    try:
                        journal = self.store.journal(job)
                        journal.reconcile(job.specs())
                    except (FileNotFoundError, ValueError, KeyError):
                        pass  # the run itself will rebuild/complain
                    self.store.save(job)
                self._stops[job.id] = threading.Event()
                self._queue.append(job.id)
                self.recovered["jobs"] += 1
        for _ in range(self.runners):
            self._spawn_runner()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn_runner(self) -> None:
        self._runner_ids += 1
        thread = threading.Thread(
            target=self._runner_loop,
            name=f"repro-serve-runner-{self._runner_ids}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def drain(self, timeout: "float | None" = 30.0) -> None:
        """Stop admitting, interrupt running jobs between cells, and
        re-queue them durably.  Idempotent; returns once the runner
        threads exit (or the timeout passes)."""
        with self._lock:
            self._draining = True
            for stop in self._stops.values():
                stop.set()
            self._wake.notify_all()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)

    def close(self, timeout: "float | None" = 30.0) -> None:
        """Drain and stop the supervisor (the test/embedding exit)."""
        self.drain(timeout=timeout)
        with self._lock:
            self._closed = True
            self._wake.notify_all()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self, request: dict, client: "str | None" = None
    ) -> "tuple[Job, bool]":
        """Admit one campaign; returns ``(job, created)``.

        Dedupe comes first: a request whose normalized content digest
        matches a queued, running, or done job attaches to it without
        consuming queue budget (resubmission is how clients poll-safely
        re-ask for results).  ``failed``/``cancelled`` jobs resubmit
        through normal admission and re-enter the queue.
        """
        payload, specs = normalize_request(request)
        job_id = job_id_for(payload)
        with self._lock:
            existing = self.store.jobs.get(job_id)
            if existing is not None and existing.status in (
                "queued", "running", "done"
            ):
                self.counters["deduped"] += 1
                return existing, False
            if self._draining:
                self.counters["rejected_draining"] += 1
                raise Draining("service is draining", retry_after=5)
            if len(self._queue) >= self.queue_limit:
                self.counters["rejected_full"] += 1
                raise QueueFull(
                    f"job queue is full ({self.queue_limit})",
                    retry_after=self._retry_after_locked(),
                )
            key = client or "anon"
            in_flight = sum(
                1 for job in self.store.jobs.values()
                if (job.client or "anon") == key
                and job.status in ("queued", "running")
            )
            if in_flight >= self.per_client_limit:
                self.counters["rejected_busy"] += 1
                raise ClientBusy(
                    f"client {key!r} already has {in_flight} jobs in "
                    f"flight (limit {self.per_client_limit})",
                    retry_after=self._retry_after_locked(),
                )
            if existing is not None:
                # failed/cancelled resubmission: same identity, fresh run
                job = existing
                job.status = "queued"
                job.error = None
                job.finished = None
                job.resumes += 1
                job.client = client
                self.store.save(job)
            else:
                job = self.store.create(
                    job_id, payload, specs, client=client
                )
            self._cancelled.discard(job_id)
            self._timed_out.discard(job_id)
            self._stops[job_id] = threading.Event()
            self._queue.append(job_id)
            self._wake.notify()
        return job, existing is None

    def _retry_after_locked(self) -> int:
        """A Retry-After estimate from observed job times: roughly one
        queue-drain's worth of seconds, clamped to [1, 120]."""
        durations = [
            job.run_seconds for job in self.store.jobs.values()
            if job.run_seconds is not None
        ]
        mean = (
            sum(durations) / len(durations) if durations else 1.0
        )
        outstanding = len(self._queue) + len(self._active) + 1
        return int(min(120, max(1, math.ceil(mean * outstanding))))

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (running jobs stop between
        cells; their landed results stay durable on the bus)."""
        with self._lock:
            job = self.store.jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            if job.status == "queued":
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
                job.status = "cancelled"
                job.finished = round(time.time(), 6)
                self.counters["jobs_cancelled"] += 1
                self.store.save(job)
            elif job.status == "running":
                self._cancelled.add(job_id)
                stop = self._stops.get(job_id)
                if stop is not None:
                    stop.set()
        return job

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        job = self.store.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def job_view(self, job: Job) -> dict:
        """The job manifest plus live journal counts (landed cells are
        read from the durable journal, so the view is restart-stable)."""
        view = job.to_dict()
        try:
            counts = self.store.journal(job).counts()
        except (FileNotFoundError, ValueError):
            counts = None
        view["journal"] = counts
        view["landed"] = counts["landed"] if counts else None
        return view

    def result_payload(self, job_id: str) -> "bytes | None":
        """The job's canonical result document -- byte-identical to
        ``repro sweep --json`` over the same grid.

        Materialized from the bus through the caching executor (all
        hits for a ``done`` job), so a restarted daemon serves exactly
        the bytes the original run produced.  ``None`` while the job is
        not ``done``.
        """
        job = self.job(job_id)
        if job.status != "done":
            return None
        specs = job.specs()
        executor = make_executor(
            cache_dir=str(self.bus), session=self.session
        )
        results = executor.run(specs)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "grid": job.grid,
            "results": [result.to_dict() for result in results],
        }
        return (dumps_canonical(payload) + "\n").encode("utf-8")

    def stats(self) -> dict:
        """Operational state for ``/stats`` (everything a fleet
        dashboard or the chaos suite wants in one read)."""
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self.store.jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            doc = {
                "uptime_seconds": round(
                    time.monotonic() - self.started_at, 3
                ),
                "draining": self._draining,
                "queue": {
                    "depth": len(self._queue),
                    "limit": self.queue_limit,
                    "running": len(self._active),
                    "runners": self.runners,
                    "per_client_limit": self.per_client_limit,
                },
                "jobs": by_status,
                "counters": dict(self.counters),
                "warm_pool": self.session.pool_stats(),
                "bus": str(self.bus),
                "recovered": dict(self.recovered),
            }
        done = doc["counters"]["cells_done"] + doc["counters"]["cache_hits"]
        doc["cells_per_sec"] = round(
            done / doc["uptime_seconds"], 3
        ) if doc["uptime_seconds"] > 0 else 0.0
        return doc

    def update_registry(self) -> None:
        """Mirror live state into the obs registry (``/metrics`` and
        ``repro top URL`` read the standard snapshot shape)."""
        from repro import obs

        if not obs.enabled():
            return
        with self._lock:
            obs.gauge("serve.queue_depth").set(len(self._queue))
            obs.gauge("serve.jobs_running").set(len(self._active))
            obs.gauge("serve.draining").set(1 if self._draining else 0)
            for name, value in self.counters.items():
                obs.gauge(f"serve.{name}").set(value)
            pool = self.session.pool_stats()
        obs.gauge("serve.warm_platforms").set(pool["platforms"])
        obs.gauge("serve.warm_hits").set(pool["hits"])
        obs.gauge("serve.warm_evictions").set(pool["evictions"])

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _runner_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            with self._lock:
                while not self._queue and not self._draining:
                    self._wake.wait(timeout=0.5)
                if self._draining:
                    return
                job_id = self._queue.popleft()
                job = self.store.jobs.get(job_id)
                if job is None or job.status != "queued":
                    continue
                job.status = "running"
                job.started = round(time.time(), 6)
                self._active[name] = job_id
                self.store.save(job)
            # no try/finally: if _run_job dies (it catches Exception, so
            # only BaseException kills it), the _active entry survives
            # as the tombstone _reap_runners uses to fail the orphan job
            self._run_job(job)
            with self._lock:
                self._active.pop(name, None)
                self._wake.notify_all()

    def _run_job(self, job: Job) -> None:
        stop = self._stops.setdefault(job.id, threading.Event())
        if self.before_job is not None:
            try:
                self.before_job(job)
            except Exception:
                pass  # instrumentation must never break a job
        crashed = False

        try:
            specs = job.specs()
            journal = self.store.journal(job)
            journal.reconcile(specs)
        except Exception as exc:
            self._finish_failed(job, f"{type(exc).__name__}: {exc}")
            return

        def fold(event: dict) -> None:
            nonlocal crashed
            journal.handle_event(event)
            etype = event.get("type")
            with self._lock:
                if etype == "cell_done":
                    self.counters["cells_done"] += 1
                    self.counters["records"] += event.get("records", 0)
                elif etype == "cache_hit":
                    self.counters["cache_hits"] += 1
                elif etype == "cache_stale":
                    self.counters["cache_stale"] += 1
                elif etype == "cache_miss":
                    self.counters["cache_misses"] += 1
                elif etype == "cell_retry":
                    self.counters["retries"] += 1
                elif etype == "cell_timeout":
                    self.counters["timeouts"] += 1
                elif etype == "worker_dead":
                    self.counters["worker_deaths"] += 1
            if etype in ("cell_retry", "cell_exhausted", "cell_timeout"):
                if "died" in str(event.get("error", "")):
                    crashed = True
            elif etype == "worker_dead":
                crashed = True

        executor = make_executor(
            workers=self.workers,
            cache_dir=str(self.bus),
            retry=self.retry,
            session=self.session,
        )
        t0 = time.monotonic()
        try:
            executor.run(specs, on_event=fold, stop=stop)
        except SweepInterrupted:
            journal.reconcile(specs)
            self._finish_interrupted(job)
            return
        except CellFailure as exc:
            crashed = crashed or "died" in exc.reason
            journal.reconcile(specs)
            self._finish_failed(job, str(exc), fsck=crashed)
            return
        except Exception as exc:  # a broken job must not kill its runner
            journal.reconcile(specs)
            self._finish_failed(
                job, f"{type(exc).__name__}: {exc}", fsck=True
            )
            return
        job.run_seconds = round(time.monotonic() - t0, 6)
        job.hits = getattr(executor, "last_hits", 0)
        job.misses = getattr(executor, "last_misses", 0)
        job.stale = getattr(executor, "last_stale", 0)
        job.status = "done"
        job.error = None
        job.finished = round(time.time(), 6)
        with self._lock:
            self.counters["jobs_done"] += 1
        self.store.save(job)
        if crashed:
            # the run recovered, but a worker died along the way: audit
            # the bus before the next job trusts it
            self._fsck()
        self.update_registry()

    def _finish_interrupted(self, job: Job) -> None:
        """A stop event fired: cancel, deadline, or drain -- in that
        order of precedence."""
        with self._lock:
            cancelled = job.id in self._cancelled
            timed_out = job.id in self._timed_out
            self._cancelled.discard(job.id)
            self._timed_out.discard(job.id)
        if cancelled:
            job.status = "cancelled"
            job.finished = round(time.time(), 6)
            with self._lock:
                self.counters["jobs_cancelled"] += 1
        elif timed_out:
            job.status = "failed"
            job.error = (
                f"deadline exceeded (job_timeout={self.job_timeout}s); "
                f"landed cells remain durable"
            )
            job.finished = round(time.time(), 6)
            with self._lock:
                self.counters["jobs_failed"] += 1
        else:
            # drain: back to the durable queue; a restart resumes here
            job.status = "queued"
            job.resumes += 1
        self.store.save(job)

    def _finish_failed(
        self, job: Job, error: str, fsck: bool = False
    ) -> None:
        job.status = "failed"
        job.error = error
        job.finished = round(time.time(), 6)
        with self._lock:
            self.counters["jobs_failed"] += 1
        self.store.save(job)
        if fsck:
            self._fsck()

    def _fsck(self) -> "dict | None":
        """``repro cache fsck --repair`` over the bus (startup and
        after executor crashes): damaged entries are quarantined so no
        job ever trusts a torn result."""
        try:
            report = fsck_cache(self.bus, repair=True)
        except FileNotFoundError:
            return None
        with self._lock:
            self.counters["fsck_runs"] += 1
            self.counters["fsck_quarantined"] += len(report.quarantined)
        return report.to_dict()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Relaunch dead runners, enforce job deadlines, refresh obs."""
        while True:
            with self._lock:
                if self._closed:
                    return
                draining = self._draining
            if not draining:
                self._reap_runners()
                self._enforce_deadlines()
            self.update_registry()
            time.sleep(0.25)

    def _reap_runners(self) -> None:
        dead: list[threading.Thread] = []
        with self._lock:
            for thread in self._threads:
                if not thread.is_alive():
                    dead.append(thread)
            for thread in dead:
                self._threads.remove(thread)
                job_id = self._active.pop(thread.name, None)
                if job_id is not None:
                    job = self.store.jobs.get(job_id)
                    if job is not None and job.status == "running":
                        job.status = "failed"
                        job.error = "runner thread died mid-job"
                        job.finished = round(time.time(), 6)
                        self.counters["jobs_failed"] += 1
                        self.store.save(job)
        for thread in dead:
            with self._lock:
                self.counters["runner_relaunches"] += 1
            self._fsck()
            self._spawn_runner()

    def _enforce_deadlines(self) -> None:
        if self.job_timeout is None:
            return
        now = time.time()
        with self._lock:
            for job_id in list(self._active.values()):
                job = self.store.jobs.get(job_id)
                if job is None or job.started is None:
                    continue
                if now - job.started > self.job_timeout:
                    self._timed_out.add(job_id)
                    stop = self._stops.get(job_id)
                    if stop is not None:
                        stop.set()

    # ------------------------------------------------------------------
    # test/bench helpers
    # ------------------------------------------------------------------
    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until the queue is empty and nothing is running (or
        the timeout passes); returns whether idle was reached."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._queue or self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wake.wait(timeout=min(0.2, remaining))
        return True
