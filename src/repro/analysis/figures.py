"""Drivers for the paper's figures (3, 4, 8, 9 plus helpers).

These run real injection campaigns through the mixed-mode platform.
Sample counts default far below the paper's 40,000/cell so the benches
complete on a laptop; pass larger ``n_injections`` to tighten the
confidence intervals (the statistics module sizes campaigns the same way
the paper's footnote 2 does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.injection.campaign import CampaignResult
from repro.system.machine import MachineConfig
from repro.system.outcome import OUTCOME_ORDER, Outcome

#: Published processor-core OMM rates shown in Fig. 4 for comparison
#: (per injected flip-flop soft error, single instance).  Values are the
#: bar heights of the paper's Fig. 4: LEON3 and IVM Alpha from [Cho 13],
#: IBM POWER6 from [Sanda 08], OpenRISC from [Meixner 07].
CORE_OMM_RATES: dict[str, float] = {
    "LEON": 0.016,
    "IVM": 0.007,
    "Power": 0.004,
    "OR": 0.029,
}


@dataclass
class Fig3Cell:
    """One (component, benchmark) bar of Fig. 3."""

    component: str
    benchmark: str
    result: CampaignResult

    def rates(self) -> dict[str, float]:
        table = self.result.table
        return {o.value: table.rate(o).rate for o in OUTCOME_ORDER}


@dataclass
class Fig3Result:
    """All cells for one component (one panel of Fig. 3)."""

    component: str
    cells: list[Fig3Cell] = field(default_factory=list)

    def mean_rate(self, outcome: Outcome) -> float:
        """Arithmetic mean across benchmarks (the paper's 'avg.' bar)."""
        if not self.cells:
            raise ValueError("no campaign cells")
        return sum(c.result.table.rate(outcome).rate for c in self.cells) / len(
            self.cells
        )

    def mean_erroneous(self) -> float:
        """Mean non-Vanished probability (paper: 1.4/1.7/2.2/1.7% for
        L2C/MCU/CCX/PCIe)."""
        return sum(c.result.table.erroneous.rate for c in self.cells) / len(
            self.cells
        )

    def mean_omm(self) -> float:
        """Mean OMM rate (the Fig. 4 uncore bars)."""
        return self.mean_rate(Outcome.OMM)


def fig3_outcome_rates(
    component: str,
    benchmarks: list[str],
    n_injections: int = 100,
    machine_config: MachineConfig = MachineConfig(
        cores=4, threads_per_core=2, l2_banks=8, l2_sets=16
    ),
    scale: float = 1.0 / 100_000.0,
    seed: int = 2015,
    session: "Session | None" = None,
) -> Fig3Result:
    """Run one Fig. 3 panel: campaigns over the given benchmarks.

    Pass a shared :class:`~repro.api.session.Session` to reuse platforms
    (and their golden runs) across panels.
    """
    session = session if session is not None else Session()
    out = Fig3Result(component)
    for short in benchmarks:
        spec = ExperimentSpec(
            benchmark=short,
            component=component,
            mode="injection",
            machine=machine_config,
            scale=scale,
            seed=seed,
            n=n_injections,
        )
        out.cells.append(Fig3Cell(component, short, session.campaign(spec)))
    return out


def fig4_omm_comparison(
    fig3_results: dict[str, Fig3Result],
) -> list[tuple[str, float, str]]:
    """Fig. 4: OMM rates of uncore components vs. published cores.

    Returns (name, omm_rate, kind) rows, uncore first, in paper order.
    """
    rows: list[tuple[str, float, str]] = []
    for comp in ("l2c", "mcu", "ccx", "pcie"):
        if comp in fig3_results:
            rows.append((comp.upper(), fig3_results[comp].mean_omm(), "uncore"))
    for name, rate in CORE_OMM_RATES.items():
        rows.append((name, rate, "core"))
    return rows
