"""Reproductions of the paper's inventory tables (1, 3, 4, 5).

Each function returns ``(headers, rows)`` ready for
:func:`repro.utils.render.render_table`; the row values are computed
from the living models (not re-typed constants) wherever a model exists,
so drift between the models and the paper is caught by the benches.
"""

from __future__ import annotations

from repro.faults.inventory import build_module
from repro.faults.models import DEFAULT_FAULT
from repro.soc.address import AddressMap
from repro.soc.geometry import HIGHLEVEL_STATE_BYTES, T2_GEOMETRY, UNCORE_TARGETS
from repro.system.outcome import OUTCOME_ORDER
from repro.workloads import ALL_BENCHMARKS, REGISTRY


def build_rtl_model(component: str, amap: "AddressMap | None" = None):
    """Instantiate one RTL uncore model (for inventory inspection)."""
    return build_module(component, amap=amap, ways=8)


def table1_highlevel_state():
    """Table 1: high-level uncore state per instance."""
    headers = ["Uncore component", "High-level state", "Size per instance"]
    rows = []
    for comp in UNCORE_TARGETS:
        entries = HIGHLEVEL_STATE_BYTES[comp]
        if not entries:
            rows.append((T2_GEOMETRY[comp].long_name, "(none)", "-"))
        for name, size in entries.items():
            if size >= 1024**3:
                size_str = f"{size // 1024**3}GB"
            elif size >= 1024:
                size_str = f"{size // 1024}KB"
            else:
                size_str = f"{size}B"
            rows.append((T2_GEOMETRY[comp].long_name, name, size_str))
    return headers, rows


def table3_inventory():
    """Table 3: instances / flip-flops / gates per component.

    Flip-flop counts for the four studied components are read from the
    RTL models themselves.
    """
    headers = ["Component", "Instances", "Flip-flops (per instance)", "Gates (per instance)"]
    rows = []
    for comp, spec in T2_GEOMETRY.items():
        if comp in UNCORE_TARGETS:
            ffs = build_rtl_model(comp).flip_flop_count()
        else:
            ffs = spec.flip_flops
        rows.append((spec.long_name, spec.instances, ffs, spec.gates))
    return headers, rows


def table4_targets():
    """Table 4: target / protected / inactive split, from the models."""
    headers = [
        "Component (instances)",
        "Target FFs (%)",
        "Protected",
        "Inactive",
    ]
    rows = []
    for comp in UNCORE_TARGETS:
        spec = T2_GEOMETRY[comp]
        model = build_rtl_model(comp)
        counts = model.flip_flop_count_by_class()
        from repro.rtl.registers import FlipFlopClass

        target = counts[FlipFlopClass.TARGET]
        prot = counts[FlipFlopClass.PROTECTED]
        inact = counts[FlipFlopClass.INACTIVE]
        total = model.flip_flop_count()
        rows.append(
            (
                f"{spec.name.upper()} ({spec.instances})",
                f"{target} ({target / total:.1%})",
                f"{prot} ({prot / total:.1%})",
                f"{inact} ({inact / total:.1%})",
            )
        )
    return headers, rows


def table5_benchmarks(measured_cycles: "dict[str, int] | None" = None):
    """Table 5: benchmark suite with paper lengths and input sizes.

    ``measured_cycles`` (short -> cycles) adds the reproduction's
    measured error-free lengths alongside the paper's.
    """
    headers = ["Suite", "Benchmark", "Paper cycles", "Input file", "Measured cycles"]
    rows = []
    for short in ALL_BENCHMARKS:
        meta = REGISTRY[short][0]
        input_str = (
            f"{meta.input_file_bytes / 1024 / 1024:.1f}MB"
            if meta.input_file_bytes >= 1024 * 1024
            else (f"{meta.input_file_bytes // 1024}KB" if meta.input_file_bytes else "none")
        )
        measured = ""
        if measured_cycles and short in measured_cycles:
            measured = str(measured_cycles[short])
        rows.append(
            (meta.suite, f"{meta.name} ({short})", f"{meta.paper_cycles:,}", input_str, measured)
        )
    return headers, rows


def fault_model_comparison(results):
    """Outcome-vs-fault-model comparison table.

    ``results`` is a list of injection-mode
    :class:`~repro.api.result.ExperimentResult` cells (typically one
    benchmark/component under several ``fault`` specs).  One row per
    cell: the fault spec, the five Fig. 3 outcome rates, the erroneous
    headline, and how many events the Protection filter masked.
    """
    headers = (
        ["Fault model"]
        + [o.value for o in OUTCOME_ORDER]
        + ["erroneous", "masked"]
    )
    rows = []
    for result in results:
        if result.spec.mode != "injection":
            raise ValueError(
                f"fault_model_comparison needs injection cells, got "
                f"{result.spec.mode!r}"
            )
        table = result.outcome_table()
        rows.append(
            [result.spec.fault or DEFAULT_FAULT]
            + [f"{table.rate(o).rate:.2%}" for o in OUTCOME_ORDER]
            + [str(table.erroneous), str(result.masked_count())]
        )
    return headers, rows
