"""Experiment drivers that regenerate every table and figure of the paper."""

from repro.analysis.tables import (
    fault_model_comparison,
    table1_highlevel_state,
    table3_inventory,
    table4_targets,
    table5_benchmarks,
)
from repro.analysis.figures import (
    CORE_OMM_RATES,
    fig3_outcome_rates,
    fig4_omm_comparison,
)

__all__ = [
    "CORE_OMM_RATES",
    "fault_model_comparison",
    "fig3_outcome_rates",
    "fig4_omm_comparison",
    "table1_highlevel_state",
    "table3_inventory",
    "table4_targets",
    "table5_benchmarks",
]
