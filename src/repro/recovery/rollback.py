"""Required-rollback-distance analysis (paper Sec. 5.2, Fig. 9).

Incremental checkpointing logs only the memory locations processor cores
modified between checkpoints.  An address-related uncore error can
corrupt a location *outside* that log, so correct recovery must roll
back to a checkpoint older than the last (error-free) modification of
the corrupted location.  The required distance for one error is

    injection_cycle - min over corrupted words of last_store_cycle(word)

(zero-store words force a rollback to the beginning of the run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.injection.campaign import CampaignResult
from repro.utils.cdf import Cdf


@dataclass
class RollbackAnalysis:
    """Aggregates rollback-distance samples into the Fig. 9 CDF."""

    component: str
    samples: list[int] = field(default_factory=list)

    @classmethod
    def from_campaigns(
        cls, component: str, campaigns: list[CampaignResult]
    ) -> "RollbackAnalysis":
        analysis = cls(component)
        for campaign in campaigns:
            analysis.samples.extend(campaign.rollback_distances())
        return analysis

    def cdf(self) -> Cdf:
        return Cdf(self.samples)

    def decade_series(self, max_exponent: int = 9) -> list[tuple[float, float]]:
        """Fig. 9 series: x -> fraction of memory-corrupting errors whose
        required rollback distance is <= x cycles."""
        return self.cdf().at_decades(max_exponent)

    def distance_for_coverage(self, coverage: float) -> float:
        """Rollback distance needed to cover a fraction of errors.

        The paper reports >400M cycles (full scale) for 99% coverage.
        """
        if not self.samples:
            raise ValueError("no rollback samples")
        return self.cdf().quantile(coverage)
