"""Incremental checkpointing model (paper Sec. 5.2 context).

Models a ReVive/SafetyNet-style incremental checkpoint scheme: every
``interval`` cycles a checkpoint records the set of memory words the
cores modified since the previous checkpoint.  Given a run's store log
the model reports per-checkpoint log sizes and answers the recovery
question Fig. 9 builds on: how far back must the system roll to find a
checkpoint whose log can restore a given corrupted word?
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointStats:
    """Sizes of the incremental logs over one run."""

    interval: int
    checkpoints: int
    mean_words_per_checkpoint: float
    max_words_per_checkpoint: int


class IncrementalCheckpointModel:
    """Replays a store log through periodic incremental checkpoints.

    Args:
        store_log: word address -> cycle of the *last* store (the
            machine's log); for full generality a list of (cycle, addr)
            events may be supplied instead via :meth:`from_events`.
        interval: checkpoint period in cycles.
    """

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        #: checkpoint index -> set of words logged in that interval
        self._logs: dict[int, set[int]] = {}
        self._horizon = 0

    def record_store(self, addr: int, cycle: int) -> None:
        """Feed one store event."""
        idx = cycle // self.interval
        self._logs.setdefault(idx, set()).add(addr & ~7)
        self._horizon = max(self._horizon, cycle)

    @classmethod
    def from_events(
        cls, events: list[tuple[int, int]], interval: int
    ) -> "IncrementalCheckpointModel":
        """Build from (cycle, addr) store events."""
        model = cls(interval)
        for cycle, addr in events:
            model.record_store(addr, cycle)
        return model

    def stats(self) -> CheckpointStats:
        if not self._logs:
            return CheckpointStats(self.interval, 0, 0.0, 0)
        sizes = [len(s) for s in self._logs.values()]
        return CheckpointStats(
            self.interval,
            len(self._logs),
            sum(sizes) / len(sizes),
            max(sizes),
        )

    def rollback_for_corruption(self, addr: int, corruption_cycle: int) -> int:
        """Cycles of rollback needed to recover corrupted word ``addr``.

        The system must restart from a checkpoint taken *before* the last
        store to ``addr`` (so that replaying the logs regenerates the
        value); the distance is measured from the corruption instant.
        If the word was never stored, the whole run must be replayed.
        """
        addr &= ~7
        last_store_idx = -1
        for idx, words in self._logs.items():
            if addr in words and idx > last_store_idx:
                if idx * self.interval <= corruption_cycle:
                    last_store_idx = idx
        if last_store_idx < 0:
            return corruption_cycle  # roll back to the beginning
        checkpoint_cycle = last_store_idx * self.interval
        return max(0, corruption_cycle - checkpoint_cycle)
