"""System-level checkpoint-recovery analyses (paper Sec. 5)."""

from repro.recovery.propagation import PropagationAnalysis
from repro.recovery.rollback import RollbackAnalysis
from repro.recovery.checkpoint import IncrementalCheckpointModel

__all__ = [
    "IncrementalCheckpointModel",
    "PropagationAnalysis",
    "RollbackAnalysis",
]
