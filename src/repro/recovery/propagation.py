"""Error-propagation latency analysis (paper Sec. 5.1, Fig. 8).

Software- or architecture-level detection (EDDI, RMT) can see an uncore
error only once a core receives an erroneous value; the detection latency
is therefore bounded below by the propagation latency measured here: the
cycles from the flip until either an erroneous return packet reaches the
cores or a core first loads a corrupted memory word.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.injection.campaign import CampaignResult
from repro.utils.cdf import Cdf


@dataclass
class PropagationAnalysis:
    """Aggregates propagation-latency samples into the Fig. 8 CDF."""

    component: str
    samples: list[int] = field(default_factory=list)

    @classmethod
    def from_campaigns(
        cls, component: str, campaigns: list[CampaignResult]
    ) -> "PropagationAnalysis":
        analysis = cls(component)
        for campaign in campaigns:
            analysis.samples.extend(campaign.propagation_latencies())
        return analysis

    def cdf(self) -> Cdf:
        return Cdf(self.samples)

    def decade_series(self, max_exponent: int = 9) -> list[tuple[float, float]]:
        """Fig. 8 series: x -> fraction of propagating errors with
        latency <= x cycles."""
        return self.cdf().at_decades(max_exponent)

    @property
    def mean(self) -> float:
        """Average propagation latency (paper: 36M cycles for L2C at
        full scale; scales with the workload scale factor)."""
        if not self.samples:
            raise ValueError("no propagation samples")
        return sum(self.samples) / len(self.samples)

    def fraction_beyond(self, cycles: float) -> float:
        return self.cdf().fraction_greater(cycles)
