"""Physical address map.

OpenSPARC T2 interleaves physical addresses across the eight L2 cache
banks on 64-byte cache-line boundaries; each pair of L2 banks shares one
of the four DRAM controllers.  Each L2C/MCU instance therefore serves a
disjoint address range -- the property QRR relies on to keep per-bank
request ordering sufficient (paper Sec. 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BYTES = 8
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


@dataclass(frozen=True)
class AddressMap:
    """Line/bank/set/tag decomposition of physical addresses.

    Attributes:
        l2_banks: number of L2 cache banks (line-interleaved).
        l2_sets: sets per L2 bank.
        mcus: number of DRAM controllers (each serves
            ``l2_banks / mcus`` banks).
    """

    l2_banks: int = 8
    l2_sets: int = 64
    mcus: int = 4

    def __post_init__(self) -> None:
        if self.l2_banks % self.mcus:
            raise ValueError("l2_banks must be a multiple of mcus")
        for field_name, value in (
            ("l2_banks", self.l2_banks),
            ("l2_sets", self.l2_sets),
            ("mcus", self.mcus),
        ):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{field_name} must be a positive power of two")
        # precomputed decomposition constants: the decode methods run on
        # every memory operation, so they must not re-derive shifts
        bank_shift = LINE_BYTES.bit_length() - 1  # log2(64) = 6
        set_shift = bank_shift + (self.l2_banks.bit_length() - 1)
        tag_shift = set_shift + (self.l2_sets.bit_length() - 1)
        object.__setattr__(self, "_bank_shift", bank_shift)
        object.__setattr__(self, "_bank_mask", self.l2_banks - 1)
        object.__setattr__(self, "_set_shift", set_shift)
        object.__setattr__(self, "_set_mask", self.l2_sets - 1)
        object.__setattr__(self, "_tag_shift", tag_shift)
        object.__setattr__(self, "_banks_per_mcu", self.l2_banks // self.mcus)

    @property
    def bank_shift(self) -> int:
        return self._bank_shift

    @property
    def banks_per_mcu(self) -> int:
        return self._banks_per_mcu

    def word_align(self, addr: int) -> int:
        return addr & ~(WORD_BYTES - 1)

    def is_word_aligned(self, addr: int) -> bool:
        return (addr & (WORD_BYTES - 1)) == 0

    def line_addr(self, addr: int) -> int:
        """Align to the containing 64-byte cache line."""
        return addr & ~(LINE_BYTES - 1)

    def word_in_line(self, addr: int) -> int:
        """Word index (0-7) within the cache line."""
        return (addr & (LINE_BYTES - 1)) >> 3

    def bank_of(self, addr: int) -> int:
        """L2 bank serving this address (line-interleaved)."""
        return (addr >> self._bank_shift) & self._bank_mask

    def mcu_of(self, addr: int) -> int:
        """DRAM controller serving this address."""
        return self.bank_of(addr) // self._banks_per_mcu

    def mcu_of_bank(self, bank: int) -> int:
        return bank // self._banks_per_mcu

    def banks_of_mcu(self, mcu: int) -> tuple[int, ...]:
        """The L2 banks that sit in front of a given MCU."""
        base = mcu * self._banks_per_mcu
        return tuple(range(base, base + self._banks_per_mcu))

    def set_of(self, addr: int) -> int:
        """L2 set index within the bank."""
        return (addr >> self._set_shift) & self._set_mask

    def tag_of(self, addr: int) -> int:
        """L2 tag for the address."""
        return addr >> self._tag_shift

    def rebuild_addr(self, tag: int, set_index: int, bank: int) -> int:
        """Inverse of the tag/set/bank decomposition (line aligned)."""
        return (
            (tag << self._tag_shift)
            | (set_index << self._set_shift)
            | (bank << self._bank_shift)
        )
