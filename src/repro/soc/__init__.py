"""SoC fabric definitions: T2 geometry, packets, physical address map."""

from repro.soc.geometry import ComponentSpec, T2_GEOMETRY, UNCORE_TARGETS
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType
from repro.soc.address import AddressMap

__all__ = [
    "AddressMap",
    "ComponentSpec",
    "CpxPacket",
    "CpxType",
    "PcxPacket",
    "PcxType",
    "T2_GEOMETRY",
    "UNCORE_TARGETS",
]
