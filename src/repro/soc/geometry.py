"""OpenSPARC T2 component inventory (paper Tables 3 and 4).

These are the published figures for the OpenSPARC T2 SoC (500M
transistors, eight cores, eight L2 cache banks, four DRAM controllers,
one crossbar, one PCI Express controller).  The RTL models in
:mod:`repro.uncore` declare register inventories whose flip-flop totals
match these numbers exactly; the tests assert the correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentSpec:
    """Inventory of one component type (one row of Tables 3 and 4).

    Attributes:
        name: short component name as used in the paper.
        long_name: descriptive name.
        instances: number of instances on the chip.
        flip_flops: flip-flops per instance (Table 3).
        gates: gate count per instance (Table 3).
        target_ffs: flip-flops eligible for error injection (Table 4);
            ``None`` for components the paper does not inject into.
        protected_ffs: ECC/CRC-protected flip-flops, excluded (Table 4).
        inactive_ffs: BIST/redundancy flip-flops, excluded (Table 4).
    """

    name: str
    long_name: str
    instances: int
    flip_flops: int
    gates: int
    target_ffs: int | None = None
    protected_ffs: int | None = None
    inactive_ffs: int | None = None

    @property
    def target_fraction(self) -> float | None:
        """Fraction of flip-flops targeted for injection (Table 4 %)."""
        if self.target_ffs is None:
            return None
        return self.target_ffs / self.flip_flops

    @property
    def total_flip_flops(self) -> int:
        """Flip-flops across all instances."""
        return self.instances * self.flip_flops

    @property
    def total_gates(self) -> int:
        """Gates across all instances."""
        return self.instances * self.gates


#: Table 3 (plus the Table 4 split for the four studied components).
T2_GEOMETRY: dict[str, ComponentSpec] = {
    "core": ComponentSpec(
        name="core",
        long_name="Processor Core",
        instances=8,
        flip_flops=44_288,
        gates=513_597,
    ),
    "l2c": ComponentSpec(
        name="l2c",
        long_name="L2 Cache Controller",
        instances=8,
        flip_flops=31_675,
        gates=210_540,
        target_ffs=18_369,
        protected_ffs=8_650,
        inactive_ffs=4_656,
    ),
    "mcu": ComponentSpec(
        name="mcu",
        long_name="DRAM Controller",
        instances=4,
        flip_flops=18_068,
        gates=155_726,
        target_ffs=12_007,
        protected_ffs=4_782,
        inactive_ffs=1_279,
    ),
    "ccx": ComponentSpec(
        name="ccx",
        long_name="Crossbar Interconnect",
        instances=1,
        flip_flops=41_521,
        gates=370_738,
        target_ffs=41_181,
        protected_ffs=0,
        inactive_ffs=340,
    ),
    "pcie": ComponentSpec(
        name="pcie",
        long_name="PCI Express I/O Controller",
        instances=1,
        flip_flops=29_022,
        gates=376_988,
        target_ffs=23_483,
        protected_ffs=5_539,
        inactive_ffs=0,
    ),
    "niu": ComponentSpec(
        name="niu",
        long_name="Network Interface Unit",
        instances=1,
        flip_flops=135_699,
        gates=1_297_427,
    ),
    "siu": ComponentSpec(
        name="siu",
        long_name="System Interface Unit",
        instances=1,
        flip_flops=16_908,
        gates=105_695,
    ),
    "ncu": ComponentSpec(
        name="ncu",
        long_name="Non-Cacheable Unit",
        instances=1,
        flip_flops=17_338,
        gates=143_374,
    ),
}

#: The four uncore components the paper studies, in its order.
UNCORE_TARGETS: tuple[str, ...] = ("l2c", "mcu", "ccx", "pcie")

#: Table 1 -- high-level uncore state per instance (name -> bytes).
HIGHLEVEL_STATE_BYTES: dict[str, dict[str, int]] = {
    "l2c": {
        "tag_address_array": 28 * 1024,
        "cache_line_state_bits": 5 * 1024,
        "cache_data_array": 512 * 1024,
        "l1_cache_directory": 2 * 1024,
    },
    "mcu": {"dram_contents": 4 * 1024**3},
    "ccx": {},
    "pcie": {"rx_transfer_buffer": 8 * 1024, "tx_transfer_buffer": 4 * 1024},
}


def chip_flip_flop_total() -> int:
    """Total flip-flops across all components and instances."""
    return sum(spec.total_flip_flops for spec in T2_GEOMETRY.values())


def chip_gate_total() -> int:
    """Total gates across all components and instances."""
    return sum(spec.total_gates for spec in T2_GEOMETRY.values())
