"""The QRR record table (paper Sec. 6.1, Fig. "QRR").

The record table keeps every request packet from its acceptance by the
uncore component until the component has *completely* finished the
associated operation.  For the L2C that means:

* loads/atomics: until the return packet has left the component;
* store hits: until the store ack has left;
* store misses: the ack leaves early, but the entry is kept until the
  miss-buffer completes the line fill and the data array write (the
  paper's post-return-packet processing case).

The table maintains a *total order* over incomplete requests -- stricter
than the bank's native per-line ordering -- so replay reproduces any
legal serialization (Sec. 6.3 property 2).

Entries additionally remember, for completed-but-undelivered operations
(the reply was still sitting in the output queue when the error struck),
the exact return packet, so replay can resend the reply instead of
re-executing a non-idempotent atomic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.packets import CpxPacket, PcxPacket, PcxType

#: Record table capacity (paper Fig. "QRR": 32 entries).
CAPACITY = 32


@dataclass
class RecordEntry:
    """One incomplete request tracked by the QRR controller."""

    order: int
    pkt: PcxPacket
    #: the early store-miss ack has been delivered to the core
    ack_delivered: bool = False
    #: the architected effect has been applied (exec stage observed)
    executed: bool = False
    #: reply produced at execute time (None for store-miss completion)
    saved_reply: "CpxPacket | None" = None
    #: the reply has been delivered to the core
    reply_delivered: bool = False

    @property
    def is_store(self) -> bool:
        return self.pkt.ptype is PcxType.STORE


class RecordTable:
    """Ordered table of incomplete requests (bounded, back-pressuring)."""

    def __init__(self, capacity: int = CAPACITY) -> None:
        self.capacity = capacity
        self._entries: dict[int, RecordEntry] = {}
        self._order = 0
        #: completion statistics
        self.recorded = 0
        self.completed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def record(self, pkt: PcxPacket) -> None:
        """Track a newly-accepted request."""
        if self.full:
            raise RuntimeError("record table overflow (caller must gate accept)")
        self._order += 1
        self._entries[pkt.reqid] = RecordEntry(self._order, pkt)
        self.recorded += 1

    def get(self, reqid: int) -> "RecordEntry | None":
        return self._entries.get(reqid)

    def mark_executed(self, reqid: int, reply: "CpxPacket | None") -> None:
        entry = self._entries.get(reqid)
        if entry is None:
            return
        entry.executed = True
        entry.saved_reply = reply
        if entry.is_store and entry.ack_delivered:
            # store miss: ack already out, fill now complete -> done
            self._delete(reqid)
        elif entry.is_store and reply is None:
            # store-miss completion before the ack left: keep until ack
            pass

    def mark_delivered(self, cpx: CpxPacket) -> None:
        """A return packet left the component toward the cores."""
        entry = self._entries.get(cpx.reqid)
        if entry is None:
            return
        if entry.is_store:
            entry.ack_delivered = True
            entry.reply_delivered = True
            if entry.executed:
                self._delete(cpx.reqid)
        else:
            entry.reply_delivered = True
            if entry.executed:
                self._delete(cpx.reqid)

    def _delete(self, reqid: int) -> None:
        if reqid in self._entries:
            del self._entries[reqid]
            self.completed += 1

    def incomplete_in_order(self) -> list[RecordEntry]:
        """All tracked entries, oldest first (the replay sequence)."""
        return sorted(self._entries.values(), key=lambda e: e.order)

    def clear(self) -> None:
        self._entries.clear()
