"""Quick Replay Recovery (QRR) -- the paper's Sec. 6 contribution.

QRR handles uncore soft errors without engaging the processor cores:
a record table tracks every incomplete request; logic parity detects a
flip with cycle-level latency; recovery gates the component's writes and
outputs, resets its flip-flops (preserving configuration registers and
the ECC-protected data buffers), and replays the recorded requests in
their original total order.
"""

from repro.qrr.coverage import (
    QrrCoverage,
    classify_coverage,
    improvement_factor,
    residual_error_fraction,
)
from repro.qrr.record import RecordEntry, RecordTable
from repro.qrr.servers import QrrL2cServer, QrrMcuServer
from repro.qrr.campaign import QrrCampaign, QrrCampaignResult

__all__ = [
    "QrrCampaign",
    "QrrCampaignResult",
    "QrrCoverage",
    "QrrL2cServer",
    "QrrMcuServer",
    "RecordEntry",
    "RecordTable",
    "classify_coverage",
    "improvement_factor",
    "residual_error_fraction",
]
