"""QRR flip-flop coverage classification (paper Sec. 6.4).

Three flip-flop categories are selectively radiation-hardened instead of
being covered by logic parity + replay:

1. **Timing-critical** flip-flops without slack for the parity XOR tree
   (1,650 in L2C, 36 in MCU).
2. **Configuration** flip-flops that reset+replay cannot restore
   (55 in L2C, 309 in MCU).
3. The **QRR controller's own** flip-flops (812 per instance).

Everything else is parity-covered: a single flip is detected with
cycle-level latency and recovered by replay.  The residual error
probability with QRR is then (paper footnote 15)::

    covered x 0 + hardened_fraction x 1/1000 = ~0.013%

of the unprotected rate, i.e. a >100x improvement even if every residual
error were erroneous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.module import RtlModule
from repro.rtl.registers import FlipFlopClass

#: QRR controller flip-flops per protected instance (record table etc.).
QRR_CONTROLLER_FFS = 812

#: Soft-error-rate reduction factor of radiation-hardened flip-flops
#: [Lilja 13], used by the paper's Sec. 6.4 arithmetic.
HARDENING_SER_REDUCTION = 1000.0


@dataclass(frozen=True)
class QrrCoverage:
    """Per-instance coverage summary for one protected component."""

    component: str
    target_ffs: int
    parity_covered: int
    hardened_timing: int
    hardened_config: int
    qrr_controller: int

    @property
    def hardened_total(self) -> int:
        """All selectively-hardened flip-flops (incl. the controller)."""
        return self.hardened_timing + self.hardened_config + self.qrr_controller

    @property
    def covered_fraction(self) -> float:
        return self.parity_covered / (self.target_ffs + self.qrr_controller)


def classify_coverage(module: RtlModule, component: str) -> QrrCoverage:
    """Classify a module's target flip-flops into QRR categories."""
    timing = 0
    config = 0
    covered = 0
    for reg in module.registers().values():
        if reg.ff_class is not FlipFlopClass.TARGET:
            continue
        if reg.timing_critical:
            timing += reg.flip_flops
        elif reg.config:
            config += reg.flip_flops
        else:
            covered += reg.flip_flops
    return QrrCoverage(
        component=component,
        target_ffs=module.target_flip_flop_count(),
        parity_covered=covered,
        hardened_timing=timing,
        hardened_config=config,
        qrr_controller=QRR_CONTROLLER_FFS,
    )


def is_parity_covered(module: RtlModule, reg_name: str) -> bool:
    """Whether a flipped register is covered by logic parity."""
    reg = module.registers()[reg_name]
    return (
        reg.ff_class is FlipFlopClass.TARGET
        and not reg.timing_critical
        and not reg.config
    )


def residual_error_fraction(
    coverage: QrrCoverage, hardening_reduction: float = HARDENING_SER_REDUCTION
) -> float:
    """Residual soft-error probability with QRR, as a fraction of the
    unprotected component's (paper footnote 15).

    Parity-covered flips recover with probability 1 (contribution 0);
    hardened flips (incl. the QRR controller's own) retain 1/1000 of
    their raw rate.
    """
    total = coverage.target_ffs + coverage.qrr_controller
    hardened = coverage.hardened_total
    return (hardened / total) / hardening_reduction


def improvement_factor(
    coverage: QrrCoverage, hardening_reduction: float = HARDENING_SER_REDUCTION
) -> float:
    """Erroneous-outcome improvement factor (paper: >100x).

    Conservative, exactly as the paper: assumes every residual hardened-FF
    error produces an erroneous (non-Vanished) outcome.
    """
    return 1.0 / residual_error_fraction(coverage, hardening_reduction)
