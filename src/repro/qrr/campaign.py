"""QRR effectiveness campaign (paper Sec. 6.4).

Injects bit flips into parity-covered flip-flops of a QRR-protected L2C
or MCU instance and verifies that the application still completes with
the correct output -- the paper reports successful recovery for *all*
such injections (>400,000 runs at full scale).  Hardened flip-flops are
handled analytically via :func:`repro.qrr.coverage.improvement_factor`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mixedmode.platform import MixedModePlatform
from repro.qrr.coverage import classify_coverage
from repro.qrr.servers import QrrL2cServer, QrrMcuServer


@dataclass
class QrrRun:
    """Record of one QRR-protected injection run."""

    instance: int
    injection_cycle: int
    detected: bool
    recovered: bool
    recovery_cycles: list[int] = field(default_factory=list)


@dataclass
class QrrCampaignResult:
    """Aggregate of one QRR injection campaign."""

    component: str
    benchmark: str
    injections: int = 0
    detected: int = 0
    recovered: int = 0
    failures: list[tuple] = field(default_factory=list)
    recovery_cycles: list[int] = field(default_factory=list)
    runs: list[QrrRun] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.injections if self.injections else 0.0

    @property
    def max_recovery_cycles(self) -> int:
        return max(self.recovery_cycles, default=0)


class QrrCampaign:
    """Runs QRR-protected injections on top of a mixed-mode platform."""

    def __init__(self, platform: MixedModePlatform, component: str) -> None:
        if component not in ("l2c", "mcu"):
            raise ValueError("QRR protects the memory-subsystem components")
        self.platform = platform
        self.component = component

    def _covered_bits(self, server) -> list[int]:
        """Indices of parity-covered target bits (detection candidates)."""
        module = server.rtl
        covered = []
        for idx, (name, _entry, _bit) in enumerate(module.target_bits()):
            reg = module.registers()[name]
            if not reg.timing_critical and not reg.config:
                covered.append(idx)
        return covered

    def run(self, n_injections: int, seed: int = 0) -> QrrCampaignResult:
        plat = self.platform
        result = QrrCampaignResult(self.component, plat.benchmark)
        rng = random.Random(seed)
        covered_cache: "list[int] | None" = None
        for _ in range(n_injections):
            if self.component == "l2c":
                instance = rng.randrange(plat.machine_config.l2_banks)
            else:
                instance = rng.randrange(plat.machine_config.mcus)
            cycle = rng.randrange(1, max(2, plat.golden.cycles - 1))
            run_ok, rec_cycles, detected = self._one_run(
                instance, cycle, rng, covered_cache_holder=lambda s: None
            )
            result.injections += 1
            result.detected += int(detected)
            if run_ok:
                result.recovered += 1
            else:
                result.failures.append((instance, cycle))
            result.recovery_cycles.extend(rec_cycles)
            result.runs.append(
                QrrRun(instance, cycle, bool(detected), run_ok, list(rec_cycles))
            )
        return result

    def _one_run(self, instance: int, cycle: int, rng, covered_cache_holder):
        plat = self.platform
        machine = plat.machine
        _snap_cycle, snap = plat.golden.snapshot_at_or_before(cycle)
        machine.restore(snap)
        machine.run_until_cycle(cycle)
        # quiesce the component, then swap in the QRR-protected RTL server
        for _ in range(plat.cosim.quiesce_limit):
            if plat._component_idle(self.component, instance):
                break
            machine.step()
        if self.component == "l2c":
            server = QrrL2cServer(machine, instance)
        else:
            server = QrrMcuServer(machine, instance)
        server.attach()
        # warm up so the record table holds live in-flight requests
        warmup = plat.cosim.warmup_min + rng.randrange(
            max(1, plat.cosim.warmup_jitter)
        )
        for _ in range(warmup):
            machine.step()
        # flip a parity-covered bit; detection fires the same cycle
        covered = self._covered_bits(server)
        bit = covered[rng.randrange(len(covered))]
        _reg, _entry, _b, detected = server.inject(bit, machine.cycle)
        # run through recovery until the component is quiescent again
        for _ in range(50_000):
            machine.step()
            if (
                not server.recovering
                and server.in_flight() == 0
                and not machine.has_trap()
            ):
                break
        server.detach()
        if machine.any_trap() is not None:
            return False, server.recovery_cycles_log, detected
        hang_cap = int(plat.golden.cycles * plat.cosim.hang_factor) + 50_000
        final = machine.run(hang_factor_cycles=hang_cap)
        ok = (
            final.completed
            and final.trap is None
            and final.output == plat.golden.output
        )
        return ok, server.recovery_cycles_log, detected

    def coverage_summary(self):
        """Coverage classification of the protected component."""
        if self.component == "l2c":
            server = QrrL2cServer(self.platform.machine, 0)
            server.release = None  # not attached; probe only
            module = server.rtl
        else:
            server = QrrMcuServer(self.platform.machine, 0)
            module = server.rtl
        return classify_coverage(module, self.component)
