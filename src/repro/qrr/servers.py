"""QRR-protected uncore servers.

These wrap an RTL component with the QRR controller: request/completion
monitors feeding the record table, parity-based error detection, and the
gate -> reset -> replay -> resume recovery sequence of Sec. 6.2.  They
implement the machine's server interface, so a campaign can swap them in
exactly like a co-simulation adapter.
"""

from __future__ import annotations

from collections import deque

from repro.qrr.coverage import is_parity_covered
from repro.qrr.record import RecordTable
from repro.soc.packets import (
    CpxPacket,
    CpxType,
    McuOp,
    McuReply,
    McuRequest,
    PcxPacket,
)
from repro.uncore.l2c import L2cRtl
from repro.uncore.mcu import McuRtl


class QrrL2cServer:
    """An L2C bank protected by logic parity + QRR."""

    def __init__(self, machine, bank: int) -> None:
        self.machine = machine
        self.bank = bank
        self.hl = machine.l2banks[bank]
        self.rtl = L2cRtl(
            bank, machine.amap, machine.config.l2_ways, send_mcu=machine._send_mcu
        )
        self.rtl.load_state(machine.l2states[bank])
        self.record = RecordTable()
        #: replay queue during recovery (entries in original total order)
        self._replay: deque = deque()
        #: store-miss reqids whose duplicate replayed ack must be filtered
        self._suppress_ack: set[int] = set()
        #: saved replies to re-emit (completed ops whose reply was wiped)
        self._resend: deque = deque()
        #: invalidations pending at reset time, re-emitted after recovery
        self._resend_invs: deque = deque()
        self.recovering = False
        self.detected_flips = 0
        self.undetected_flips = 0
        self.recoveries = 0
        self.recovery_started_at = 0
        self.recovery_cycles_log: list[int] = []

    # ------------------------------------------------------------------
    # Error injection + parity detection
    # ------------------------------------------------------------------
    def inject(self, bit_index: int, cycle: int) -> tuple[str, int, int, bool]:
        """Flip a target bit; returns (reg, entry, bit, detected).

        Parity-covered flips are detected immediately and the component
        is gated the same cycle (the paper's Sec. 6.2 per-signal routing
        fix prevents corrupt outputs escaping in the detection window).
        """
        loc = self.rtl.flip_target_bit(bit_index)
        covered = is_parity_covered(self.rtl, loc[0])
        if covered:
            self.detected_flips += 1
            self._begin_recovery(cycle)
        else:
            self.undetected_flips += 1
        return (*loc, covered)

    def _begin_recovery(self, cycle: int) -> None:
        """Gate writes/outputs; capture undelivered work; reset; arm replay."""
        rtl = self.rtl
        rtl.write_disable = True
        self.recovering = True
        self.recoveries += 1
        self.recovery_started_at = cycle
        # capture pending invalidations (directory updates already applied
        # to the preserved SRAMs; the in-flight INV packets must still go out)
        self._resend_invs.clear()
        for i in range(len(rtl.invq_valid.values)):
            if rtl.invq_valid.read(i):
                self._resend_invs.append(
                    CpxPacket(
                        CpxType.INVALIDATE,
                        rtl.invq_core.read(i),
                        0,
                        rtl.invq_addr.read(i),
                        0,
                        0,
                    )
                )
        # capture CPX packets wiped from the output queue: the record
        # table's saved replies cover them (resent below); INVs in the OQ
        # are captured directly
        head = rtl.oq_head.value % 16
        for k in range(rtl.oq_count.value):
            idx = (head + k) % 16
            if rtl._entry_valid("oq", idx):
                if rtl._registers["oq_ptype"].read(idx) == int(CpxType.INVALIDATE):
                    self._resend_invs.append(
                        CpxPacket(
                            CpxType.INVALIDATE,
                            rtl._registers["oq_core"].read(idx),
                            0,
                            rtl._registers["oq_addr"].read(idx),
                            0,
                            0,
                        )
                    )
        # reset the flip-flops (config + ECC-protected buffers preserved)
        rtl.reset_flip_flops(preserve_config=True, preserve_protected=True)
        rtl.write_disable = False
        # build the replay sequence from the record table
        self._replay.clear()
        self._resend.clear()
        self._suppress_ack.clear()
        for entry in self.record.incomplete_in_order():
            if entry.executed and not entry.reply_delivered:
                # effect applied, reply wiped: resend the saved reply
                # (never re-execute a completed atomic)
                if entry.saved_reply is not None:
                    self._resend.append(entry.saved_reply)
                elif entry.is_store:
                    # store-miss completed but its early ack was wiped
                    self._resend.append(
                        CpxPacket(
                            CpxType.STORE_ACK,
                            entry.pkt.core,
                            entry.pkt.thread,
                            entry.pkt.addr,
                            0,
                            entry.pkt.reqid,
                        )
                    )
            elif not entry.executed:
                if entry.is_store and entry.ack_delivered:
                    self._suppress_ack.add(entry.pkt.reqid)
                self._replay.append(entry.pkt)
        self.record.clear()

    # ------------------------------------------------------------------
    # Machine server interface
    # ------------------------------------------------------------------
    def accept(self, pkt: PcxPacket, cycle: int) -> bool:
        if self.recovering or self.record.full:
            return False
        if not self.rtl.accept(pkt, cycle):
            return False
        self.record.record(pkt)
        return True

    def deliver_mcu_reply(self, reply: McuReply) -> None:
        self.rtl.deliver_mcu_reply(reply)

    def dma_update(self, addr: int, value: int) -> None:
        self.rtl.dma_update(addr, value)

    def tick(self, cycle: int) -> list[CpxPacket]:
        out: list[CpxPacket] = []
        if self.recovering:
            # replay recorded packets in original order, as IQ space allows
            while self._replay:
                pkt = self._replay[0]
                if not self.rtl.accept(pkt, cycle):
                    break
                self.record.record(pkt)
                self._replay.popleft()
            if not self._replay:
                self.recovering = False
                self.recovery_cycles_log.append(cycle - self.recovery_started_at)
            # re-emit captured invalidations (bounded per cycle)
            for _ in range(2):
                if self._resend_invs:
                    out.append(self._resend_invs.popleft())
        # re-emit saved replies of completed ops (bounded per cycle)
        for _ in range(2):
            if self._resend:
                out.append(self._resend.popleft())
        produced = self.rtl.tick(cycle)
        # completion monitoring (Sec. 6.1)
        for reqid, reply in self.rtl.exec_log:
            self.record.mark_executed(reqid, reply)
        filtered: list[CpxPacket] = []
        for cpx in produced:
            if (
                cpx.ctype is CpxType.STORE_ACK
                and cpx.reqid in self._suppress_ack
            ):
                self._suppress_ack.discard(cpx.reqid)
                entry = self.record.get(cpx.reqid)
                if entry is not None:
                    entry.ack_delivered = True
                continue
            self.record.mark_delivered(cpx)
            filtered.append(cpx)
        return out + filtered

    def in_flight(self) -> int:
        return (
            self.rtl.in_flight()
            + len(self._replay)
            + len(self._resend)
            + len(self._resend_invs)
        )

    # ------------------------------------------------------------------
    def attach(self) -> None:
        self.machine.l2banks[self.bank] = self
        self.machine.uncore_changed()

    def detach(self) -> None:
        self.rtl.extract_state(self.machine.l2states[self.bank])
        self.machine.l2banks[self.bank] = self.hl
        self.machine.uncore_changed()


class QrrMcuServer:
    """An MCU protected by logic parity + QRR.

    Reads are tracked in the record table and replayed (idempotent);
    writes survive recovery in the ECC-protected write-data buffer, from
    which the controller re-issues them before any replayed read (the
    paper covers MCU requests through the L2C record tables -- footnote
    12; a controller-local table is behaviourally equivalent and keeps
    the recovery domain self-contained).
    """

    def __init__(self, machine, mcu_idx: int) -> None:
        self.machine = machine
        self.mcu_idx = mcu_idx
        self.hl = machine.mcus[mcu_idx]
        self.rtl = McuRtl(mcu_idx, machine.dram)
        #: read requests not yet answered, in arrival order
        self._reads: deque[McuRequest] = deque()
        self._replay: deque[McuRequest] = deque()
        self.recovering = False
        self.detected_flips = 0
        self.undetected_flips = 0
        self.recoveries = 0
        self.recovery_started_at = 0
        self.recovery_cycles_log: list[int] = []

    def inject(self, bit_index: int, cycle: int) -> tuple[str, int, int, bool]:
        loc = self.rtl.flip_target_bit(bit_index)
        covered = is_parity_covered(self.rtl, loc[0])
        if covered:
            self.detected_flips += 1
            self._begin_recovery(cycle)
        else:
            self.undetected_flips += 1
        return (*loc, covered)

    def _begin_recovery(self, cycle: int) -> None:
        rtl = self.rtl
        rtl.write_disable = True
        self.recovering = True
        self.recoveries += 1
        self.recovery_started_at = cycle
        rtl.reset_flip_flops(preserve_config=True, preserve_protected=True)
        rtl.write_disable = False
        # writes survive in the preserved WDB: re-bind them to RQ entries
        self._replay.clear()
        wdb_rebuild: list[McuRequest] = []
        for slot in range(len(rtl.wdb_valid.values)):
            if rtl.wdb_valid.read(slot):
                data_int = rtl.wdb_data.read(slot)
                words = tuple(
                    (data_int >> (64 * w)) & ((1 << 64) - 1) for w in range(8)
                )
                wdb_rebuild.append(
                    McuRequest(
                        McuOp.WRITE, rtl.wdb_addr.read(slot), words, 0, 0
                    )
                )
                # the slot is re-allocated when the rebuilt write is
                # re-accepted below
                rtl.wdb_valid.write(slot, 0)
        for req in wdb_rebuild:
            self._replay.append(req)
        for req in self._reads:
            self._replay.append(req)
        self._reads.clear()

    def accept(self, req: McuRequest, cycle: int) -> bool:
        if self.recovering:
            return False
        if not self.rtl.accept(req, cycle):
            return False
        if req.op is McuOp.READ:
            self._reads.append(req)
        return True

    def tick(self, cycle: int) -> None:
        if self.recovering:
            while self._replay:
                if not self.rtl.accept(self._replay[0], cycle):
                    break
                req = self._replay.popleft()
                if req.op is McuOp.READ:
                    self._reads.append(req)
            if not self._replay:
                self.recovering = False
                self.recovery_cycles_log.append(cycle - self.recovery_started_at)
        replies = self.rtl.tick(cycle)
        for reply in replies:
            # completion monitor: the read has been answered
            self._reads = deque(
                r for r in self._reads
                if not (r.tag == reply.tag and r.line_addr == reply.line_addr)
            )
            self.machine._route_mcu_reply(reply)

    def in_flight(self) -> int:
        return self.rtl.in_flight() + len(self._replay)

    def attach(self) -> None:
        self.machine.mcus[self.mcu_idx] = self
        self.machine.uncore_changed()

    def detach(self) -> None:
        self.machine.mcus[self.mcu_idx] = self.hl
        self.machine.uncore_changed()
