"""Basic-block superinstruction compiler (the ``compiled`` core engine).

The threaded-code interpreter in :mod:`repro.core.cpu` pays one Python
closure dispatch per instruction per cycle.  This module compiles each
straight-line unit of a program (a run of pure register instructions,
optionally terminated by one branch -- see
:func:`repro.core.program.block_spans`) into **superinstruction
closures** that apply every register update of the unit in one call,
and exposes the per-pc metadata (``runlen``) the compiled dispatch uses
to chain units into whole continuations.

Execution model (eager continuation with slot debt).  A core still
owns exactly one issue slot per cycle, so fused execution must stay
cycle-accurate in its accounting:

* when a thread is dispatched at a pc with ``runlen[pc] = k > 0``, the
  compiled step backs up the thread's register file and runs unit
  closures **eagerly**, chaining through taken branches, until it
  reaches an impure instruction (memory/atomic/OUT/ASSERT/HALT/DIV),
  the program end, or the continuation cap;
* having executed ``s`` instructions in one dispatch, the thread owes
  ``s - 1`` further issue slots (``thread.owed``); each owed slot is an
  O(1) debt payment in the round-robin, and a core whose issuable
  threads are all in debt is skipped entirely by the machine loop's
  autopilot (see ``Core._arm_auto``).

Every slot reports a retirement to the machine, exactly like the
interpreter, so watchdog and retirement accounting are bit-identical.
Running the register writes early is invisible: pure instructions
touch only the issuing thread's registers, which nothing else reads
mid-continuation.  The one place the intermediate state *is*
observable -- a machine snapshot taken mid-debt -- is handled by
``Core.flush_compiled``, which restores the backup and replays exactly
the consumed instruction count through the plain threaded-code
handlers, yielding bit-identical per-slot architected state.

Compilation is cached **by program content** (the instruction tuple),
so the N identical per-thread programs of an SPMD workload compile
once, and repeated platform builds reuse the cache.

De-optimization: while ``core._compiled_hold`` is set (the platform
asserts it while a live fault is held, see ``Machine.hold_live_fault``)
the compiled step never starts a continuation and single-steps through
the threaded-code handlers.
"""

from __future__ import annotations

from repro.core.isa import WORD_MASK, Op
from repro.core.program import Program, block_spans

#: program content (instruction tuple) -> (runlen, units).  Keyed by
#: content rather than object identity so identical per-thread programs
#: share one compilation; entries are small and bounded by the number
#: of distinct program texts seen in the process.
_CBLOCKS: dict = {}

#: Upper bound on instructions executed per continuation: bounds the
#: snapshot-flush replay and keeps pure loops from monopolizing one
#: dispatch (debt accounting stays exact either way).
CONTINUATION_CAP = 256

#: Minimum statically-guaranteed chain length for a pc to dispatch as a
#: continuation.  Below this the fixed continuation cost (register
#: backup, debt bookkeeping) exceeds what fused execution saves, so
#: short straight-line runs keep the plain threaded-code dispatch --
#: measured break-even on the bench host is ~4-5 fused slots.
FUSE_MIN = 6

_ALU_REG = {
    Op.ADD: "regs[{ra}] + regs[{rb}]",
    Op.SUB: "regs[{ra}] - regs[{rb}]",
    Op.MUL: "regs[{ra}] * regs[{rb}]",
    Op.AND: "regs[{ra}] & regs[{rb}]",
    Op.OR: "regs[{ra}] | regs[{rb}]",
    Op.XOR: "regs[{ra}] ^ regs[{rb}]",
    Op.SHL: "regs[{ra}] << (regs[{rb}] & 63)",
    Op.SHR: "regs[{ra}] >> (regs[{rb}] & 63)",
}

_ALU_IMM = {
    Op.ADDI: "regs[{ra}] + {imm}",
    Op.MULI: "regs[{ra}] * {imm}",
    Op.ANDI: "regs[{ra}] & {imm}",
    Op.ORI: "regs[{ra}] | {imm}",
    Op.XORI: "regs[{ra}] ^ {imm}",
    Op.SHLI: "regs[{ra}] << {imm63}",
    Op.SHRI: "regs[{ra}] >> {imm63}",
}

_BRANCH_CMP = {Op.BEQ: "==", Op.BNE: "!=", Op.BLT: "<", Op.BGE: ">="}


def _reg_stmt(instr) -> "str | None":
    """The statement applying one pure instruction, or None for no-ops.

    Semantics mirror the threaded-code handlers exactly: writes to r0
    are discarded (emitting nothing is equivalent -- pure ops have no
    other effect) and every ALU result is masked like ``write_reg``.
    """
    op = instr.op
    if op is Op.NOP or instr.rd == 0:
        return None
    if op is Op.LDI:
        return f"regs[{instr.rd}] = {instr.imm & WORD_MASK}"
    if op is Op.CMPLT:
        return (
            f"regs[{instr.rd}] = "
            f"1 if regs[{instr.ra}] < regs[{instr.rb}] else 0"
        )
    expr = _ALU_REG.get(op)
    if expr is not None:
        expr = expr.format(ra=instr.ra, rb=instr.rb)
    else:
        expr = _ALU_IMM[op].format(
            ra=instr.ra, imm=instr.imm, imm63=instr.imm & 63
        )
    return f"regs[{instr.rd}] = ({expr}) & M"


def _branch_stmt(instr, fallthrough: int) -> str:
    if instr.op is Op.JMP:
        return f"thread.pc = {instr.imm}"
    cmp = _BRANCH_CMP[instr.op]
    return (
        f"thread.pc = {instr.imm} "
        f"if regs[{instr.ra}] {cmp} regs[{instr.rb}] else {fallthrough}"
    )


def _gen_units(program: Program, start: int, end: int, has_branch: bool):
    """Superinstruction closures for every suffix of one unit.

    Branch targets can land mid-unit, so each pc in ``[start, end)``
    gets its own closure covering the suffix from that pc to the unit
    end.  One ``exec`` compiles all suffixes of the unit.
    """
    instrs = program.instrs
    body_end = end - 1 if has_branch else end
    lines: list[str] = []
    names: list[tuple[int, str]] = []
    for s in range(start, end):
        name = f"_u{s}"
        names.append((s, name))
        lines.append(f"def {name}(core, thread, cycle):")
        lines.append("    regs = thread.regs")
        for i in range(s, body_end):
            stmt = _reg_stmt(instrs[i])
            if stmt:
                lines.append("    " + stmt)
        if has_branch:
            lines.append("    " + _branch_stmt(instrs[end - 1], end))
        else:
            lines.append(f"    thread.pc = {end}")
        lines.append(f"    thread.retired += {end - s}")
        lines.append("    return True")
        lines.append("")
    namespace: dict = {"M": WORD_MASK}
    exec("\n".join(lines), namespace)
    return {s: namespace[name] for s, name in names}


def _chain_lengths(program: Program, runlen: list, spans) -> list:
    """Statically guaranteed fused-chain length from each pc.

    A continuation started at ``pc`` executes at least ``chain[pc]``
    instructions before hitting an impure boundary: the suffix unit
    itself plus, through a trailing branch, the worse of the two
    successor chains.  Pure loops feed back into themselves, so values
    are relaxed iteratively and capped at :data:`CONTINUATION_CAP`.
    """
    n = len(program.instrs)
    chain = list(runlen)
    #: pc -> (branch_target, fallthrough) successor pcs, unit-terminal only
    succ: dict[int, tuple] = {}
    for start, end, has_branch in spans:
        if not has_branch:
            continue
        branch = program.instrs[end - 1]
        if branch.op is Op.JMP:
            succs = (branch.imm,)
        else:
            succs = (branch.imm, end)
        for s in range(start, end):
            succ[s] = succs
    for _ in range(8):  # doubles per pass; reaches the cap for loops
        changed = False
        for s, succs in succ.items():
            tail = min(
                (chain[x] if 0 <= x < n else 0) for x in succs
            )
            new = runlen[s] + tail
            if new > CONTINUATION_CAP:
                new = CONTINUATION_CAP
            if new > chain[s]:
                chain[s] = new
                changed = True
        if not changed:
            break
    return chain


def compile_blocks(program: Program) -> tuple[list, list, list]:
    """The (cached) ``(runlen, units, dispatch)`` tables for a program.

    ``runlen[pc]`` is the instruction count of the fused suffix
    starting at ``pc`` (0 when the instruction at ``pc`` is impure and
    must go through its threaded-code handler).  ``units[pc]`` is the
    matching superinstruction closure (None where ``runlen`` is 0).
    ``dispatch[pc]`` is the single-probe fast table the compiled step
    indexes first: None where a multi-slot continuation must be
    started, and the plain threaded-code handler everywhere else
    (impure pcs, lone instructions, and fused regions too short to
    amortize a continuation -- :data:`FUSE_MIN`).
    """
    from repro.core.cpu import compile_program

    key = program.instrs
    cached = _CBLOCKS.get(key)
    if cached is None:
        handlers = compile_program(program)
        n = len(program.instrs)
        runlen = [0] * n
        units: list = [None] * n
        dispatch: list = list(handlers)
        spans = block_spans(program)
        for start, end, has_branch in spans:
            for s, fn in _gen_units(program, start, end, has_branch).items():
                runlen[s] = end - s
                units[s] = fn
        chain = _chain_lengths(program, runlen, spans)
        for s in range(n):
            if runlen[s] >= 2 and chain[s] >= FUSE_MIN:
                dispatch[s] = None  # start a continuation
            # every other pc (impure, short fused region, lone
            # instruction) keeps its threaded-code handler: measured
            # per-slot cost there is exactly the event engine's
        cached = (runlen, units, dispatch)
        _CBLOCKS[key] = cached
    return cached
