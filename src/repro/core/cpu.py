"""In-order, fine-grained multi-threaded core model.

Each core holds several hardware threads and a small shared write-through
L1 data cache (word-granular, direct-mapped).  One instruction issues per
core per cycle, round-robin over ready threads -- the scheduling
discipline of the OpenSPARC T2.  Memory traffic leaves the core as PCX
packets and returns as CPX packets; the machine (or, during
co-simulation, the RTL uncore model) sits on the other side.

Coherence: the L2 directory sends INVALIDATE packets when another core
stores to a cached line; atomics bypass the L1 and serialize at the L2
bank.  Stores are posted (write-through, allocate-on-store into the local
L1) with a per-thread credit limit; atomics drain the thread's store
credits first, which gives release-consistency-style ordering across
banks while plain stores to one bank stay ordered by the bank FIFO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.isa import NUM_REGS, WORD_MASK, Instr, Op
from repro.core.program import Program
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Maximum posted (un-acknowledged) stores per hardware thread.
STORE_CREDITS = 8

#: Words per cache line (64B lines, 8B words).
LINE_WORDS = 8


class TrapKind(enum.Enum):
    """Why a thread trapped (all map to the UT outcome category)."""

    BAD_ADDR = "bad_addr"
    MISALIGNED = "misaligned"
    ILLEGAL = "illegal"
    ASSERT_FAIL = "assert_fail"
    BAD_PC = "bad_pc"


@dataclass(frozen=True)
class Trap:
    """Details of a thread trap."""

    kind: TrapKind
    core: int
    thread: int
    pc: int
    addr: int = 0


class ThreadState(enum.Enum):
    READY = "ready"
    #: Waiting for a CPX return packet (load/atomic) or for store credits.
    WAIT_MEM = "wait_mem"
    #: The uncore refused the request this cycle; retry the instruction.
    RETRY = "retry"
    HALTED = "halted"
    TRAPPED = "trapped"


class Thread:
    """One hardware thread: registers, program counter, stall state."""

    __slots__ = (
        "core_idx",
        "thread_idx",
        "program",
        "regs",
        "pc",
        "state",
        "wait_reqid",
        "wait_rd",
        "stores_inflight",
        "retired",
        "trap",
        "pending_atomic",
    )

    def __init__(self, core_idx: int, thread_idx: int, program: Program) -> None:
        self.core_idx = core_idx
        self.thread_idx = thread_idx
        self.program = program
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.state = ThreadState.READY
        self.wait_reqid = -1
        self.wait_rd = 0
        self.stores_inflight = 0
        self.retired = 0
        self.trap: Trap | None = None
        #: set when an atomic waits for store-credit drain before issuing
        self.pending_atomic = False

    def write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = value & WORD_MASK

    def snapshot(self) -> dict:
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "state": self.state,
            "wait_reqid": self.wait_reqid,
            "wait_rd": self.wait_rd,
            "stores_inflight": self.stores_inflight,
            "retired": self.retired,
            "trap": self.trap,
            "pending_atomic": self.pending_atomic,
        }

    def restore(self, state: dict) -> None:
        self.regs = list(state["regs"])
        self.pc = state["pc"]
        self.state = state["state"]
        self.wait_reqid = state["wait_reqid"]
        self.wait_rd = state["wait_rd"]
        self.stores_inflight = state["stores_inflight"]
        self.retired = state["retired"]
        self.trap = state["trap"]
        self.pending_atomic = state["pending_atomic"]


class Core:
    """A multi-threaded core with a shared write-through L1 word cache.

    The machine wires up three callbacks:

    * ``issue_pcx(pkt) -> bool``: hand a request to the uncore; ``False``
      means back-pressure (retry next cycle).
    * ``check_addr(addr) -> bool``: core-side address validity (an access
      outside every allocated region traps, modelling an MMU fault).
    * ``write_output(slot, value)``: the application output channel.
    """

    def __init__(
        self,
        core_idx: int,
        l1_words: int = 512,
        issue_pcx: "Callable[[PcxPacket], bool] | None" = None,
        check_addr: "Callable[[int], bool] | None" = None,
        write_output: "Callable[[int, int], None] | None" = None,
        alloc_reqid: "Callable[[], int] | None" = None,
    ) -> None:
        if l1_words & (l1_words - 1):
            raise ValueError("l1_words must be a power of two")
        self.core_idx = core_idx
        self.threads: list[Thread] = []
        self._rr = 0
        self._l1_size = l1_words
        self._l1_tags = [-1] * l1_words
        self._l1_vals = [0] * l1_words
        self.issue_pcx = issue_pcx
        self.check_addr = check_addr
        self.write_output = write_output
        self.alloc_reqid = alloc_reqid
        #: CPX packets that matched no waiting thread (protocol anomalies).
        self.dropped_cpx = 0
        #: L1 invalidations processed.
        self.invalidations = 0

    # ------------------------------------------------------------------
    # L1 cache (word-granular, direct-mapped, write-through)
    # ------------------------------------------------------------------
    def _l1_index(self, addr: int) -> int:
        return (addr >> 3) & (self._l1_size - 1)

    def l1_lookup(self, addr: int) -> int | None:
        idx = self._l1_index(addr)
        if self._l1_tags[idx] == addr:
            return self._l1_vals[idx]
        return None

    def l1_fill(self, addr: int, value: int) -> None:
        idx = self._l1_index(addr)
        self._l1_tags[idx] = addr
        self._l1_vals[idx] = value & WORD_MASK

    def l1_invalidate_line(self, line_addr: int) -> None:
        """Drop every word of a 64-byte line from the L1."""
        base = line_addr & ~63
        for word in range(LINE_WORDS):
            addr = base + word * 8
            idx = self._l1_index(addr)
            if self._l1_tags[idx] == addr:
                self._l1_tags[idx] = -1
        self.invalidations += 1

    def l1_flush(self) -> None:
        self._l1_tags = [-1] * self._l1_size

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def add_thread(self, program: Program) -> Thread:
        thread = Thread(self.core_idx, len(self.threads), program)
        self.threads.append(thread)
        return thread

    def all_halted(self) -> bool:
        return all(
            t.state in (ThreadState.HALTED, ThreadState.TRAPPED) for t in self.threads
        )

    def any_trapped(self) -> Trap | None:
        for t in self.threads:
            if t.trap is not None:
                return t.trap
        return None

    # ------------------------------------------------------------------
    # CPX delivery
    # ------------------------------------------------------------------
    def deliver_cpx(self, pkt: CpxPacket) -> None:
        """Process a return packet addressed to this core.

        A corrupted packet (wrong thread/reqid) that matches no waiting
        thread is dropped and counted -- the original requester keeps
        waiting, which is how lost replies turn into Hang outcomes.
        """
        if pkt.ctype is CpxType.INVALIDATE:
            self.l1_invalidate_line(pkt.addr)
            return
        if pkt.ctype is CpxType.STORE_ACK:
            thread_idx = pkt.thread
            if 0 <= thread_idx < len(self.threads):
                thread = self.threads[thread_idx]
                if thread.stores_inflight > 0:
                    thread.stores_inflight -= 1
                    return
            self.dropped_cpx += 1
            return
        # LOAD_RET / ATOMIC_RET / IFETCH_RET complete a stalled thread.
        thread_idx = pkt.thread
        if 0 <= thread_idx < len(self.threads):
            thread = self.threads[thread_idx]
            if (
                thread.state is ThreadState.WAIT_MEM
                and not thread.pending_atomic
                and thread.wait_reqid == pkt.reqid
            ):
                thread.write_reg(thread.wait_rd, pkt.data)
                if pkt.ctype is CpxType.LOAD_RET:
                    self.l1_fill(pkt.addr, pkt.data)
                thread.wait_reqid = -1
                thread.state = ThreadState.READY
                return
        self.dropped_cpx += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> bool:
        """Issue at most one instruction.  Returns True if one retired."""
        n = len(self.threads)
        if n == 0:
            return False
        for offset in range(n):
            idx = (self._rr + offset) % n
            thread = self.threads[idx]
            if thread.state is ThreadState.WAIT_MEM:
                if thread.pending_atomic and thread.stores_inflight == 0:
                    # store credits drained; issue the atomic now
                    thread.state = ThreadState.RETRY
                else:
                    continue
            if thread.state in (ThreadState.HALTED, ThreadState.TRAPPED):
                continue
            self._rr = (idx + 1) % n
            return self._execute(thread, cycle)
        return False

    def _trap(self, thread: Thread, kind: TrapKind, addr: int = 0) -> bool:
        thread.trap = Trap(kind, self.core_idx, thread.thread_idx, thread.pc, addr)
        thread.state = ThreadState.TRAPPED
        return False

    def _execute(self, thread: Thread, cycle: int) -> bool:
        program = thread.program
        if not 0 <= thread.pc < len(program):
            return self._trap(thread, TrapKind.BAD_PC)
        instr: Instr = program[thread.pc]
        op = instr.op
        regs = thread.regs
        thread.state = ThreadState.READY
        thread.pending_atomic = False

        if op is Op.LD:
            addr = (regs[instr.ra] + instr.imm) & WORD_MASK
            if addr & 7:
                return self._trap(thread, TrapKind.MISALIGNED, addr)
            if self.check_addr is not None and not self.check_addr(addr):
                return self._trap(thread, TrapKind.BAD_ADDR, addr)
            cached = self.l1_lookup(addr)
            if cached is not None:
                thread.write_reg(instr.rd, cached)
                thread.pc += 1
                thread.retired += 1
                return True
            reqid = self.alloc_reqid()
            pkt = PcxPacket(
                PcxType.LOAD, self.core_idx, thread.thread_idx, addr, 0, reqid
            )
            if not self.issue_pcx(pkt):
                thread.state = ThreadState.RETRY
                return False
            thread.state = ThreadState.WAIT_MEM
            thread.wait_reqid = reqid
            thread.wait_rd = instr.rd
            thread.pc += 1
            thread.retired += 1
            return True

        if op is Op.ST:
            addr = (regs[instr.ra] + instr.imm) & WORD_MASK
            if addr & 7:
                return self._trap(thread, TrapKind.MISALIGNED, addr)
            if self.check_addr is not None and not self.check_addr(addr):
                return self._trap(thread, TrapKind.BAD_ADDR, addr)
            if thread.stores_inflight >= STORE_CREDITS:
                thread.state = ThreadState.RETRY
                return False
            reqid = self.alloc_reqid()
            pkt = PcxPacket(
                PcxType.STORE,
                self.core_idx,
                thread.thread_idx,
                addr,
                regs[instr.rb],
                reqid,
            )
            if not self.issue_pcx(pkt):
                thread.state = ThreadState.RETRY
                return False
            # write-through with allocate-on-store into the local L1
            self.l1_fill(addr, regs[instr.rb])
            thread.stores_inflight += 1
            thread.pc += 1
            thread.retired += 1
            return True

        if op is Op.TAS or op is Op.FAA:
            addr = regs[instr.ra] & WORD_MASK
            if addr & 7:
                return self._trap(thread, TrapKind.MISALIGNED, addr)
            if self.check_addr is not None and not self.check_addr(addr):
                return self._trap(thread, TrapKind.BAD_ADDR, addr)
            if thread.stores_inflight > 0:
                # drain posted stores before the atomic (fence semantics)
                thread.state = ThreadState.WAIT_MEM
                thread.pending_atomic = True
                return False
            reqid = self.alloc_reqid()
            ptype = PcxType.ATOMIC_TAS if op is Op.TAS else PcxType.ATOMIC_ADD
            operand = regs[instr.rb] if op is Op.FAA else 0
            pkt = PcxPacket(
                ptype, self.core_idx, thread.thread_idx, addr, operand, reqid
            )
            if not self.issue_pcx(pkt):
                thread.state = ThreadState.RETRY
                return False
            # atomics bypass the L1; drop any stale local copy
            idx = self._l1_index(addr)
            if self._l1_tags[idx] == addr:
                self._l1_tags[idx] = -1
            thread.state = ThreadState.WAIT_MEM
            thread.wait_reqid = reqid
            thread.wait_rd = instr.rd
            thread.pc += 1
            thread.retired += 1
            return True

        # --- non-memory instructions ------------------------------------
        if op is Op.LDI:
            thread.write_reg(instr.rd, instr.imm & WORD_MASK)
        elif op is Op.ADD:
            thread.write_reg(instr.rd, regs[instr.ra] + regs[instr.rb])
        elif op is Op.SUB:
            thread.write_reg(instr.rd, regs[instr.ra] - regs[instr.rb])
        elif op is Op.MUL:
            thread.write_reg(instr.rd, regs[instr.ra] * regs[instr.rb])
        elif op is Op.AND:
            thread.write_reg(instr.rd, regs[instr.ra] & regs[instr.rb])
        elif op is Op.OR:
            thread.write_reg(instr.rd, regs[instr.ra] | regs[instr.rb])
        elif op is Op.XOR:
            thread.write_reg(instr.rd, regs[instr.ra] ^ regs[instr.rb])
        elif op is Op.SHL:
            thread.write_reg(instr.rd, regs[instr.ra] << (regs[instr.rb] & 63))
        elif op is Op.SHR:
            thread.write_reg(instr.rd, regs[instr.ra] >> (regs[instr.rb] & 63))
        elif op is Op.CMPLT:
            thread.write_reg(instr.rd, 1 if regs[instr.ra] < regs[instr.rb] else 0)
        elif op is Op.ADDI:
            thread.write_reg(instr.rd, regs[instr.ra] + instr.imm)
        elif op is Op.MULI:
            thread.write_reg(instr.rd, regs[instr.ra] * instr.imm)
        elif op is Op.ANDI:
            thread.write_reg(instr.rd, regs[instr.ra] & instr.imm)
        elif op is Op.ORI:
            thread.write_reg(instr.rd, regs[instr.ra] | instr.imm)
        elif op is Op.XORI:
            thread.write_reg(instr.rd, regs[instr.ra] ^ instr.imm)
        elif op is Op.SHLI:
            thread.write_reg(instr.rd, regs[instr.ra] << (instr.imm & 63))
        elif op is Op.SHRI:
            thread.write_reg(instr.rd, regs[instr.ra] >> (instr.imm & 63))
        elif op is Op.DIV:
            if regs[instr.rb] == 0:
                return self._trap(thread, TrapKind.ILLEGAL)
            thread.write_reg(instr.rd, regs[instr.ra] // regs[instr.rb])
        elif op is Op.MOD:
            if regs[instr.rb] == 0:
                return self._trap(thread, TrapKind.ILLEGAL)
            thread.write_reg(instr.rd, regs[instr.ra] % regs[instr.rb])
        elif op is Op.BEQ:
            if regs[instr.ra] == regs[instr.rb]:
                thread.pc = instr.imm
                thread.retired += 1
                return True
        elif op is Op.BNE:
            if regs[instr.ra] != regs[instr.rb]:
                thread.pc = instr.imm
                thread.retired += 1
                return True
        elif op is Op.BLT:
            if regs[instr.ra] < regs[instr.rb]:
                thread.pc = instr.imm
                thread.retired += 1
                return True
        elif op is Op.BGE:
            if regs[instr.ra] >= regs[instr.rb]:
                thread.pc = instr.imm
                thread.retired += 1
                return True
        elif op is Op.JMP:
            thread.pc = instr.imm
            thread.retired += 1
            return True
        elif op is Op.OUT:
            self.write_output(regs[instr.ra], regs[instr.rb])
        elif op is Op.ASSERT_EQ:
            if regs[instr.ra] != regs[instr.rb]:
                return self._trap(thread, TrapKind.ASSERT_FAIL)
        elif op is Op.HALT:
            thread.state = ThreadState.HALTED
            thread.retired += 1
            return True
        elif op is Op.NOP:
            pass
        else:  # pragma: no cover - every Op is handled above
            return self._trap(thread, TrapKind.ILLEGAL)

        thread.pc += 1
        thread.retired += 1
        return True

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "rr": self._rr,
            "l1_tags": list(self._l1_tags),
            "l1_vals": list(self._l1_vals),
            "dropped_cpx": self.dropped_cpx,
            "invalidations": self.invalidations,
            "threads": [t.snapshot() for t in self.threads],
        }

    def restore(self, state: dict) -> None:
        self._rr = state["rr"]
        self._l1_tags = list(state["l1_tags"])
        self._l1_vals = list(state["l1_vals"])
        self.dropped_cpx = state["dropped_cpx"]
        self.invalidations = state["invalidations"]
        for thread, tstate in zip(self.threads, state["threads"]):
            thread.restore(tstate)
