"""In-order, fine-grained multi-threaded core model.

Each core holds several hardware threads and a small shared write-through
L1 data cache (word-granular, direct-mapped).  One instruction issues per
core per cycle, round-robin over ready threads -- the scheduling
discipline of the OpenSPARC T2.  Memory traffic leaves the core as PCX
packets and returns as CPX packets; the machine (or, during
co-simulation, the RTL uncore model) sits on the other side.

Coherence: the L2 directory sends INVALIDATE packets when another core
stores to a cached line; atomics bypass the L1 and serialize at the L2
bank.  Stores are posted (write-through, allocate-on-store into the local
L1) with a per-thread credit limit; atomics drain the thread's store
credits first, which gives release-consistency-style ordering across
banks while plain stores to one bank stay ordered by the bank FIFO.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.isa import NUM_REGS, WORD_MASK, Op
from repro.core.program import Program
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Maximum posted (un-acknowledged) stores per hardware thread.
STORE_CREDITS = 8

#: Words per cache line (64B lines, 8B words).
LINE_WORDS = 8


class TrapKind(enum.Enum):
    """Why a thread trapped (all map to the UT outcome category)."""

    BAD_ADDR = "bad_addr"
    MISALIGNED = "misaligned"
    ILLEGAL = "illegal"
    ASSERT_FAIL = "assert_fail"
    BAD_PC = "bad_pc"


@dataclass(frozen=True)
class Trap:
    """Details of a thread trap."""

    kind: TrapKind
    core: int
    thread: int
    pc: int
    addr: int = 0


class ThreadState(enum.Enum):
    READY = "ready"
    #: Waiting for a CPX return packet (load/atomic) or for store credits.
    WAIT_MEM = "wait_mem"
    #: The uncore refused the request this cycle; retry the instruction.
    RETRY = "retry"
    HALTED = "halted"
    TRAPPED = "trapped"


class Thread:
    """One hardware thread: registers, program counter, stall state."""

    __slots__ = (
        "core_idx",
        "thread_idx",
        "program",
        "program_len",
        "handlers",
        "regs",
        "pc",
        "state",
        "wait_reqid",
        "wait_rd",
        "stores_inflight",
        "retired",
        "trap",
        "pending_atomic",
    )

    def __init__(self, core_idx: int, thread_idx: int, program: Program) -> None:
        self.core_idx = core_idx
        self.thread_idx = thread_idx
        self.program = program
        self.program_len = len(program)
        self.handlers = compile_program(program)
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.state = ThreadState.READY
        self.wait_reqid = -1
        self.wait_rd = 0
        self.stores_inflight = 0
        self.retired = 0
        self.trap: Trap | None = None
        #: set when an atomic waits for store-credit drain before issuing
        self.pending_atomic = False

    def write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = value & WORD_MASK

    def snapshot(self) -> dict:
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "state": self.state,
            "wait_reqid": self.wait_reqid,
            "wait_rd": self.wait_rd,
            "stores_inflight": self.stores_inflight,
            "retired": self.retired,
            "trap": self.trap,
            "pending_atomic": self.pending_atomic,
        }

    def restore(self, state: dict) -> None:
        self.regs = list(state["regs"])
        self.pc = state["pc"]
        self.state = state["state"]
        self.wait_reqid = state["wait_reqid"]
        self.wait_rd = state["wait_rd"]
        self.stores_inflight = state["stores_inflight"]
        self.retired = state["retired"]
        self.trap = state["trap"]
        self.pending_atomic = state["pending_atomic"]


class Core:
    """A multi-threaded core with a shared write-through L1 word cache.

    The machine wires up three callbacks:

    * ``issue_pcx(pkt) -> bool``: hand a request to the uncore; ``False``
      means back-pressure (retry next cycle).
    * ``check_addr(addr) -> bool``: core-side address validity (an access
      outside every allocated region traps, modelling an MMU fault).
    * ``write_output(slot, value)``: the application output channel.
    """

    def __init__(
        self,
        core_idx: int,
        l1_words: int = 512,
        issue_pcx: "Callable[[PcxPacket], bool] | None" = None,
        check_addr: "Callable[[int], bool] | None" = None,
        write_output: "Callable[[int, int], None] | None" = None,
        alloc_reqid: "Callable[[], int] | None" = None,
    ) -> None:
        if l1_words & (l1_words - 1):
            raise ValueError("l1_words must be a power of two")
        self.core_idx = core_idx
        self.threads: list[Thread] = []
        self._rr = 0
        self._l1_size = l1_words
        self._l1_tags = [-1] * l1_words
        self._l1_vals = [0] * l1_words
        self.issue_pcx = issue_pcx
        self.check_addr = check_addr
        self.write_output = write_output
        self.alloc_reqid = alloc_reqid
        #: CPX packets that matched no waiting thread (protocol anomalies).
        self.dropped_cpx = 0
        #: L1 invalidations processed.
        self.invalidations = 0
        #: activity counters for the event-driven machine engine:
        #: number of threads in READY/RETRY, and number with a pending
        #: atomic (waiting for store-credit drain).  ``step()`` can issue
        #: an instruction this cycle iff either is non-zero.
        self._num_ready = 0
        self._num_atomic_wait = 0
        #: set whenever architected core state may have changed since the
        #: last delta checkpoint (read and cleared by the snapshot chain)
        self.dirty = True
        #: L1 indices touched since the last delta capture (None: delta
        #: tracking off); lets checkpoints skip copying the L1 arrays
        self._l1_dirty: "set[int] | None" = None
        #: optional machine hook ``(trapped: bool) -> None`` fired when a
        #: thread enters HALTED or TRAPPED (drives O(1) run-loop checks)
        self.on_thread_stop: "Callable[[bool], None] | None" = None

    def active(self) -> bool:
        """Whether ``step()`` could possibly issue an instruction now."""
        return bool(self._num_ready or self._num_atomic_wait)

    # ------------------------------------------------------------------
    # L1 cache (word-granular, direct-mapped, write-through)
    # ------------------------------------------------------------------
    def _l1_index(self, addr: int) -> int:
        return (addr >> 3) & (self._l1_size - 1)

    def l1_lookup(self, addr: int) -> int | None:
        idx = self._l1_index(addr)
        if self._l1_tags[idx] == addr:
            return self._l1_vals[idx]
        return None

    def l1_fill(self, addr: int, value: int) -> None:
        idx = self._l1_index(addr)
        self._l1_tags[idx] = addr
        self._l1_vals[idx] = value & WORD_MASK
        if self._l1_dirty is not None:
            self._l1_dirty.add(idx)

    def l1_invalidate_line(self, line_addr: int) -> None:
        """Drop every word of a 64-byte line from the L1."""
        base = line_addr & ~63
        dirty = self._l1_dirty
        for word in range(LINE_WORDS):
            addr = base + word * 8
            idx = self._l1_index(addr)
            if self._l1_tags[idx] == addr:
                self._l1_tags[idx] = -1
                if dirty is not None:
                    dirty.add(idx)
        self.invalidations += 1

    def l1_flush(self) -> None:
        self._l1_tags = [-1] * self._l1_size
        self.dirty = True
        if self._l1_dirty is not None:
            self._l1_dirty.update(range(self._l1_size))

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def add_thread(self, program: Program) -> Thread:
        thread = Thread(self.core_idx, len(self.threads), program)
        self.threads.append(thread)
        self._num_ready += 1
        return thread

    def all_halted(self) -> bool:
        return all(
            t.state in (ThreadState.HALTED, ThreadState.TRAPPED) for t in self.threads
        )

    def any_trapped(self) -> Trap | None:
        for t in self.threads:
            if t.trap is not None:
                return t.trap
        return None

    # ------------------------------------------------------------------
    # CPX delivery
    # ------------------------------------------------------------------
    def deliver_cpx(self, pkt: CpxPacket) -> None:
        """Process a return packet addressed to this core.

        A corrupted packet (wrong thread/reqid) that matches no waiting
        thread is dropped and counted -- the original requester keeps
        waiting, which is how lost replies turn into Hang outcomes.
        """
        self.dirty = True
        if pkt.ctype is CpxType.INVALIDATE:
            self.l1_invalidate_line(pkt.addr)
            return
        if pkt.ctype is CpxType.STORE_ACK:
            thread_idx = pkt.thread
            if 0 <= thread_idx < len(self.threads):
                thread = self.threads[thread_idx]
                if thread.stores_inflight > 0:
                    thread.stores_inflight -= 1
                    return
            self.dropped_cpx += 1
            return
        # LOAD_RET / ATOMIC_RET / IFETCH_RET complete a stalled thread.
        thread_idx = pkt.thread
        if 0 <= thread_idx < len(self.threads):
            thread = self.threads[thread_idx]
            if (
                thread.state is ThreadState.WAIT_MEM
                and not thread.pending_atomic
                and thread.wait_reqid == pkt.reqid
            ):
                thread.write_reg(thread.wait_rd, pkt.data)
                if pkt.ctype is CpxType.LOAD_RET:
                    self.l1_fill(pkt.addr, pkt.data)
                thread.wait_reqid = -1
                thread.state = ThreadState.READY
                self._num_ready += 1
                return
        self.dropped_cpx += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
        _WAIT=ThreadState.WAIT_MEM,
    ) -> bool:
        """Issue at most one instruction.  Returns True if one retired.

        The round-robin scan and instruction dispatch are fused and
        inlined -- this is the hottest function in the repository.  The
        round-robin head being ready is the overwhelmingly common case,
        so it dispatches without setting up the scan loop.
        """
        if not (self._num_ready or self._num_atomic_wait):
            # no thread could possibly issue: identical outcome to the
            # full round-robin scan, at O(1) cost
            return False
        threads = self.threads
        idx = self._rr
        thread = threads[idx]
        state = thread.state
        if state is _READY or state is _RETRY:
            idx += 1
            self._rr = 0 if idx == len(threads) else idx
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                return self._trap(thread, TrapKind.BAD_PC)
            thread.state = _READY
            return thread.handlers[pc](self, thread, cycle)
        return self._step_scan(cycle)

    def _step_scan(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
        _WAIT=ThreadState.WAIT_MEM,
    ) -> bool:
        """Full round-robin scan (the head thread could not issue)."""
        threads = self.threads
        n = len(threads)
        idx = self._rr
        for _scan in range(n):
            if idx >= n:
                idx -= n
            thread = threads[idx]
            state = thread.state
            if state is _READY or state is _RETRY:
                pass
            elif state is _WAIT and (
                thread.pending_atomic and thread.stores_inflight == 0
            ):
                # store credits drained; issue the atomic now
                thread.state = _RETRY
                self._num_ready += 1
            else:
                idx += 1
                continue
            idx += 1
            self._rr = 0 if idx == n else idx
            # -- inlined _execute ----------------------------------
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                return self._trap(thread, TrapKind.BAD_PC)
            thread.state = _READY
            return thread.handlers[pc](self, thread, cycle)
        return False

    def _trap(self, thread: Thread, kind: TrapKind, addr: int = 0) -> bool:
        thread.trap = Trap(kind, self.core_idx, thread.thread_idx, thread.pc, addr)
        thread.state = ThreadState.TRAPPED
        self._num_ready -= 1
        if thread.pending_atomic:
            # leave the flag itself untouched (it is architected snapshot
            # state); the counter only tracks potentially-issuable threads
            self._num_atomic_wait -= 1
        if self.on_thread_stop is not None:
            self.on_thread_stop(True)
        return False

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "rr": self._rr,
            "l1_tags": list(self._l1_tags),
            "l1_vals": list(self._l1_vals),
            "dropped_cpx": self.dropped_cpx,
            "invalidations": self.invalidations,
            "threads": [t.snapshot() for t in self.threads],
        }

    def restore(self, state: dict) -> None:
        self._rr = state["rr"]
        self._l1_tags = list(state["l1_tags"])
        self._l1_vals = list(state["l1_vals"])
        self.dropped_cpx = state["dropped_cpx"]
        self.invalidations = state["invalidations"]
        for thread, tstate in zip(self.threads, state["threads"]):
            thread.restore(tstate)
        self.dirty = True
        self._recount()

    def _recount(self) -> None:
        """Rebuild the activity counters from the thread states."""
        ready = atomic = 0
        for t in self.threads:
            if t.state is ThreadState.READY or t.state is ThreadState.RETRY:
                ready += 1
            if t.pending_atomic and t.state not in (
                ThreadState.HALTED,
                ThreadState.TRAPPED,
            ):
                atomic += 1
        self._num_ready = ready
        self._num_atomic_wait = atomic

    # ------------------------------------------------------------------
    # Delta capture (see repro.system.snapshots)
    # ------------------------------------------------------------------
    def delta_capture_begin(self) -> None:
        """Start tracking L1 mutations for delta checkpoints."""
        self._l1_dirty = set()

    def delta_capture_end(self) -> None:
        self._l1_dirty = None

    def delta_snapshot(self) -> dict:
        """Changes since the last capture: thread state in full (it
        churns every cycle), the L1 arrays as a sparse index delta."""
        tags = self._l1_tags
        vals = self._l1_vals
        delta = {
            "rr": self._rr,
            "dropped_cpx": self.dropped_cpx,
            "invalidations": self.invalidations,
            "threads": [t.snapshot() for t in self.threads],
            "l1_delta": {i: (tags[i], vals[i]) for i in self._l1_dirty},
        }
        self._l1_dirty = set()
        return delta


# ----------------------------------------------------------------------
# Threaded-code compiler
# ----------------------------------------------------------------------
# ``compile_program`` translates a Program once into a list of
# per-instruction closures ("handlers"); ``Core._execute`` dispatches by
# indexing the list with the thread's pc.  This removes the per-cycle
# decode work (Instr field loads and the opcode if/elif chain) from the
# hottest loop in the repository -- the golden runs, phase-1 replays and
# phase-3 outcome runs all spend most of their time here.  Handlers must
# be *bit-exact* with the original interpreter; the semantics below
# mirror it branch for branch.

#: id(program) -> handler list; entries drop out when the program dies.
_COMPILED: dict[int, list] = {}


def compile_program(program: Program) -> list:
    """The (cached) handler list for a program."""
    key = id(program)
    handlers = _COMPILED.get(key)
    if handlers is None:
        handlers = [
            _HANDLER_FACTORIES[instr.op](instr) for instr in program.instrs
        ]
        _COMPILED[key] = handlers
        weakref.finalize(program, _COMPILED.pop, key, None)
    return handlers


def _make_nop(instr):
    def h(core, thread, cycle):
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_ldi(instr):
    rd = instr.rd
    if rd == 0:  # writes to r0 are discarded
        return _make_nop(instr)
    value = instr.imm & WORD_MASK

    def h(core, thread, cycle):
        thread.regs[rd] = value
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _alu_reg_factory(expr: str):
    """Factory for ``rd <- ra <op> rb`` handlers (masked like write_reg)."""
    src = (
        "def _make(instr):\n"
        "    rd = instr.rd\n"
        "    ra = instr.ra\n"
        "    rb = instr.rb\n"
        "    if rd == 0:\n"
        "        return _make_nop(instr)\n"
        "    def h(core, thread, cycle, _M=WORD_MASK):\n"
        "        regs = thread.regs\n"
        f"        regs[rd] = ({expr}) & _M\n"
        "        thread.pc += 1\n"
        "        thread.retired += 1\n"
        "        return True\n"
        "    return h\n"
    )
    namespace = {"WORD_MASK": WORD_MASK, "_make_nop": _make_nop}
    exec(src, namespace)
    return namespace["_make"]


def _alu_imm_factory(expr: str):
    """Factory for ``rd <- ra <op> imm`` handlers."""
    src = (
        "def _make(instr):\n"
        "    rd = instr.rd\n"
        "    ra = instr.ra\n"
        "    imm = instr.imm\n"
        "    if rd == 0:\n"
        "        return _make_nop(instr)\n"
        "    def h(core, thread, cycle, _M=WORD_MASK):\n"
        "        regs = thread.regs\n"
        f"        regs[rd] = ({expr}) & _M\n"
        "        thread.pc += 1\n"
        "        thread.retired += 1\n"
        "        return True\n"
        "    return h\n"
    )
    namespace = {"WORD_MASK": WORD_MASK, "_make_nop": _make_nop}
    exec(src, namespace)
    return namespace["_make"]


def _branch_factory(cmp: str):
    """Factory for ``if ra <cmp> rb: pc <- imm`` handlers."""
    src = (
        "def _make(instr):\n"
        "    ra = instr.ra\n"
        "    rb = instr.rb\n"
        "    imm = instr.imm\n"
        "    def h(core, thread, cycle):\n"
        "        regs = thread.regs\n"
        f"        if regs[ra] {cmp} regs[rb]:\n"
        "            thread.pc = imm\n"
        "        else:\n"
        "            thread.pc += 1\n"
        "        thread.retired += 1\n"
        "        return True\n"
        "    return h\n"
    )
    namespace: dict = {}
    exec(src, namespace)
    return namespace["_make"]


def _make_jmp(instr):
    imm = instr.imm

    def h(core, thread, cycle):
        thread.pc = imm
        thread.retired += 1
        return True

    return h


def _make_div(instr):
    rd, ra, rb = instr.rd, instr.ra, instr.rb

    def h(core, thread, cycle, _ILL=TrapKind.ILLEGAL):
        regs = thread.regs
        divisor = regs[rb]
        if divisor == 0:
            return core._trap(thread, _ILL)
        if rd:
            regs[rd] = regs[ra] // divisor
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_mod(instr):
    rd, ra, rb = instr.rd, instr.ra, instr.rb

    def h(core, thread, cycle, _ILL=TrapKind.ILLEGAL):
        regs = thread.regs
        divisor = regs[rb]
        if divisor == 0:
            return core._trap(thread, _ILL)
        if rd:
            regs[rd] = regs[ra] % divisor
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_out(instr):
    ra, rb = instr.ra, instr.rb

    def h(core, thread, cycle):
        regs = thread.regs
        core.write_output(regs[ra], regs[rb])
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_assert_eq(instr):
    ra, rb = instr.ra, instr.rb

    def h(core, thread, cycle, _AF=TrapKind.ASSERT_FAIL):
        regs = thread.regs
        if regs[ra] != regs[rb]:
            return core._trap(thread, _AF)
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_halt(instr):
    def h(core, thread, cycle, _HALTED=ThreadState.HALTED):
        thread.state = _HALTED
        core._num_ready -= 1
        stop = core.on_thread_stop
        if stop is not None:
            stop(False)
        thread.retired += 1
        return True

    return h


def _make_ld(instr):
    rd, ra, imm = instr.rd, instr.ra, instr.imm

    def h(
        core,
        thread,
        cycle,
        _M=WORD_MASK,
        _Pkt=PcxPacket,
        _LOAD=PcxType.LOAD,
        _WAIT=ThreadState.WAIT_MEM,
        _RETRY=ThreadState.RETRY,
        _MIS=TrapKind.MISALIGNED,
        _BAD=TrapKind.BAD_ADDR,
    ):
        regs = thread.regs
        addr = (regs[ra] + imm) & _M
        if addr & 7:
            return core._trap(thread, _MIS, addr)
        check = core.check_addr
        if check is not None and not check(addr):
            return core._trap(thread, _BAD, addr)
        idx = (addr >> 3) & (core._l1_size - 1)
        if core._l1_tags[idx] == addr:
            if rd:
                regs[rd] = core._l1_vals[idx]
            thread.pc += 1
            thread.retired += 1
            return True
        reqid = core.alloc_reqid()
        pkt = _Pkt(_LOAD, core.core_idx, thread.thread_idx, addr, 0, reqid)
        if not core.issue_pcx(pkt):
            thread.state = _RETRY
            return False
        thread.state = _WAIT
        core._num_ready -= 1
        thread.wait_reqid = reqid
        thread.wait_rd = rd
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_st(instr):
    ra, rb, imm = instr.ra, instr.rb, instr.imm

    def h(
        core,
        thread,
        cycle,
        _M=WORD_MASK,
        _Pkt=PcxPacket,
        _STORE=PcxType.STORE,
        _RETRY=ThreadState.RETRY,
        _MIS=TrapKind.MISALIGNED,
        _BAD=TrapKind.BAD_ADDR,
        _CREDITS=STORE_CREDITS,
    ):
        regs = thread.regs
        addr = (regs[ra] + imm) & _M
        if addr & 7:
            return core._trap(thread, _MIS, addr)
        check = core.check_addr
        if check is not None and not check(addr):
            return core._trap(thread, _BAD, addr)
        if thread.stores_inflight >= _CREDITS:
            thread.state = _RETRY
            return False
        reqid = core.alloc_reqid()
        data = regs[rb]
        pkt = _Pkt(_STORE, core.core_idx, thread.thread_idx, addr, data, reqid)
        if not core.issue_pcx(pkt):
            thread.state = _RETRY
            return False
        # write-through with allocate-on-store into the local L1
        idx = (addr >> 3) & (core._l1_size - 1)
        core._l1_tags[idx] = addr
        core._l1_vals[idx] = data
        dirty = core._l1_dirty
        if dirty is not None:
            dirty.add(idx)
        thread.stores_inflight += 1
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _atomic_factory(is_faa: bool):
    ptype = PcxType.ATOMIC_ADD if is_faa else PcxType.ATOMIC_TAS

    def _make(instr):
        rd, ra, rb = instr.rd, instr.ra, instr.rb

        def h(
            core,
            thread,
            cycle,
            _M=WORD_MASK,
            _Pkt=PcxPacket,
            _T=ptype,
            _WAIT=ThreadState.WAIT_MEM,
            _RETRY=ThreadState.RETRY,
            _MIS=TrapKind.MISALIGNED,
            _BAD=TrapKind.BAD_ADDR,
            _FAA=is_faa,
        ):
            if thread.pending_atomic:
                # this is the deferred re-issue after the store drain
                # (only the same atomic instruction can re-execute with
                # the flag set, so clearing it here is equivalent to the
                # old clear-on-every-dispatch)
                thread.pending_atomic = False
                core._num_atomic_wait -= 1
            regs = thread.regs
            addr = regs[ra] & _M
            if addr & 7:
                return core._trap(thread, _MIS, addr)
            check = core.check_addr
            if check is not None and not check(addr):
                return core._trap(thread, _BAD, addr)
            if thread.stores_inflight > 0:
                # drain posted stores before the atomic (fence semantics)
                thread.state = _WAIT
                thread.pending_atomic = True
                core._num_ready -= 1
                core._num_atomic_wait += 1
                return False
            reqid = core.alloc_reqid()
            operand = regs[rb] if _FAA else 0
            pkt = _Pkt(_T, core.core_idx, thread.thread_idx, addr, operand, reqid)
            if not core.issue_pcx(pkt):
                thread.state = _RETRY
                return False
            # atomics bypass the L1; drop any stale local copy
            idx = (addr >> 3) & (core._l1_size - 1)
            if core._l1_tags[idx] == addr:
                core._l1_tags[idx] = -1
                dirty = core._l1_dirty
                if dirty is not None:
                    dirty.add(idx)
            thread.state = _WAIT
            core._num_ready -= 1
            thread.wait_reqid = reqid
            thread.wait_rd = rd
            thread.pc += 1
            thread.retired += 1
            return True

        return h

    return _make


_HANDLER_FACTORIES = {
    Op.NOP: _make_nop,
    Op.LDI: _make_ldi,
    Op.ADD: _alu_reg_factory("regs[ra] + regs[rb]"),
    Op.SUB: _alu_reg_factory("regs[ra] - regs[rb]"),
    Op.MUL: _alu_reg_factory("regs[ra] * regs[rb]"),
    Op.AND: _alu_reg_factory("regs[ra] & regs[rb]"),
    Op.OR: _alu_reg_factory("regs[ra] | regs[rb]"),
    Op.XOR: _alu_reg_factory("regs[ra] ^ regs[rb]"),
    Op.SHL: _alu_reg_factory("regs[ra] << (regs[rb] & 63)"),
    Op.SHR: _alu_reg_factory("regs[ra] >> (regs[rb] & 63)"),
    Op.CMPLT: _alu_reg_factory("1 if regs[ra] < regs[rb] else 0"),
    Op.ADDI: _alu_imm_factory("regs[ra] + imm"),
    Op.MULI: _alu_imm_factory("regs[ra] * imm"),
    Op.ANDI: _alu_imm_factory("regs[ra] & imm"),
    Op.ORI: _alu_imm_factory("regs[ra] | imm"),
    Op.XORI: _alu_imm_factory("regs[ra] ^ imm"),
    Op.SHLI: _alu_imm_factory("regs[ra] << (imm & 63)"),
    Op.SHRI: _alu_imm_factory("regs[ra] >> (imm & 63)"),
    Op.LD: _make_ld,
    Op.ST: _make_st,
    Op.TAS: _atomic_factory(False),
    Op.FAA: _atomic_factory(True),
    Op.BEQ: _branch_factory("=="),
    Op.BNE: _branch_factory("!="),
    Op.BLT: _branch_factory("<"),
    Op.BGE: _branch_factory(">="),
    Op.JMP: _make_jmp,
    Op.OUT: _make_out,
    Op.ASSERT_EQ: _make_assert_eq,
    Op.HALT: _make_halt,
    Op.MOD: _make_mod,
    Op.DIV: _make_div,
}
