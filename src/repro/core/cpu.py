"""In-order, fine-grained multi-threaded core model.

Each core holds several hardware threads and a small shared write-through
L1 data cache (word-granular, direct-mapped).  One instruction issues per
core per cycle, round-robin over ready threads -- the scheduling
discipline of the OpenSPARC T2.  Memory traffic leaves the core as PCX
packets and returns as CPX packets; the machine (or, during
co-simulation, the RTL uncore model) sits on the other side.

Coherence: the L2 directory sends INVALIDATE packets when another core
stores to a cached line; atomics bypass the L1 and serialize at the L2
bank.  Stores are posted (write-through, allocate-on-store into the local
L1) with a per-thread credit limit; atomics drain the thread's store
credits first, which gives release-consistency-style ordering across
banks while plain stores to one bank stay ordered by the bank FIFO.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.blocks import CONTINUATION_CAP
from repro.core.isa import NUM_REGS, WORD_MASK, Op
from repro.core.program import Program
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Maximum posted (un-acknowledged) stores per hardware thread.
STORE_CREDITS = 8

#: Words per cache line (64B lines, 8B words).
LINE_WORDS = 8


class TrapKind(enum.Enum):
    """Why a thread trapped (all map to the UT outcome category)."""

    BAD_ADDR = "bad_addr"
    MISALIGNED = "misaligned"
    ILLEGAL = "illegal"
    ASSERT_FAIL = "assert_fail"
    BAD_PC = "bad_pc"


@dataclass(frozen=True)
class Trap:
    """Details of a thread trap."""

    kind: TrapKind
    core: int
    thread: int
    pc: int
    addr: int = 0


class ThreadState(enum.Enum):
    READY = "ready"
    #: Waiting for a CPX return packet (load/atomic) or for store credits.
    WAIT_MEM = "wait_mem"
    #: The uncore refused the request this cycle; retry the instruction.
    RETRY = "retry"
    HALTED = "halted"
    TRAPPED = "trapped"


class Thread:
    """One hardware thread: registers, program counter, stall state."""

    __slots__ = (
        "core_idx",
        "thread_idx",
        "program",
        "program_len",
        "handlers",
        "runlen",
        "units",
        "dispatch",
        "regs",
        "pc",
        "state",
        "wait_reqid",
        "wait_rd",
        "stores_inflight",
        "retired",
        "trap",
        "pending_atomic",
        "owed",
        "owed_total",
        "backup_regs",
        "backup_pc",
        "backup_retired",
    )

    def __init__(self, core_idx: int, thread_idx: int, program: Program) -> None:
        self.core_idx = core_idx
        self.thread_idx = thread_idx
        self.program = program
        self.program_len = len(program)
        self.handlers = compile_program(program)
        #: compiled-engine tables (set by Core.add_thread; see
        #: repro.core.blocks): per-pc fused-suffix length, unit
        #: closures, and the single-probe dispatch fast table
        self.runlen: "list | None" = None
        self.units: "list | None" = None
        self.dispatch: "list | None" = None
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.state = ThreadState.READY
        self.wait_reqid = -1
        self.wait_rd = 0
        self.stores_inflight = 0
        self.retired = 0
        self.trap: Trap | None = None
        #: set when an atomic waits for store-credit drain before issuing
        self.pending_atomic = False
        #: compiled engine: issue slots still owed by the eagerly
        #: executed continuation (0: none in flight), its total slot
        #: count, and the pre-continuation state used to materialize
        #: exact mid-debt snapshots (see Core.flush_compiled)
        self.owed = 0
        self.owed_total = 0
        self.backup_regs: "list | None" = None
        self.backup_pc = 0
        self.backup_retired = 0

    def write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = value & WORD_MASK

    def snapshot(self) -> dict:
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "state": self.state,
            "wait_reqid": self.wait_reqid,
            "wait_rd": self.wait_rd,
            "stores_inflight": self.stores_inflight,
            "retired": self.retired,
            "trap": self.trap,
            "pending_atomic": self.pending_atomic,
        }

    def restore(self, state: dict) -> None:
        self.regs = list(state["regs"])
        self.pc = state["pc"]
        self.state = state["state"]
        self.wait_reqid = state["wait_reqid"]
        self.wait_rd = state["wait_rd"]
        self.stores_inflight = state["stores_inflight"]
        self.retired = state["retired"]
        self.trap = state["trap"]
        self.pending_atomic = state["pending_atomic"]
        # snapshots are always captured flushed (no continuation debt)
        self.owed = 0
        self.backup_regs = None


class Core:
    """A multi-threaded core with a shared write-through L1 word cache.

    The machine wires up three callbacks:

    * ``issue_pcx(pkt) -> bool``: hand a request to the uncore; ``False``
      means back-pressure (retry next cycle).
    * ``check_addr(addr) -> bool``: core-side address validity (an access
      outside every allocated region traps, modelling an MMU fault).
    * ``write_output(slot, value)``: the application output channel.
    """

    def __init__(
        self,
        core_idx: int,
        l1_words: int = 512,
        issue_pcx: "Callable[[PcxPacket], bool] | None" = None,
        check_addr: "Callable[[int], bool] | None" = None,
        write_output: "Callable[[int, int], None] | None" = None,
        alloc_reqid: "Callable[[], int] | None" = None,
        compiled: bool = False,
    ) -> None:
        if l1_words & (l1_words - 1):
            raise ValueError("l1_words must be a power of two")
        self.core_idx = core_idx
        #: compiled engine: dispatch through block superinstructions
        self._compiled = compiled
        #: live-fault de-optimization: entry closures fall back to the
        #: threaded-code path while this is set (see Machine.hold_live_fault)
        self._compiled_hold = False
        if compiled:
            # shadow the class method so per-cycle calls dispatch the
            # compiled step without an engine branch; the lean variant
            # is bound while no thread carries continuation debt and
            # costs exactly what the event-engine step costs
            self.step = self._step_compiled_lean
        self.threads: list[Thread] = []
        self._rr = 0
        self._l1_size = l1_words
        self._l1_tags = [-1] * l1_words
        self._l1_vals = [0] * l1_words
        self.issue_pcx = issue_pcx
        self.check_addr = check_addr
        self.write_output = write_output
        self.alloc_reqid = alloc_reqid
        #: CPX packets that matched no waiting thread (protocol anomalies).
        self.dropped_cpx = 0
        #: L1 invalidations processed.
        self.invalidations = 0
        #: activity counters for the event-driven machine engine:
        #: number of threads in READY/RETRY, and number with a pending
        #: atomic (waiting for store-credit drain).  ``step()`` can issue
        #: an instruction this cycle iff either is non-zero.
        self._num_ready = 0
        self._num_atomic_wait = 0
        #: set whenever architected core state may have changed since the
        #: last delta checkpoint (read and cleared by the snapshot chain)
        self.dirty = True
        #: L1 indices touched since the last delta capture (None: delta
        #: tracking off); lets checkpoints skip copying the L1 arrays
        self._l1_dirty: "set[int] | None" = None
        #: optional machine hook ``(trapped: bool) -> None`` fired when a
        #: thread enters HALTED or TRAPPED (drives O(1) run-loop checks)
        self.on_thread_stop: "Callable[[bool], None] | None" = None
        #: compiled-engine autopilot: while ``cycle < _auto_until`` the
        #: core's issue schedule is provably "pay one continuation debt
        #: slot of ``_auto_rot`` per cycle" (it is the sole issuable
        #: thread and is deep in debt), so the machine skips the step
        #: call entirely and accounts one retirement per cycle.  The
        #: slot debt is settled lazily -- when the window expires, at a
        #: waking CPX delivery to this core, or at a snapshot boundary.
        self._auto_until = 0
        self._auto_base = 0
        self._auto_rot: "Thread | None" = None
        #: shared armed-core counter (the machine aliases its own list
        #: into every core): lets the machine loops skip the per-core
        #: autopilot checks entirely while no core is armed
        self._auto_count = [0]
        #: compiled-engine head-debt cache: the thread at the round-robin
        #: head when it is paying continuation debt (None otherwise).
        #: A debt head's slot is a pure O(1) payment, so the machine
        #: loop applies it inline without a step call.  Maintained at
        #: every dispatch exit; wakes cannot invalidate it (the head
        #: thread and its debt are untouched by deliveries), flushes
        #: and restores clear it.  NOTE: the inline payment block is
        #: deliberately duplicated in the machine's four hot loops
        #: (_step_event_compiled, run_fast, run_until_cycle,
        #: advance_until) -- a shared helper would cost a call per core
        #: per cycle; any change to the payment invariants must be
        #: applied to all four copies and the owed paths here.
        self._head_debt: "Thread | None" = None
        #: thread-count cache for the hot rotation arithmetic
        self._nt = 0
        #: number of threads currently carrying continuation debt;
        #: while it is zero the core runs the lean step (no debt or
        #: autopilot checks on the hot path)
        self._debt = 0

    def active(self) -> bool:
        """Whether ``step()`` could possibly issue an instruction now."""
        return bool(self._num_ready or self._num_atomic_wait)

    # ------------------------------------------------------------------
    # L1 cache (word-granular, direct-mapped, write-through)
    # ------------------------------------------------------------------
    def _l1_index(self, addr: int) -> int:
        return (addr >> 3) & (self._l1_size - 1)

    def l1_lookup(self, addr: int) -> int | None:
        idx = self._l1_index(addr)
        if self._l1_tags[idx] == addr:
            return self._l1_vals[idx]
        return None

    def l1_fill(self, addr: int, value: int) -> None:
        idx = self._l1_index(addr)
        self._l1_tags[idx] = addr
        self._l1_vals[idx] = value & WORD_MASK
        if self._l1_dirty is not None:
            self._l1_dirty.add(idx)

    def l1_invalidate_line(self, line_addr: int) -> None:
        """Drop every word of a 64-byte line from the L1."""
        base = line_addr & ~63
        dirty = self._l1_dirty
        for word in range(LINE_WORDS):
            addr = base + word * 8
            idx = self._l1_index(addr)
            if self._l1_tags[idx] == addr:
                self._l1_tags[idx] = -1
                if dirty is not None:
                    dirty.add(idx)
        self.invalidations += 1

    def l1_flush(self) -> None:
        self._l1_tags = [-1] * self._l1_size
        self.dirty = True
        if self._l1_dirty is not None:
            self._l1_dirty.update(range(self._l1_size))

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def add_thread(self, program: Program) -> Thread:
        thread = Thread(self.core_idx, len(self.threads), program)
        if self._compiled:
            from repro.core.blocks import compile_blocks

            thread.runlen, thread.units, thread.dispatch = compile_blocks(
                program
            )
        self.threads.append(thread)
        self._nt = len(self.threads)
        self._num_ready += 1
        return thread

    def all_halted(self) -> bool:
        return all(
            t.state in (ThreadState.HALTED, ThreadState.TRAPPED) for t in self.threads
        )

    def any_trapped(self) -> Trap | None:
        for t in self.threads:
            if t.trap is not None:
                return t.trap
        return None

    # ------------------------------------------------------------------
    # CPX delivery
    # ------------------------------------------------------------------
    def deliver_cpx(
        self,
        pkt: CpxPacket,
        _INV=CpxType.INVALIDATE,
        _ACK=CpxType.STORE_ACK,
        _LOAD_RET=CpxType.LOAD_RET,
        _WAIT=ThreadState.WAIT_MEM,
        _READY=ThreadState.READY,
        _M=WORD_MASK,
    ) -> None:
        """Process a return packet addressed to this core.

        A corrupted packet (wrong thread/reqid) that matches no waiting
        thread is dropped and counted -- the original requester keeps
        waiting, which is how lost replies turn into Hang outcomes.
        """
        self.dirty = True
        ctype = pkt.ctype
        if ctype is _INV:
            self.l1_invalidate_line(pkt.addr)
            return
        threads = self.threads
        thread_idx = pkt.thread
        if ctype is _ACK:
            if 0 <= thread_idx < len(threads):
                thread = threads[thread_idx]
                if thread.stores_inflight > 0:
                    thread.stores_inflight -= 1
                    return
            self.dropped_cpx += 1
            return
        # LOAD_RET / ATOMIC_RET / IFETCH_RET complete a stalled thread.
        if 0 <= thread_idx < len(threads):
            thread = threads[thread_idx]
            if (
                thread.state is _WAIT
                and not thread.pending_atomic
                and thread.wait_reqid == pkt.reqid
            ):
                data = pkt.data
                rd = thread.wait_rd
                if rd:  # write_reg inlined (r0 writes are discarded)
                    thread.regs[rd] = data & _M
                if ctype is _LOAD_RET:
                    addr = pkt.addr
                    idx = (addr >> 3) & (self._l1_size - 1)
                    self._l1_tags[idx] = addr
                    self._l1_vals[idx] = data & _M
                    dirty = self._l1_dirty
                    if dirty is not None:
                        dirty.add(idx)
                thread.wait_reqid = -1
                thread.state = _READY
                self._num_ready += 1
                return
        self.dropped_cpx += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
        _WAIT=ThreadState.WAIT_MEM,
    ) -> bool:
        """Issue at most one instruction.  Returns True if one retired.

        The round-robin scan and instruction dispatch are fused and
        inlined -- this is the hottest function in the repository.  The
        round-robin head being ready is the overwhelmingly common case,
        so it dispatches without setting up the scan loop.
        """
        if not (self._num_ready or self._num_atomic_wait):
            # no thread could possibly issue: identical outcome to the
            # full round-robin scan, at O(1) cost
            return False
        threads = self.threads
        idx = self._rr
        thread = threads[idx]
        state = thread.state
        if state is _READY or state is _RETRY:
            idx += 1
            self._rr = 0 if idx == len(threads) else idx
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                return self._trap(thread, TrapKind.BAD_PC)
            thread.state = _READY
            return thread.handlers[pc](self, thread, cycle)
        return self._step_scan(cycle)

    def _step_scan(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
        _WAIT=ThreadState.WAIT_MEM,
    ) -> bool:
        """Full round-robin scan (the head thread could not issue)."""
        threads = self.threads
        n = len(threads)
        idx = self._rr
        for _scan in range(n):
            if idx >= n:
                idx -= n
            thread = threads[idx]
            state = thread.state
            if state is _READY or state is _RETRY:
                pass
            elif state is _WAIT and (
                thread.pending_atomic and thread.stores_inflight == 0
            ):
                # store credits drained; issue the atomic now
                thread.state = _RETRY
                self._num_ready += 1
            else:
                idx += 1
                continue
            idx += 1
            self._rr = 0 if idx == n else idx
            # -- inlined _execute ----------------------------------
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                return self._trap(thread, TrapKind.BAD_PC)
            thread.state = _READY
            return thread.handlers[pc](self, thread, cycle)
        return False

    def _step_compiled_lean(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
    ) -> bool:
        """Compiled-engine issue slot while no thread carries debt.

        Identical to the event engine's :meth:`step` except that it
        dispatches through the compiled table (plain handlers for
        impure/short regions, continuation starters for long fused
        regions).  Starting a continuation creates slot debt and swaps
        the core to :meth:`_step_compiled_debt` until it drains.
        """
        if not (self._num_ready or self._num_atomic_wait):
            return False
        threads = self.threads
        idx = self._rr
        thread = threads[idx]
        state = thread.state
        if state is _READY or state is _RETRY:
            idx += 1
            self._rr = 0 if idx == self._nt else idx
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                return self._trap(thread, TrapKind.BAD_PC)
            thread.state = _READY
            fn = thread.dispatch[pc]
            if fn is not None:
                return fn(self, thread, cycle)
            if self._compiled_hold:
                return thread.handlers[pc](self, thread, cycle)
            return self._run_continuation(thread, thread.units, pc, cycle)
        return self._step_scan_lean(cycle)

    def _step_scan_lean(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
        _WAIT=ThreadState.WAIT_MEM,
    ) -> bool:
        """Round-robin scan for the lean compiled step (no debt)."""
        threads = self.threads
        n = len(threads)
        idx = self._rr
        for _scan in range(n):
            if idx >= n:
                idx -= n
            thread = threads[idx]
            state = thread.state
            if state is _READY or state is _RETRY:
                pass
            elif state is _WAIT and (
                thread.pending_atomic and thread.stores_inflight == 0
            ):
                # store credits drained; issue the atomic now
                thread.state = _RETRY
                self._num_ready += 1
            else:
                idx += 1
                continue
            idx += 1
            self._rr = 0 if idx == n else idx
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                return self._trap(thread, TrapKind.BAD_PC)
            thread.state = _READY
            fn = thread.dispatch[pc]
            if fn is not None:
                return fn(self, thread, cycle)
            if self._compiled_hold:
                return thread.handlers[pc](self, thread, cycle)
            return self._run_continuation(thread, thread.units, pc, cycle)
        return False

    def _step_compiled_debt(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
    ) -> bool:
        """Compiled-engine issue slot while continuation debt is live.

        Same scheduling as :meth:`step` (identical round-robin, state
        transitions and retirement accounting), but a thread inside a
        fused region pays its remaining issue slots as O(1) debt
        decrements (see :mod:`repro.core.blocks`).  When the last debt
        drains the core swaps back to the lean step.
        """
        if not (self._num_ready or self._num_atomic_wait):
            return False
        if self._auto_until:
            # autopilot window expired (or this loop does not use it):
            # settle the slots skipped through the previous cycle
            self._auto_settle(cycle - 1)
        if not self._debt:
            self.step = self._step_compiled_lean
            return self._step_compiled_lean(cycle)
        threads = self.threads
        idx = self._rr
        thread = threads[idx]
        owed = thread.owed
        if owed:
            # debt implies the head thread is READY: pay one slot
            idx += 1
            if idx == self._nt:
                idx = 0
            self._rr = idx
            self.dirty = True
            owed -= 1
            thread.owed = owed
            if not owed:
                self._debt -= 1
            nh = threads[idx]
            self._head_debt = nh if nh.owed else None
            return True
        state = thread.state
        if state is _READY or state is _RETRY:
            idx += 1
            if idx == self._nt:
                idx = 0
            self._rr = idx
            self.dirty = True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                res = self._trap(thread, TrapKind.BAD_PC)
            else:
                thread.state = _READY
                fn = thread.dispatch[pc]
                if fn is not None:
                    res = fn(self, thread, cycle)
                elif self._compiled_hold:
                    res = thread.handlers[pc](self, thread, cycle)
                else:
                    res = self._run_continuation(
                        thread, thread.units, pc, cycle
                    )
            nh = threads[self._rr]
            self._head_debt = nh if nh.owed else None
            return res
        return self._step_scan_compiled(cycle)

    def _run_continuation(self, thread: Thread, units, pc: int, cycle: int) -> bool:
        """Eagerly execute fused units from ``pc``; record slot debt."""
        thread.backup_regs = thread.regs[:]
        thread.backup_pc = pc
        thread.backup_retired = thread.retired
        runlen = thread.runlen
        plen = thread.program_len
        slots = 0
        while True:
            units[pc](self, thread, cycle)
            slots += runlen[pc]
            pc = thread.pc
            # a wild branch target (negative or past the end) must NOT
            # index the tables (Python would wrap a negative pc): stop
            # the chain so the next dispatch slot traps BAD_PC exactly
            # like the threaded-code engines
            if not 0 <= pc < plen or slots >= CONTINUATION_CAP:
                break
            if not runlen[pc]:
                break
        owed = slots - 1
        thread.owed = owed
        thread.owed_total = slots
        # slots >= 2 always (continuations start at runlen >= 2 pcs):
        # debt is now live -- swap to the debt-aware step and prime the
        # machine loop's head-debt fast path
        self._debt += 1
        self.step = self._step_compiled_debt
        nh = self.threads[self._rr]
        self._head_debt = nh if nh.owed else None
        if owed > 1 and self._num_ready == 1 and not self._num_atomic_wait:
            # Sole issuable thread: every following slot is provably its
            # debt, so the machine loop can skip this core wholesale
            # until the debt runs out (or a CPX delivery re-plans the
            # schedule).  Multi-thread rotations are deliberately not
            # armed: with several ready threads the first debt expiry is
            # only a couple of slots away and the window bookkeeping
            # costs more than the skipped dispatches save.
            self._auto_base = cycle
            self._auto_until = cycle + owed
            self._auto_rot = thread
            self._auto_count[0] += 1
        return True

    def _auto_settle(self, through_cycle: int) -> None:
        """Pay the autopilot slot debt up to ``through_cycle`` inclusive.

        The machine has already accounted one retirement per skipped
        cycle; this applies the matching owed decrements to the sole
        issuable thread and leaves autopilot.  The round-robin pointer
        needs no adjustment: with a single issuable thread the per-slot
        scan always leaves ``_rr`` one past that thread.
        ``through_cycle`` is the last cycle whose issue slot has been
        consumed (the current cycle when called from the uncore's CPX
        delivery, the previous one when called at dispatch or a
        snapshot boundary).
        """
        consumed = through_cycle - self._auto_base
        if consumed > 0:
            self._auto_rot.owed -= consumed
        self._auto_until = 0
        self._auto_rot = None
        self._auto_count[0] -= 1

    def _step_scan_compiled(
        self,
        cycle: int,
        _READY=ThreadState.READY,
        _RETRY=ThreadState.RETRY,
        _WAIT=ThreadState.WAIT_MEM,
    ) -> bool:
        """Full round-robin scan for the compiled engine (head thread
        could not issue).  Mirrors :meth:`_step_scan` exactly."""
        threads = self.threads
        n = len(threads)
        idx = self._rr
        for _scan in range(n):
            if idx >= n:
                idx -= n
            thread = threads[idx]
            state = thread.state
            if state is _READY or state is _RETRY:
                pass
            elif state is _WAIT and (
                thread.pending_atomic and thread.stores_inflight == 0
            ):
                # store credits drained; issue the atomic now
                thread.state = _RETRY
                self._num_ready += 1
            else:
                idx += 1
                continue
            idx += 1
            self._rr = 0 if idx == n else idx
            self.dirty = True
            owed = thread.owed
            if owed:
                owed -= 1
                thread.owed = owed
                if not owed:
                    self._debt -= 1
                nh = threads[self._rr]
                self._head_debt = nh if nh.owed else None
                return True
            pc = thread.pc
            if not 0 <= pc < thread.program_len:
                res = self._trap(thread, TrapKind.BAD_PC)
            else:
                thread.state = _READY
                fn = thread.dispatch[pc]
                if fn is not None:
                    res = fn(self, thread, cycle)
                elif self._compiled_hold:
                    res = thread.handlers[pc](self, thread, cycle)
                else:
                    res = self._run_continuation(
                        thread, thread.units, pc, cycle
                    )
            nh = threads[self._rr]
            self._head_debt = nh if nh.owed else None
            return res
        return False

    def flush_compiled(self) -> None:
        """Materialize the exact architected state of in-flight debt.

        A thread that has consumed ``owed_total - owed`` slots of an
        eagerly executed continuation has, in reference terms, executed
        exactly that many of its instructions.  Restoring the
        pre-continuation backup and replaying that count through the
        plain threaded-code handlers (pure ops: registers, pc and
        retired only) yields bit-identical per-slot state, after which
        the thread re-enters compiled dispatch at its true pc.  Called
        before any snapshot capture and when a live-fault hold engages
        (the machine settles any autopilot debt first).
        """
        if self._auto_until:
            self._auto_until = 0
            self._auto_rot = None
            self._auto_count[0] -= 1
        self._head_debt = None
        self._debt = 0
        if self._compiled:
            self.step = self._step_compiled_lean
        for thread in self.threads:
            owed = thread.owed
            if owed:
                consumed = thread.owed_total - owed
                thread.owed = 0
                thread.regs = thread.backup_regs
                thread.pc = thread.backup_pc
                thread.retired = thread.backup_retired
                thread.backup_regs = None
                handlers = thread.handlers
                for _ in range(consumed):
                    handlers[thread.pc](self, thread, 0)

    def _trap(self, thread: Thread, kind: TrapKind, addr: int = 0) -> bool:
        thread.trap = Trap(kind, self.core_idx, thread.thread_idx, thread.pc, addr)
        thread.state = ThreadState.TRAPPED
        self._num_ready -= 1
        if thread.pending_atomic:
            # leave the flag itself untouched (it is architected snapshot
            # state); the counter only tracks potentially-issuable threads
            self._num_atomic_wait -= 1
        if self.on_thread_stop is not None:
            self.on_thread_stop(True)
        return False

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        if self._compiled:
            self.flush_compiled()
        return {
            "rr": self._rr,
            "l1_tags": list(self._l1_tags),
            "l1_vals": list(self._l1_vals),
            "dropped_cpx": self.dropped_cpx,
            "invalidations": self.invalidations,
            "threads": [t.snapshot() for t in self.threads],
        }

    def restore(self, state: dict) -> None:
        self._rr = state["rr"]
        self._l1_tags = list(state["l1_tags"])
        self._l1_vals = list(state["l1_vals"])
        self.dropped_cpx = state["dropped_cpx"]
        self.invalidations = state["invalidations"]
        for thread, tstate in zip(self.threads, state["threads"]):
            thread.restore(tstate)
        if self._auto_until:
            self._auto_until = 0
            self._auto_rot = None
            self._auto_count[0] -= 1
        self._head_debt = None
        self._debt = 0
        if self._compiled:
            self.step = self._step_compiled_lean
        self.dirty = True
        self._recount()

    def _recount(self) -> None:
        """Rebuild the activity counters from the thread states."""
        ready = atomic = 0
        for t in self.threads:
            if t.state is ThreadState.READY or t.state is ThreadState.RETRY:
                ready += 1
            if t.pending_atomic and t.state not in (
                ThreadState.HALTED,
                ThreadState.TRAPPED,
            ):
                atomic += 1
        self._num_ready = ready
        self._num_atomic_wait = atomic

    # ------------------------------------------------------------------
    # Delta capture (see repro.system.snapshots)
    # ------------------------------------------------------------------
    def delta_capture_begin(self) -> None:
        """Start tracking L1 mutations for delta checkpoints."""
        self._l1_dirty = set()

    def delta_capture_end(self) -> None:
        self._l1_dirty = None

    def delta_snapshot(self) -> dict:
        """Changes since the last capture: thread state in full (it
        churns every cycle), the L1 arrays as a sparse index delta."""
        if self._compiled:
            self.flush_compiled()
        tags = self._l1_tags
        vals = self._l1_vals
        delta = {
            "rr": self._rr,
            "dropped_cpx": self.dropped_cpx,
            "invalidations": self.invalidations,
            "threads": [t.snapshot() for t in self.threads],
            "l1_delta": {i: (tags[i], vals[i]) for i in self._l1_dirty},
        }
        self._l1_dirty = set()
        return delta


# ----------------------------------------------------------------------
# Threaded-code compiler
# ----------------------------------------------------------------------
# ``compile_program`` translates a Program once into a list of
# per-instruction closures ("handlers"); ``Core._execute`` dispatches by
# indexing the list with the thread's pc.  This removes the per-cycle
# decode work (Instr field loads and the opcode if/elif chain) from the
# hottest loop in the repository -- the golden runs, phase-1 replays and
# phase-3 outcome runs all spend most of their time here.  Handlers must
# be *bit-exact* with the original interpreter; the semantics below
# mirror it branch for branch.

#: id(program) -> handler list; entries drop out when the program dies.
_COMPILED: dict[int, list] = {}


def compile_program(program: Program) -> list:
    """The (cached) handler list for a program."""
    key = id(program)
    handlers = _COMPILED.get(key)
    if handlers is None:
        handlers = [
            _HANDLER_FACTORIES[instr.op](instr) for instr in program.instrs
        ]
        _COMPILED[key] = handlers
        weakref.finalize(program, _COMPILED.pop, key, None)
    return handlers


def _make_nop(instr):
    def h(core, thread, cycle):
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_ldi(instr):
    rd = instr.rd
    if rd == 0:  # writes to r0 are discarded
        return _make_nop(instr)
    value = instr.imm & WORD_MASK

    def h(core, thread, cycle):
        thread.regs[rd] = value
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _alu_reg_factory(expr: str):
    """Factory for ``rd <- ra <op> rb`` handlers (masked like write_reg)."""
    src = (
        "def _make(instr):\n"
        "    rd = instr.rd\n"
        "    ra = instr.ra\n"
        "    rb = instr.rb\n"
        "    if rd == 0:\n"
        "        return _make_nop(instr)\n"
        "    def h(core, thread, cycle, _M=WORD_MASK):\n"
        "        regs = thread.regs\n"
        f"        regs[rd] = ({expr}) & _M\n"
        "        thread.pc += 1\n"
        "        thread.retired += 1\n"
        "        return True\n"
        "    return h\n"
    )
    namespace = {"WORD_MASK": WORD_MASK, "_make_nop": _make_nop}
    exec(src, namespace)
    return namespace["_make"]


def _alu_imm_factory(expr: str):
    """Factory for ``rd <- ra <op> imm`` handlers."""
    src = (
        "def _make(instr):\n"
        "    rd = instr.rd\n"
        "    ra = instr.ra\n"
        "    imm = instr.imm\n"
        "    if rd == 0:\n"
        "        return _make_nop(instr)\n"
        "    def h(core, thread, cycle, _M=WORD_MASK):\n"
        "        regs = thread.regs\n"
        f"        regs[rd] = ({expr}) & _M\n"
        "        thread.pc += 1\n"
        "        thread.retired += 1\n"
        "        return True\n"
        "    return h\n"
    )
    namespace = {"WORD_MASK": WORD_MASK, "_make_nop": _make_nop}
    exec(src, namespace)
    return namespace["_make"]


def _branch_factory(cmp: str):
    """Factory for ``if ra <cmp> rb: pc <- imm`` handlers."""
    src = (
        "def _make(instr):\n"
        "    ra = instr.ra\n"
        "    rb = instr.rb\n"
        "    imm = instr.imm\n"
        "    def h(core, thread, cycle):\n"
        "        regs = thread.regs\n"
        f"        if regs[ra] {cmp} regs[rb]:\n"
        "            thread.pc = imm\n"
        "        else:\n"
        "            thread.pc += 1\n"
        "        thread.retired += 1\n"
        "        return True\n"
        "    return h\n"
    )
    namespace: dict = {}
    exec(src, namespace)
    return namespace["_make"]


def _make_jmp(instr):
    imm = instr.imm

    def h(core, thread, cycle):
        thread.pc = imm
        thread.retired += 1
        return True

    return h


def _make_div(instr):
    rd, ra, rb = instr.rd, instr.ra, instr.rb

    def h(core, thread, cycle, _ILL=TrapKind.ILLEGAL):
        regs = thread.regs
        divisor = regs[rb]
        if divisor == 0:
            return core._trap(thread, _ILL)
        if rd:
            regs[rd] = regs[ra] // divisor
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_mod(instr):
    rd, ra, rb = instr.rd, instr.ra, instr.rb

    def h(core, thread, cycle, _ILL=TrapKind.ILLEGAL):
        regs = thread.regs
        divisor = regs[rb]
        if divisor == 0:
            return core._trap(thread, _ILL)
        if rd:
            regs[rd] = regs[ra] % divisor
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_out(instr):
    ra, rb = instr.ra, instr.rb

    def h(core, thread, cycle):
        regs = thread.regs
        core.write_output(regs[ra], regs[rb])
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_assert_eq(instr):
    ra, rb = instr.ra, instr.rb

    def h(core, thread, cycle, _AF=TrapKind.ASSERT_FAIL):
        regs = thread.regs
        if regs[ra] != regs[rb]:
            return core._trap(thread, _AF)
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_halt(instr):
    def h(core, thread, cycle, _HALTED=ThreadState.HALTED):
        thread.state = _HALTED
        core._num_ready -= 1
        stop = core.on_thread_stop
        if stop is not None:
            stop(False)
        thread.retired += 1
        return True

    return h


def _make_ld(instr):
    rd, ra, imm = instr.rd, instr.ra, instr.imm

    def h(
        core,
        thread,
        cycle,
        _M=WORD_MASK,
        _Pkt=PcxPacket,
        _LOAD=PcxType.LOAD,
        _WAIT=ThreadState.WAIT_MEM,
        _RETRY=ThreadState.RETRY,
        _MIS=TrapKind.MISALIGNED,
        _BAD=TrapKind.BAD_ADDR,
    ):
        regs = thread.regs
        addr = (regs[ra] + imm) & _M
        if addr & 7:
            return core._trap(thread, _MIS, addr)
        check = core.check_addr
        if check is not None and not check(addr):
            return core._trap(thread, _BAD, addr)
        idx = (addr >> 3) & (core._l1_size - 1)
        if core._l1_tags[idx] == addr:
            if rd:
                regs[rd] = core._l1_vals[idx]
            thread.pc += 1
            thread.retired += 1
            return True
        reqid = core.alloc_reqid()
        pkt = _Pkt(_LOAD, core.core_idx, thread.thread_idx, addr, 0, reqid)
        if not core.issue_pcx(pkt):
            thread.state = _RETRY
            return False
        thread.state = _WAIT
        core._num_ready -= 1
        thread.wait_reqid = reqid
        thread.wait_rd = rd
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _make_st(instr):
    ra, rb, imm = instr.ra, instr.rb, instr.imm

    def h(
        core,
        thread,
        cycle,
        _M=WORD_MASK,
        _Pkt=PcxPacket,
        _STORE=PcxType.STORE,
        _RETRY=ThreadState.RETRY,
        _MIS=TrapKind.MISALIGNED,
        _BAD=TrapKind.BAD_ADDR,
        _CREDITS=STORE_CREDITS,
    ):
        regs = thread.regs
        addr = (regs[ra] + imm) & _M
        if addr & 7:
            return core._trap(thread, _MIS, addr)
        check = core.check_addr
        if check is not None and not check(addr):
            return core._trap(thread, _BAD, addr)
        if thread.stores_inflight >= _CREDITS:
            thread.state = _RETRY
            return False
        reqid = core.alloc_reqid()
        data = regs[rb]
        pkt = _Pkt(_STORE, core.core_idx, thread.thread_idx, addr, data, reqid)
        if not core.issue_pcx(pkt):
            thread.state = _RETRY
            return False
        # write-through with allocate-on-store into the local L1
        idx = (addr >> 3) & (core._l1_size - 1)
        core._l1_tags[idx] = addr
        core._l1_vals[idx] = data
        dirty = core._l1_dirty
        if dirty is not None:
            dirty.add(idx)
        thread.stores_inflight += 1
        thread.pc += 1
        thread.retired += 1
        return True

    return h


def _atomic_factory(is_faa: bool):
    ptype = PcxType.ATOMIC_ADD if is_faa else PcxType.ATOMIC_TAS

    def _make(instr):
        rd, ra, rb = instr.rd, instr.ra, instr.rb

        def h(
            core,
            thread,
            cycle,
            _M=WORD_MASK,
            _Pkt=PcxPacket,
            _T=ptype,
            _WAIT=ThreadState.WAIT_MEM,
            _RETRY=ThreadState.RETRY,
            _MIS=TrapKind.MISALIGNED,
            _BAD=TrapKind.BAD_ADDR,
            _FAA=is_faa,
        ):
            if thread.pending_atomic:
                # this is the deferred re-issue after the store drain
                # (only the same atomic instruction can re-execute with
                # the flag set, so clearing it here is equivalent to the
                # old clear-on-every-dispatch)
                thread.pending_atomic = False
                core._num_atomic_wait -= 1
            regs = thread.regs
            addr = regs[ra] & _M
            if addr & 7:
                return core._trap(thread, _MIS, addr)
            check = core.check_addr
            if check is not None and not check(addr):
                return core._trap(thread, _BAD, addr)
            if thread.stores_inflight > 0:
                # drain posted stores before the atomic (fence semantics)
                thread.state = _WAIT
                thread.pending_atomic = True
                core._num_ready -= 1
                core._num_atomic_wait += 1
                return False
            reqid = core.alloc_reqid()
            operand = regs[rb] if _FAA else 0
            pkt = _Pkt(_T, core.core_idx, thread.thread_idx, addr, operand, reqid)
            if not core.issue_pcx(pkt):
                thread.state = _RETRY
                return False
            # atomics bypass the L1; drop any stale local copy
            idx = (addr >> 3) & (core._l1_size - 1)
            if core._l1_tags[idx] == addr:
                core._l1_tags[idx] = -1
                dirty = core._l1_dirty
                if dirty is not None:
                    dirty.add(idx)
            thread.state = _WAIT
            core._num_ready -= 1
            thread.wait_reqid = reqid
            thread.wait_rd = rd
            thread.pc += 1
            thread.retired += 1
            return True

        return h

    return _make


_HANDLER_FACTORIES = {
    Op.NOP: _make_nop,
    Op.LDI: _make_ldi,
    Op.ADD: _alu_reg_factory("regs[ra] + regs[rb]"),
    Op.SUB: _alu_reg_factory("regs[ra] - regs[rb]"),
    Op.MUL: _alu_reg_factory("regs[ra] * regs[rb]"),
    Op.AND: _alu_reg_factory("regs[ra] & regs[rb]"),
    Op.OR: _alu_reg_factory("regs[ra] | regs[rb]"),
    Op.XOR: _alu_reg_factory("regs[ra] ^ regs[rb]"),
    Op.SHL: _alu_reg_factory("regs[ra] << (regs[rb] & 63)"),
    Op.SHR: _alu_reg_factory("regs[ra] >> (regs[rb] & 63)"),
    Op.CMPLT: _alu_reg_factory("1 if regs[ra] < regs[rb] else 0"),
    Op.ADDI: _alu_imm_factory("regs[ra] + imm"),
    Op.MULI: _alu_imm_factory("regs[ra] * imm"),
    Op.ANDI: _alu_imm_factory("regs[ra] & imm"),
    Op.ORI: _alu_imm_factory("regs[ra] | imm"),
    Op.XORI: _alu_imm_factory("regs[ra] ^ imm"),
    Op.SHLI: _alu_imm_factory("regs[ra] << (imm & 63)"),
    Op.SHRI: _alu_imm_factory("regs[ra] >> (imm & 63)"),
    Op.LD: _make_ld,
    Op.ST: _make_st,
    Op.TAS: _atomic_factory(False),
    Op.FAA: _atomic_factory(True),
    Op.BEQ: _branch_factory("=="),
    Op.BNE: _branch_factory("!="),
    Op.BLT: _branch_factory("<"),
    Op.BGE: _branch_factory(">="),
    Op.JMP: _make_jmp,
    Op.OUT: _make_out,
    Op.ASSERT_EQ: _make_assert_eq,
    Op.HALT: _make_halt,
    Op.MOD: _make_mod,
    Op.DIV: _make_div,
}
