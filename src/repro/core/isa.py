"""Instruction set of the reproduction cores.

A compact 64-bit register machine: 16 general-purpose registers (``r0``
hardwired to zero), word-addressed memory (8-byte words), posted
write-through stores, and L2-serialized atomics (test-and-set and
fetch-and-add) for synchronization -- the same primitive mix the paper's
multi-threaded benchmarks exercise on the T2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of architectural registers per hardware thread.
NUM_REGS = 16

#: All register values are 64-bit unsigned.
WORD_MASK = (1 << 64) - 1


class Op(enum.IntEnum):
    """Opcodes.  Field usage is documented per group in :class:`Instr`."""

    NOP = 0
    #: rd <- imm
    LDI = 1
    #: rd <- ra (+-*&|^ etc.) rb
    ADD = 2
    SUB = 3
    MUL = 4
    AND = 5
    OR = 6
    XOR = 7
    SHL = 8
    SHR = 9
    #: rd <- 1 if ra < rb else 0 (unsigned)
    CMPLT = 10
    #: rd <- ra op imm
    ADDI = 11
    MULI = 12
    ANDI = 13
    ORI = 14
    XORI = 15
    SHLI = 16
    SHRI = 17
    #: rd <- mem[ra + imm]
    LD = 18
    #: mem[ra + imm] <- rb
    ST = 19
    #: atomic: rd <- mem[ra]; mem[ra] <- 1 (serialized at the L2 bank)
    TAS = 20
    #: atomic: rd <- mem[ra]; mem[ra] <- mem[ra] + rb
    FAA = 21
    #: if ra == rb: pc <- imm
    BEQ = 22
    BNE = 23
    #: unsigned comparisons
    BLT = 24
    BGE = 25
    #: pc <- imm
    JMP = 26
    #: application output: output[reg[ra]] <- reg[rb]
    OUT = 27
    #: trap (unexpected termination) if ra != rb
    ASSERT_EQ = 28
    #: thread finished
    HALT = 29
    #: rd <- ra % rb (rb != 0; 0 traps as illegal)
    MOD = 30
    #: rd <- ra / rb (unsigned; rb == 0 traps)
    DIV = 31


#: Opcodes that access memory through the uncore.
MEMORY_OPS = frozenset({Op.LD, Op.ST, Op.TAS, Op.FAA})

#: Opcodes that are serialized at the L2 bank (bypass the L1).
ATOMIC_OPS = frozenset({Op.TAS, Op.FAA})

#: Branch/jump opcodes whose ``imm`` is a code label (instruction index).
CONTROL_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.JMP})

#: Opcodes that touch only thread-private register state: no memory, no
#: uncore interaction, no output, no trap, no stall, and they always
#: retire in their issue slot.  These are the fusable bodies of the
#: block compiler's superinstructions (see :mod:`repro.core.blocks`).
#: DIV/MOD are excluded (divide-by-zero traps), OUT writes the machine
#: output channel, ASSERT_EQ traps -- all of those end a block.
PURE_OPS = frozenset(
    {
        Op.NOP,
        Op.LDI,
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.CMPLT,
        Op.ADDI,
        Op.MULI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.SHLI,
        Op.SHRI,
    }
)


@dataclass(frozen=True, slots=True)
class Instr:
    """One instruction.

    Field conventions:
        * ALU register ops: ``rd, ra, rb``.
        * ALU immediate ops: ``rd, ra, imm``.
        * ``LD rd, [ra+imm]`` / ``ST rb, [ra+imm]``.
        * ``TAS rd, [ra]`` / ``FAA rd, [ra], rb``.
        * Branches compare ``ra`` with ``rb``; target is ``imm``.
        * ``OUT``: output slot ``reg[ra]`` receives value ``reg[rb]``.
    """

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for field_name, value in (("rd", self.rd), ("ra", self.ra), ("rb", self.rb)):
            if not 0 <= value < NUM_REGS:
                raise ValueError(
                    f"{self.op.name}: register {field_name}={value} out of range"
                )

    def __str__(self) -> str:
        return (
            f"{self.op.name} rd=r{self.rd} ra=r{self.ra} rb=r{self.rb} "
            f"imm={self.imm}"
        )
