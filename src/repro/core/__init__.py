"""Processor-core substrate: compact RISC ISA, assembler, core model.

The paper runs SPARC binaries under Simics; this package provides the
equivalent substrate at reproduction scale -- a small register-machine
ISA (:mod:`repro.core.isa`), a program builder / assembler
(:mod:`repro.core.program`) and an in-order, fine-grained multi-threaded
core model (:mod:`repro.core.cpu`) that produces the same PCX/CPX request
traffic classes as the OpenSPARC T2 cores.
"""

from repro.core.isa import Instr, Op, NUM_REGS
from repro.core.program import Program, ProgramBuilder
from repro.core.cpu import Core, Thread, ThreadState, Trap, TrapKind

__all__ = [
    "Core",
    "Instr",
    "NUM_REGS",
    "Op",
    "Program",
    "ProgramBuilder",
    "Thread",
    "ThreadState",
    "Trap",
    "TrapKind",
]
