"""Program builder (assembler) for the reproduction ISA.

Workloads construct per-thread programs with :class:`ProgramBuilder`,
which provides label resolution for branch targets and convenience
emitters.  The result is an immutable :class:`Program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.isa import CONTROL_OPS, PURE_OPS, Instr, Op


@dataclass(frozen=True)
class Program:
    """An immutable sequence of instructions plus a name for diagnostics."""

    name: str
    instrs: tuple[Instr, ...]

    def __len__(self) -> int:
        return len(self.instrs)

    def __getitem__(self, index: int) -> Instr:
        return self.instrs[index]


def block_spans(program: Program) -> list[tuple[int, int, bool]]:
    """Basic-block boundary metadata for the superinstruction compiler.

    Returns maximal straight-line units as ``(start, end, has_branch)``
    with ``end`` exclusive: a run of :data:`~repro.core.isa.PURE_OPS`
    register instructions, optionally terminated by a single
    branch/jump (:data:`~repro.core.isa.CONTROL_OPS`).  A lone branch
    is a unit of its own.  Memory operations, atomics, OUT, ASSERT_EQ,
    DIV/MOD and HALT never join a unit: they can stall, trap, or
    interact with state outside the issuing thread, so they must
    execute exactly in their own issue slot (the threaded-code
    fallback path).
    """
    instrs = program.instrs
    n = len(instrs)
    spans: list[tuple[int, int, bool]] = []
    i = 0
    while i < n:
        op = instrs[i].op
        if op in PURE_OPS:
            j = i
            while j < n and instrs[j].op in PURE_OPS:
                j += 1
            has_branch = j < n and instrs[j].op in CONTROL_OPS
            end = j + 1 if has_branch else j
            spans.append((i, end, has_branch))
            i = end
        elif op in CONTROL_OPS:
            spans.append((i, i + 1, True))
            i += 1
        else:
            i += 1
    return spans


class _Label:
    """A forward-referenceable branch target."""

    __slots__ = ("name", "position")

    def __init__(self, name: str) -> None:
        self.name = name
        self.position: int | None = None


@dataclass
class ProgramBuilder:
    """Fluent assembler with labels.

    Example::

        b = ProgramBuilder("sum")
        loop = b.label("loop")
        b.ldi(1, 0)                  # r1 = 0 (accumulator)
        b.ldi(2, 0)                  # r2 = i
        b.place(loop)
        b.ld(3, 4, 0)                # r3 = mem[r4]
        b.add(1, 1, 3)
        b.addi(4, 4, 8)
        b.addi(2, 2, 1)
        b.blt(2, 5, loop)            # while i < r5
        b.halt()
        program = b.build()
    """

    name: str
    _instrs: list[tuple] = field(default_factory=list)
    _labels: dict[str, _Label] = field(default_factory=dict)

    # -- labels ---------------------------------------------------------
    def label(self, name: str) -> _Label:
        """Create (or fetch) a label object usable as a branch target."""
        if name not in self._labels:
            self._labels[name] = _Label(name)
        return self._labels[name]

    def place(self, label: "_Label | str") -> "_Label":
        """Bind a label to the current position."""
        if isinstance(label, str):
            label = self.label(label)
        if label.position is not None:
            raise ValueError(f"label {label.name!r} placed twice")
        label.position = len(self._instrs)
        return label

    @property
    def here(self) -> int:
        """Current instruction index."""
        return len(self._instrs)

    # -- raw emission ---------------------------------------------------
    def emit(self, op: Op, rd: int = 0, ra: int = 0, rb: int = 0, imm=0) -> None:
        """Emit one instruction; ``imm`` may be a label for control ops."""
        self._instrs.append((op, rd, ra, rb, imm))

    # -- convenience emitters -------------------------------------------
    def nop(self) -> None:
        self.emit(Op.NOP)

    def ldi(self, rd: int, imm: int) -> None:
        self.emit(Op.LDI, rd=rd, imm=imm)

    def add(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.ADD, rd=rd, ra=ra, rb=rb)

    def sub(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.SUB, rd=rd, ra=ra, rb=rb)

    def mul(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.MUL, rd=rd, ra=ra, rb=rb)

    def div(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.DIV, rd=rd, ra=ra, rb=rb)

    def mod(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.MOD, rd=rd, ra=ra, rb=rb)

    def and_(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.AND, rd=rd, ra=ra, rb=rb)

    def or_(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.OR, rd=rd, ra=ra, rb=rb)

    def xor(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.XOR, rd=rd, ra=ra, rb=rb)

    def shl(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.SHL, rd=rd, ra=ra, rb=rb)

    def shr(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.SHR, rd=rd, ra=ra, rb=rb)

    def cmplt(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.CMPLT, rd=rd, ra=ra, rb=rb)

    def addi(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.ADDI, rd=rd, ra=ra, imm=imm)

    def muli(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.MULI, rd=rd, ra=ra, imm=imm)

    def andi(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.ANDI, rd=rd, ra=ra, imm=imm)

    def ori(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.ORI, rd=rd, ra=ra, imm=imm)

    def xori(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.XORI, rd=rd, ra=ra, imm=imm)

    def shli(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.SHLI, rd=rd, ra=ra, imm=imm)

    def shri(self, rd: int, ra: int, imm: int) -> None:
        self.emit(Op.SHRI, rd=rd, ra=ra, imm=imm)

    def ld(self, rd: int, ra: int, imm: int = 0) -> None:
        self.emit(Op.LD, rd=rd, ra=ra, imm=imm)

    def st(self, rb: int, ra: int, imm: int = 0) -> None:
        self.emit(Op.ST, ra=ra, rb=rb, imm=imm)

    def tas(self, rd: int, ra: int) -> None:
        self.emit(Op.TAS, rd=rd, ra=ra)

    def faa(self, rd: int, ra: int, rb: int) -> None:
        self.emit(Op.FAA, rd=rd, ra=ra, rb=rb)

    def beq(self, ra: int, rb: int, target: "_Label | str | int") -> None:
        self.emit(Op.BEQ, ra=ra, rb=rb, imm=self._target(target))

    def bne(self, ra: int, rb: int, target: "_Label | str | int") -> None:
        self.emit(Op.BNE, ra=ra, rb=rb, imm=self._target(target))

    def blt(self, ra: int, rb: int, target: "_Label | str | int") -> None:
        self.emit(Op.BLT, ra=ra, rb=rb, imm=self._target(target))

    def bge(self, ra: int, rb: int, target: "_Label | str | int") -> None:
        self.emit(Op.BGE, ra=ra, rb=rb, imm=self._target(target))

    def jmp(self, target: "_Label | str | int") -> None:
        self.emit(Op.JMP, imm=self._target(target))

    def out(self, slot_reg: int, value_reg: int) -> None:
        self.emit(Op.OUT, ra=slot_reg, rb=value_reg)

    def assert_eq(self, ra: int, rb: int) -> None:
        self.emit(Op.ASSERT_EQ, ra=ra, rb=rb)

    def halt(self) -> None:
        self.emit(Op.HALT)

    # -- common idioms ---------------------------------------------------
    def spin_lock(self, lock_addr_reg: int, scratch: int) -> None:
        """Acquire a spin lock whose address is in ``lock_addr_reg``."""
        retry = self.label(f"_lock{self.here}")
        self.place(retry)
        self.tas(scratch, lock_addr_reg)
        self.bne(scratch, 0, retry)

    def spin_unlock(self, lock_addr_reg: int) -> None:
        """Release a spin lock (store zero)."""
        self.st(0, lock_addr_reg, 0)

    def barrier(self, counter_addr_reg: int, nthreads: int, s1: int, s2: int) -> None:
        """Sense-free barrier: FAA a counter, spin until it reaches a
        multiple of ``nthreads``.

        Suitable for a single use per counter address; workloads allocate
        one counter word per barrier episode.
        """
        self.ldi(s2, 1)
        self.faa(s1, counter_addr_reg, s2)
        wait = self.label(f"_bar{self.here}")
        self.place(wait)
        # Atomic read (FAA of zero) so the spin always observes L2 state.
        self.ldi(s2, 0)
        self.faa(s1, counter_addr_reg, s2)
        self.ldi(s2, nthreads)
        self.blt(s1, s2, wait)

    # -- finalization -----------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and freeze the program."""
        resolved: list[Instr] = []
        for op, rd, ra, rb, imm in self._instrs:
            if isinstance(imm, _Label):
                if imm.position is None:
                    raise ValueError(f"label {imm.name!r} never placed")
                imm = imm.position
            if op in CONTROL_OPS and not 0 <= imm <= len(self._instrs):
                raise ValueError(f"{op.name}: branch target {imm} out of program")
            resolved.append(Instr(op, rd=rd, ra=ra, rb=rb, imm=imm))
        return Program(self.name, tuple(resolved))

    def _target(self, target: "_Label | str | int"):
        if isinstance(target, str):
            return self.label(target)
        return target
