"""Architected state of one L2 cache bank.

This is exactly the per-instance "high-level uncore state" of Table 1 for
the L2 cache controller: the tag address array, the cache line state
bits, the cache data array and the L1 cache directory.  The accelerated
mode's functional L2 model operates directly on this state; the
mixed-mode platform transfers it into (and back out of) the RTL model's
SRAM arrays at co-simulation entry/exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.address import AddressMap, WORDS_PER_LINE


@dataclass(slots=True)
class L2Line:
    """One cache line's architected content.

    Slotted: the functional L2 model's lookup scans these objects on
    every request, and slot loads are measurably cheaper than instance
    dict lookups on that path.
    """

    valid: bool = False
    dirty: bool = False
    tag: int = 0
    #: 8 x 64-bit data words.
    data: list[int] = field(default_factory=lambda: [0] * WORDS_PER_LINE)
    #: Bitmask of cores whose L1 may hold words of this line.
    directory: int = 0


class L2BankState:
    """Tag/state/data/directory arrays of one L2 bank.

    Replacement uses a per-set rotating victim pointer (NRU-flavoured,
    like the T2's pseudo-LRU); the pointer is part of the architected
    state so that the functional model and the RTL model always agree on
    victim selection after a state transfer.
    """

    def __init__(self, bank: int, amap: AddressMap, ways: int = 8) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.bank = bank
        self.amap = amap
        self.sets = amap.l2_sets
        self.ways = ways
        self.lines = [
            [L2Line() for _ in range(ways)] for _ in range(self.sets)
        ]
        self.victim_ptr = [0] * self.sets

    # ------------------------------------------------------------------
    # Lookup / allocation
    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> tuple[int, int] | None:
        """Return ``(set, way)`` of the hit line, or None on miss."""
        amap = self.amap
        set_idx = (addr >> amap._set_shift) & amap._set_mask
        tag = addr >> amap._tag_shift
        ways = self.lines[set_idx]
        for way in range(self.ways):
            line = ways[way]
            if line.valid and line.tag == tag:
                return (set_idx, way)
        return None

    def choose_victim(self, set_idx: int) -> int:
        """Pick the victim way for a fill: first invalid, else rotating."""
        ways = self.lines[set_idx]
        for way in range(self.ways):
            if not ways[way].valid:
                return way
        victim = self.victim_ptr[set_idx]
        self.victim_ptr[set_idx] = (victim + 1) % self.ways
        return victim

    def line_addr(self, set_idx: int, way: int) -> int:
        """Physical line address of a resident line."""
        line = self.lines[set_idx][way]
        return self.amap.rebuild_addr(line.tag, set_idx, self.bank)

    def install(
        self, addr: int, data: list[int], dirty: bool = False
    ) -> tuple[int, int]:
        """Install a line (caller must have handled the victim)."""
        set_idx = self.amap.set_of(addr)
        way = self.choose_victim(set_idx)
        line = self.lines[set_idx][way]
        line.valid = True
        line.dirty = dirty
        line.tag = self.amap.tag_of(addr)
        line.data = list(data)
        line.directory = 0
        return (set_idx, way)

    # ------------------------------------------------------------------
    # Snapshot / transfer
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "lines": [
                [
                    (ln.valid, ln.dirty, ln.tag, list(ln.data), ln.directory)
                    for ln in ways
                ]
                for ways in self.lines
            ],
            "victim_ptr": list(self.victim_ptr),
        }

    def restore(self, state: dict) -> None:
        for set_idx, ways in enumerate(state["lines"]):
            for way, (valid, dirty, tag, data, directory) in enumerate(ways):
                line = self.lines[set_idx][way]
                line.valid = valid
                line.dirty = dirty
                line.tag = tag
                line.data = list(data)
                line.directory = directory
        self.victim_ptr = list(state["victim_ptr"])

    def resident_lines(self) -> list[tuple[int, int, L2Line]]:
        """All valid lines as ``(set, way, line)`` tuples."""
        found = []
        for set_idx, ways in enumerate(self.lines):
            for way, line in enumerate(ways):
                if line.valid:
                    found.append((set_idx, way, line))
        return found

    def state_bytes(self) -> dict[str, int]:
        """Sizes of the four architected arrays, for the Table 1 check."""
        line_bytes = WORDS_PER_LINE * 8
        nlines = self.sets * self.ways
        tag_bits = 40  # tag field width in the RTL model
        return {
            "tag_address_array": nlines * tag_bits // 8,
            "cache_line_state_bits": nlines * 2 // 8 + 1,
            "cache_data_array": nlines * line_bytes,
            "l1_cache_directory": nlines * 8 // 8,
        }
