"""Main-memory (DRAM) functional model.

Sparse word-granular storage.  During co-simulation the golden RTL copy
must be completely isolated from the target's (possibly corrupted)
writebacks *and* must never read back corrupted data from the live
memory, so it runs on a full private :meth:`Dram.fork` of main memory.
Both sides run behind a :class:`WriteTrackingPort`; the union of written
addresses bounds the post-injection diff, which makes the "did the error
corrupt memory?" check cheap (paper Sec. 2.2 phase 2 checks this every
comparison interval).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.soc.address import LINE_BYTES, WORDS_PER_LINE

_WORD_MASK = (1 << 64) - 1


class Dram:
    """Sparse 64-bit-word main memory (zero-initialized).

    When dirty-word tracking is enabled (delta snapshots), every written
    word address is recorded so a checkpoint can copy only the words
    that changed since the previous one instead of the whole dict.
    """

    __slots__ = ("words", "_dirty")

    def __init__(self) -> None:
        self.words: dict[int, int] = {}
        #: written word addresses since the last delta capture (None:
        #: tracking disabled -- the default outside golden runs)
        self._dirty: "set[int] | None" = None

    def read_word(self, addr: int) -> int:
        return self.words.get(addr & ~7, 0)

    def write_word(self, addr: int, value: int) -> None:
        addr &= ~7
        value &= _WORD_MASK
        if value:
            self.words[addr] = value
        else:
            # keep the dict sparse: zero is the default
            self.words.pop(addr, None)
        if self._dirty is not None:
            self._dirty.add(addr)

    # ------------------------------------------------------------------
    # Dirty-word tracking (delta snapshots)
    # ------------------------------------------------------------------
    def start_dirty_tracking(self) -> None:
        self._dirty = set()

    def stop_dirty_tracking(self) -> None:
        self._dirty = None

    def take_dirty_delta(self) -> dict[int, "int | None"]:
        """Words written since the last capture: addr -> current value.

        ``None`` marks a word that is now zero (erased from the sparse
        dict).  Resets the dirty set.
        """
        if self._dirty is None:
            raise RuntimeError("dirty tracking is not enabled")
        get = self.words.get
        delta = {addr: get(addr) for addr in self._dirty}
        self._dirty = set()
        return delta

    def read_line(self, line_addr: int) -> tuple[int, ...]:
        base = line_addr & ~(LINE_BYTES - 1)
        get = self.words.get
        return tuple(get(base + 8 * i, 0) for i in range(WORDS_PER_LINE))

    def write_line(self, line_addr: int, words: Iterable[int]) -> None:
        base = line_addr & ~(LINE_BYTES - 1)
        for i, value in enumerate(words):
            self.write_word(base + 8 * i, value)

    def fork(self) -> "Dram":
        """An independent copy (the golden component's private memory)."""
        clone = Dram()
        clone.words = dict(self.words)
        return clone

    def snapshot(self) -> dict[int, int]:
        return dict(self.words)

    def restore(self, state: dict[int, int]) -> None:
        if self._dirty is not None:
            # conservative: a wholesale replacement dirties every word
            # that exists on either side
            self._dirty.update(self.words)
            self._dirty.update(state)
        self.words = dict(state)

    def footprint_words(self) -> int:
        """Number of non-zero words currently stored."""
        return len(self.words)


class WriteTrackingPort:
    """A DRAM access port that records which word addresses were written.

    The mixed-mode platform puts one port in front of the live memory
    (target side) and one in front of the golden fork; comparing the two
    memories only at the union of written addresses detects divergence in
    time proportional to co-simulation write traffic, not memory size.
    """

    __slots__ = ("dram", "written")

    def __init__(self, dram: Dram) -> None:
        self.dram = dram
        self.written: set[int] = set()

    def read_word(self, addr: int) -> int:
        return self.dram.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self.written.add(addr & ~7)
        self.dram.write_word(addr, value)

    def read_line(self, line_addr: int) -> tuple[int, ...]:
        return self.dram.read_line(line_addr)

    def write_line(self, line_addr: int, words: Iterable[int]) -> None:
        base = line_addr & ~(LINE_BYTES - 1)
        for i in range(WORDS_PER_LINE):
            self.written.add(base + 8 * i)
        self.dram.write_line(line_addr, words)


def divergent_words(
    live: Dram, golden: Dram, candidate_addrs: Iterable[int]
) -> list[int]:
    """Word addresses among ``candidate_addrs`` where the memories differ.

    The golden fork holds the error-free values; a non-empty result means
    the injected error corrupted main memory.
    """
    return sorted(
        addr
        for addr in set(candidate_addrs)
        if live.read_word(addr) != golden.read_word(addr)
    )
