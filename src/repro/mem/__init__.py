"""Functional memory substrate.

:class:`repro.mem.dram.Dram` models main memory contents (the MCU's
high-level state of Table 1); :class:`repro.mem.l2state.L2BankState`
models the architected content of one L2 cache bank (tag array, line
state bits, data array, L1 directory -- exactly the Table 1 inventory).
Both are shared between the accelerated-mode functional models and the
state-transfer logic of the mixed-mode platform.
"""

from repro.mem.dram import Dram, WriteTrackingPort, divergent_words
from repro.mem.l2state import L2BankState, L2Line

__all__ = ["Dram", "L2BankState", "L2Line", "WriteTrackingPort", "divergent_words"]
