"""The serializable record of one sampled fault.

A :class:`FaultEvent` names everything a fault model decided for one
injection run: which component instance, at which cycle, which storage
locations, and the model parameters that shaped the event (stuck value,
re-flip period, ...).  Events round-trip losslessly through plain
dicts/JSON, so campaign records can carry them into the canonical
result schema and back.

Location convention: ``(storage, entry, bit)`` where ``storage`` is the
register/array name, or ``"sram:<name>"`` for SRAM rows (matching the
snapshot key convention of :class:`repro.rtl.module.RtlModule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultEvent:
    """One fully-sampled fault occurrence.

    Attributes:
        model: canonical fault-model name (``seu``, ``mbu``, ...).
        component: uncore component the fault lands in.
        instance: component instance index.
        cycle: requested injection cycle (the actual flip happens after
            quiescing and warm-up, like every injection run).
        locations: ``(storage, entry, bit)`` tuples the model corrupts;
            empty until resolved for models that defer location choice
            to apply time (the default single-bit flip keeps the global
            target-bit index in ``params`` instead).
        params: model parameters relevant to this event (JSON-safe).
        masked: the Protection filter reclassified this event -- the
            storage's parity/ECC corrects it, so nothing is applied and
            the run trivially vanishes.
    """

    model: str
    component: str
    instance: int = 0
    cycle: int = 0
    locations: list = field(default_factory=list)
    params: dict = field(default_factory=dict)
    masked: bool = False

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "component": self.component,
            "instance": self.instance,
            "cycle": self.cycle,
            "locations": [list(loc) for loc in self.locations],
            "params": dict(self.params),
            "masked": self.masked,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            model=data["model"],
            component=data["component"],
            instance=data.get("instance", 0),
            cycle=data.get("cycle", 0),
            locations=[tuple(loc) for loc in data.get("locations", ())],
            params=dict(data.get("params", {})),
            masked=data.get("masked", False),
        )
