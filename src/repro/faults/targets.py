"""Target samplers and filters: *which storage* a fault may land in.

A :class:`TargetFilter` narrows a module's storage inventory down to the
locations a fault model samples from: by flip-flop class (Table 4), by
register-name glob, by storage kind (flip-flop vs SRAM), and by
entry/row range.  :class:`Protection` models the parity/ECC machinery
the paper excludes protected storage for: events whose every flip is
individually correctable are *masked* -- reclassified rather than
applied, so the run trivially vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.rtl.registers import FlipFlopClass

#: Accepted ``classes=`` filter values (plus ``any``).
FF_CLASS_NAMES = tuple(cls.value for cls in FlipFlopClass)


@dataclass(frozen=True)
class TargetFilter:
    """Narrowing of a module's storage inventory.

    Attributes:
        classes: eligible flip-flop classes (Table 4 names); ``("any",)``
            admits every class.  Ignored for SRAM targets (SRAMs have no
            class -- they are uniformly ECC-protected).
        name_glob: ``fnmatch`` glob on the register/SRAM name.
        kind: ``"ff"`` (registers and register arrays) or ``"sram"``.
        entry_range: inclusive ``(lo, hi)`` bound on the entry/row index.
    """

    classes: tuple = (FlipFlopClass.TARGET.value,)
    name_glob: "str | None" = None
    kind: str = "ff"
    entry_range: "tuple[int, int] | None" = None

    def admits_class(self, ff_class: FlipFlopClass) -> bool:
        return "any" in self.classes or ff_class.value in self.classes

    def admits_name(self, name: str) -> bool:
        return self.name_glob is None or fnmatchcase(name, self.name_glob)

    def admits_entry(self, entry: int) -> bool:
        if self.entry_range is None:
            return True
        lo, hi = self.entry_range
        return lo <= entry <= hi


def candidate_registers(module, filt: TargetFilter) -> list:
    """Registers/arrays of ``module`` admitted by the filter, in
    declaration order (the order the sampling index is built in)."""
    out = []
    for name, reg in module.registers().items():
        if filt.admits_class(reg.ff_class) and filt.admits_name(name):
            out.append(reg)
    return out


def candidate_bits(module, filt: TargetFilter) -> list[tuple[str, int, int]]:
    """All ``(register, entry, bit)`` locations admitted by the filter."""
    out: list[tuple[str, int, int]] = []
    for reg in candidate_registers(module, filt):
        entries = getattr(reg, "entries", 1)
        for entry in range(entries):
            if not filt.admits_entry(entry):
                continue
            for bit in range(reg.width):
                out.append((reg.name, entry, bit))
    return out


def candidate_rows(module, filt: TargetFilter) -> list[tuple[str, int]]:
    """All ``(sram, row)`` pairs admitted by the filter."""
    out: list[tuple[str, int]] = []
    for name, sram in module.srams().items():
        if not filt.admits_name(name):
            continue
        for row in range(sram.entries):
            if filt.admits_entry(row):
                out.append((name, row))
    return out


class Protection:
    """Parity/ECC masking model (the paper's Table 4 exclusion rule).

    Protected flip-flops hold ECC/CRC-encoded data and SRAM arrays are
    ECC-protected: a single flipped bit per protected word is corrected
    by the existing machinery.  An event is **masked** when every one of
    its locations sits in protected storage *and* no protected word
    receives two or more flips (SECDED corrects one error per word;
    multi-bit bursts inside a word defeat it).
    """

    def is_protected(self, module, storage: str) -> bool:
        if storage.startswith("sram:"):
            return True
        reg = module.registers().get(storage)
        return reg is not None and reg.ff_class is FlipFlopClass.PROTECTED

    def masks(self, module, locations) -> bool:
        if not locations:
            return False
        per_word: dict[tuple[str, int], int] = {}
        for storage, entry, _bit in locations:
            if not self.is_protected(module, storage):
                return False
            key = (storage, entry)
            per_word[key] = per_word.get(key, 0) + 1
        return all(count < 2 for count in per_word.values())
