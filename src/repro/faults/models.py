"""The pluggable fault models (what gets corrupted, where, and when).

A :class:`FaultModel` owns one perturbation family end-to-end:

* ``sample(platform, component, rng)`` draws a concrete
  :class:`~repro.faults.event.FaultEvent` from the component's injection
  window and target space,
* ``apply(adapter, event)`` performs the corruption on the attached RTL
  target (a no-op for events the Protection filter masked),
* ``live(event, inject_cycle)`` optionally returns a :class:`LiveFault`
  the platform re-fires during co-simulation -- the per-cycle hook
  stuck-at and intermittent faults need.  Live faults expose
  ``next_active_cycle()`` in the spirit of the event engine's
  active-set scheduler, so the platform batches simulation up to the
  next due assertion instead of single-stepping.

Models are named and parameterized through compact spec strings
(``"mbu:k=3"``, ``"stuck:value=0"``); :func:`parse_fault` is the single
parser, and :meth:`FaultModel.spec_string` emits the canonical form
(sorted non-default parameters) that experiment specs and digests use.

The default :class:`SingleBitFlip` reproduces the pre-subsystem
behaviour bit-identically: it consumes the campaign RNG in the exact
sequence of the old inline sampler and injects through the same
``flip_target_bit`` path.
"""

from __future__ import annotations

import random

from repro.faults.event import FaultEvent
from repro.faults.inventory import (
    SRAM_COMPONENTS,
    cached_bits,
    cached_rows,
    default_module,
    prototype_module,
)
from repro.faults.targets import (
    FF_CLASS_NAMES,
    Protection,
    TargetFilter,
    candidate_bits,
    candidate_rows,
)
from repro.faults.windows import injection_window, sample_point
from repro.soc.geometry import T2_GEOMETRY


def _int_param(raw: str) -> int:
    return int(raw, 0)


def _str_param(raw: str) -> str:
    return raw


class FaultModel:
    """Base class: parameter plumbing shared by every model."""

    #: canonical model name (the spec-string prefix)
    name = "?"
    #: one-line description for ``repro faults list``
    describe = ""
    #: human-readable target-space summary for ``repro faults list``
    targets = ""
    #: declared parameters: name -> (converter, default)
    PARAMS: dict = {}

    def __init__(self, **params) -> None:
        for key in params:
            if key not in self.PARAMS:
                raise ValueError(
                    f"fault model {self.name!r} has no parameter {key!r}; "
                    f"known: {sorted(self.PARAMS)}"
                )
        for key, (conv, default) in self.PARAMS.items():
            raw = params.get(key, default)
            if isinstance(raw, str) and conv is not _str_param:
                try:
                    raw = conv(raw)
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"fault model {self.name!r}: bad value for "
                        f"parameter {key!r}: {exc}"
                    ) from exc
            setattr(self, key, raw)
        self._validate_params()

    def _validate_params(self) -> None:
        """Model-specific parameter checks (raise ``ValueError``)."""

    # ------------------------------------------------------------------
    def params_dict(self, all_params: bool = False) -> dict:
        """Current parameters; non-default only unless ``all_params``."""
        out = {}
        for key, (_conv, default) in self.PARAMS.items():
            value = getattr(self, key)
            if all_params or value != default:
                out[key] = value
        return out

    def spec_string(self) -> str:
        """Canonical spec string (sorted non-default parameters)."""
        params = self.params_dict()
        if not params:
            return self.name
        body = ",".join(f"{k}={params[k]}" for k in sorted(params))
        return f"{self.name}:{body}"

    def validate_component(self, component: str) -> None:
        """Reject components this model cannot target."""

    # ------------------------------------------------------------------
    def sample(
        self, platform, component: str, rng: random.Random
    ) -> FaultEvent:
        raise NotImplementedError

    def apply(self, adapter, event: FaultEvent) -> tuple[str, int, int]:
        """Corrupt the attached target; returns the primary location."""
        raise NotImplementedError

    def live(self, event: FaultEvent, inject_cycle: int):
        """Per-cycle re-assertion hook, or ``None`` for one-shot faults."""
        return None

    # ------------------------------------------------------------------
    # counted front doors (what the campaign/platform drivers call)
    # ------------------------------------------------------------------
    def sample_event(
        self, platform, component: str, rng: random.Random
    ) -> FaultEvent:
        """:meth:`sample` plus obs accounting (sampled/masked counts).

        Counters are digest-neutral -- they observe the event after the
        RNG draws, never consume randomness themselves.
        """
        event = self.sample(platform, component, rng)
        from repro import obs

        obs.counter("faults.sampled", labels={"model": self.name}).inc()
        if event.masked:
            obs.counter("faults.masked", labels={"model": self.name}).inc()
        return event

    def apply_event(self, adapter, event: FaultEvent) -> tuple[str, int, int]:
        """:meth:`apply` plus obs accounting (applied count)."""
        location = self.apply(adapter, event)
        from repro import obs

        obs.counter("faults.applied", labels={"model": self.name}).inc()
        return location

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.__class__.__name__}({self.spec_string()!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FaultModel)
            and self.spec_string() == other.spec_string()
        )

    def __hash__(self) -> int:
        return hash(self.spec_string())


class LiveFault:
    """A fault that stays active during co-simulation.

    The platform consults :meth:`next_active_cycle` (mirroring the
    event engine's component protocol) and calls :meth:`fire` when the
    machine reaches that cycle; ``None`` means the fault is released
    and the platform can batch-step freely again.
    """

    def next_active_cycle(self) -> "int | None":
        raise NotImplementedError

    def fire(self, adapter, cycle: int) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# anchored-sampling helpers (every model except the default SEU)
# ----------------------------------------------------------------------
def _check_classes_param(model) -> None:
    known = FF_CLASS_NAMES + ("any",)
    if model.classes not in known:
        raise ValueError(
            f"fault model {model.name!r}: classes must be one of "
            f"{known}, got {model.classes!r}"
        )


class _AnchoredModel(FaultModel):
    """Shared plumbing for models that pick an explicit flip-flop
    location (everything except the index-sampled default SEU)."""

    def _anchor_filter(self) -> TargetFilter:
        return TargetFilter(
            classes=("any",) if self.classes == "any" else (self.classes,),
            name_glob=self.reg or None,
        )

    def validate_component(self, component: str) -> None:
        """Catch empty target filters at spec time, before the golden
        run is paid for (flip-flop inventories are geometry-independent,
        so the default-geometry prototype is authoritative)."""
        if not candidate_bits(default_module(component), self._anchor_filter()):
            raise ValueError(
                f"fault model {self.name!r}: no {component} flip-flops "
                f"match classes={self.classes!r} reg={self.reg or '*'!r}"
            )

    def _sample_anchor(self, platform, component, rng) -> tuple[str, int, int]:
        cands = cached_bits(platform, component, self._anchor_filter())
        if not cands:
            raise ValueError(
                f"fault model {self.name!r}: no {component} flip-flops "
                f"match classes={self.classes!r} reg={self.reg or '*'!r}"
            )
        return cands[rng.randrange(len(cands))]

    def _event_params(self) -> dict:
        """The model parameters recorded on each sampled event."""
        raise NotImplementedError

    def _locations_from_anchor(self, module, anchor) -> list:
        """Expand the anchor into the corrupted locations (default: 1)."""
        return [anchor]

    def sample(self, platform, component, rng) -> FaultEvent:
        window = injection_window(platform, component)
        cycle, instance = sample_point(window, rng)
        anchor = self._sample_anchor(platform, component, rng)
        module = prototype_module(platform, component)
        locations = self._locations_from_anchor(module, anchor)
        event = FaultEvent(
            self.name, component, instance, cycle,
            locations=locations, params=self._event_params(),
        )
        event.masked = Protection().masks(module, locations)
        return event


# ----------------------------------------------------------------------
# concrete models
# ----------------------------------------------------------------------
class SingleBitFlip(FaultModel):
    """One transient bit flip in a TARGET-class flip-flop (the paper's
    SEU model and the campaign default)."""

    name = "seu"
    describe = "single transient bit flip (paper default)"
    targets = "TARGET flip-flops"
    PARAMS: dict = {}

    def sample(self, platform, component, rng) -> FaultEvent:
        window = injection_window(platform, component)
        cycle, instance = sample_point(window, rng)
        bit = rng.randrange(T2_GEOMETRY[component].target_ffs)
        return FaultEvent(
            self.name, component, instance, cycle, params={"bit": bit}
        )

    def apply(self, adapter, event) -> tuple[str, int, int]:
        loc = adapter.flip(event.params["bit"])
        event.locations = [loc]
        return loc


class MultiBitUpset(_AnchoredModel):
    """A spatially adjacent k-bit burst within one register entry or
    SRAM-adjacent word (a charge-sharing multi-bit upset)."""

    name = "mbu"
    describe = "k adjacent bits flip within one register entry"
    targets = "flip-flops (classes= filter; reg= glob)"
    PARAMS = {
        "k": (_int_param, 2),
        "classes": (_str_param, "target"),
        "reg": (_str_param, ""),
    }

    def _validate_params(self) -> None:
        if self.k < 1:
            raise ValueError(
                f"fault model {self.name!r}: k must be at least 1"
            )
        _check_classes_param(self)

    def _event_params(self) -> dict:
        return {"k": self.k}

    def _locations_from_anchor(self, module, anchor) -> list:
        name, entry, bit = anchor
        width = module.registers()[name].width
        return [
            (name, entry, (bit + i) % width) for i in range(min(self.k, width))
        ]

    def apply(self, adapter, event) -> tuple[str, int, int]:
        if not event.masked:
            for name, entry, bit in event.locations:
                adapter.flip_at(name, entry, bit)
        return event.locations[0]


class StuckAt(_AnchoredModel):
    """A flip-flop output forced to 0/1 and re-asserted every cycle
    until released after ``hold`` cycles (0 holds for the whole
    co-simulation window, which can never vanish or hand over and so
    always ends persistent at the cap)."""

    name = "stuck"
    describe = "bit forced to 0/1, re-asserted each cycle until released"
    targets = "flip-flops (classes= filter; reg= glob)"
    PARAMS = {
        "value": (_int_param, 1),
        "hold": (_int_param, 400),
        "classes": (_str_param, "target"),
        "reg": (_str_param, ""),
    }

    def _validate_params(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(
                f"fault model {self.name!r}: value must be 0 or 1"
            )
        if self.hold < 0:
            raise ValueError(
                f"fault model {self.name!r}: hold must be non-negative"
            )
        _check_classes_param(self)

    def _event_params(self) -> dict:
        return {"value": self.value, "hold": self.hold}

    def apply(self, adapter, event) -> tuple[str, int, int]:
        loc = event.locations[0]
        if not event.masked:
            adapter.force_at(*loc, self.value)
        return loc

    def live(self, event, inject_cycle):
        if event.masked:
            return None
        release = inject_cycle + self.hold if self.hold else None
        return StuckAtLive(event.locations[0], self.value, inject_cycle, release)


class StuckAtLive(LiveFault):
    """Re-asserts a stuck bit every cycle until the release cycle."""

    def __init__(self, loc, value: int, inject_cycle: int,
                 release: "int | None") -> None:
        self.loc = loc
        self.value = value
        self.release = release
        self._next = inject_cycle + 1

    def next_active_cycle(self) -> "int | None":
        if self.release is not None and self._next > self.release:
            return None
        return self._next

    def fire(self, adapter, cycle: int) -> None:
        adapter.force_at(*self.loc, self.value)
        self._next = cycle + 1


class IntermittentFlip(_AnchoredModel):
    """A marginal flip-flop that keeps flipping on a duty cycle: the bit
    toggles at injection and re-toggles every ``period`` cycles until
    the ``window`` closes."""

    name = "flicker"
    describe = "bit re-flips every period cycles over a window"
    targets = "flip-flops (classes= filter; reg= glob)"
    PARAMS = {
        "period": (_int_param, 50),
        "window": (_int_param, 2_000),
        "classes": (_str_param, "target"),
        "reg": (_str_param, ""),
    }

    def _validate_params(self) -> None:
        if self.period < 1:
            raise ValueError(
                f"fault model {self.name!r}: period must be at least 1"
            )
        if self.window < self.period:
            raise ValueError(
                f"fault model {self.name!r}: window must cover at least "
                f"one period"
            )
        _check_classes_param(self)

    def _event_params(self) -> dict:
        return {"period": self.period, "window": self.window}

    def apply(self, adapter, event) -> tuple[str, int, int]:
        loc = event.locations[0]
        if not event.masked:
            adapter.flip_at(*loc)
        return loc

    def live(self, event, inject_cycle):
        if event.masked:
            return None
        return IntermittentLive(
            event.locations[0], inject_cycle, self.period, self.window
        )


class IntermittentLive(LiveFault):
    """Re-flips the bit on the duty cycle until the window closes."""

    def __init__(self, loc, inject_cycle: int, period: int, window: int):
        self.loc = loc
        self.period = period
        self.until = inject_cycle + window
        self._next = inject_cycle + period

    def next_active_cycle(self) -> "int | None":
        return self._next if self._next <= self.until else None

    def fire(self, adapter, cycle: int) -> None:
        adapter.flip_at(*self.loc)
        self._next = cycle + self.period


class SramFault(FaultModel):
    """A k-bit burst inside one SRAM row (tag/state/data/directory
    arrays, PCIe transfer buffers) -- storage the single-bit campaign
    never touches.  SRAMs are ECC-protected, so the default is a
    double-bit burst (SECDED corrects one bit; ``k=1`` events are
    masked unless ``ecc=off``)."""

    name = "sram"
    describe = "k-bit burst in one SRAM row (k=1 is ECC-masked)"
    targets = "SRAM arrays (l2c, pcie; sram= glob, rows= lo-hi)"
    PARAMS = {
        "k": (_int_param, 2),
        "sram": (_str_param, ""),
        "rows": (_str_param, ""),
        "ecc": (_str_param, "on"),
    }

    def _validate_params(self) -> None:
        if self.k < 1:
            raise ValueError(
                f"fault model {self.name!r}: k must be at least 1"
            )
        if self.ecc not in ("on", "off"):
            raise ValueError(
                f"fault model {self.name!r}: ecc must be 'on' or 'off'"
            )
        self._row_range = None
        if self.rows:
            lo, sep, hi = self.rows.partition("-")
            try:
                self._row_range = (int(lo), int(hi) if sep else int(lo))
            except ValueError as exc:
                raise ValueError(
                    f"fault model {self.name!r}: rows must be 'lo-hi', "
                    f"got {self.rows!r}"
                ) from exc

    def _row_filter(self) -> TargetFilter:
        return TargetFilter(
            kind="sram",
            name_glob=self.sram or None,
            entry_range=self._row_range,
        )

    def validate_component(self, component: str) -> None:
        if component not in SRAM_COMPONENTS:
            raise ValueError(
                f"fault model {self.name!r} targets SRAM arrays; component "
                f"{component!r} has none (choose one of {SRAM_COMPONENTS})"
            )
        # catch an unmatched sram= glob at spec time (SRAM names are
        # geometry-independent; row counts are not, so a rows= range is
        # checked against the campaign prototype at sample time instead)
        name_only = TargetFilter(kind="sram", name_glob=self.sram or None)
        if not candidate_rows(default_module(component), name_only):
            raise ValueError(
                f"fault model {self.name!r}: no {component} SRAM matches "
                f"sram={self.sram or '*'!r}"
            )

    def sample(self, platform, component, rng) -> FaultEvent:
        # component/glob validity was checked at spec time; the empty-
        # candidate error below covers direct callers
        window = injection_window(platform, component)
        cycle, instance = sample_point(window, rng)
        module = prototype_module(platform, component)
        rows = cached_rows(platform, component, self._row_filter())
        if not rows:
            raise ValueError(
                f"fault model {self.name!r}: no {component} SRAM rows match "
                f"sram={self.sram or '*'!r} rows={self.rows or 'all'!r}"
            )
        name, row = rows[rng.randrange(len(rows))]
        width = module.srams()[name].width
        bit = rng.randrange(width)
        locations = [
            ("sram:" + name, row, (bit + i) % width)
            for i in range(min(self.k, width))
        ]
        event = FaultEvent(
            self.name, component, instance, cycle,
            locations=locations, params={"k": self.k},
        )
        if self.ecc == "on":
            event.masked = Protection().masks(module, locations)
        return event

    def apply(self, adapter, event) -> tuple[str, int, int]:
        if not event.masked:
            for storage, row, bit in event.locations:
                adapter.flip_sram(storage.partition(":")[2], row, bit)
        return event.locations[0]


#: Registry of spec-string names to model classes.
FAULT_MODELS: dict[str, type] = {
    cls.name: cls
    for cls in (SingleBitFlip, MultiBitUpset, StuckAt, IntermittentFlip,
                SramFault)
}

#: The model used when an experiment spec leaves ``fault`` unset.
DEFAULT_FAULT = SingleBitFlip.name


def parse_fault(spec: "str | None") -> FaultModel:
    """Build a fault model from a spec string (``None`` -> the default).

    Syntax: ``name[:key=value,key=value,...]``, e.g. ``"mbu:k=3"`` or
    ``"stuck:value=0,reg=iq_*"``.
    """
    if spec is None or spec == "":
        return SingleBitFlip()
    name, _sep, body = spec.partition(":")
    cls = FAULT_MODELS.get(name.strip())
    if cls is None:
        raise ValueError(
            f"unknown fault model {name.strip()!r}; "
            f"known: {sorted(FAULT_MODELS)}"
        )
    params: dict[str, str] = {}
    if body:
        for item in body.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"fault spec {spec!r}: parameters must be key=value, "
                    f"got {item!r}"
                )
            params[key.strip()] = value.strip()
    return cls(**params)


def fault_table() -> tuple[list[str], list[tuple]]:
    """``(headers, rows)`` describing every model (``repro faults list``)."""
    headers = ["Model", "Parameters (defaults)", "Targets", "Description"]
    rows = []
    for name in sorted(FAULT_MODELS):
        cls = FAULT_MODELS[name]
        params = ", ".join(
            f"{key}={default!r}" if isinstance(default, str)
            else f"{key}={default}"
            for key, (_conv, default) in cls.PARAMS.items()
        )
        rows.append((name, params or "-", cls.targets, cls.describe))
    return headers, rows
