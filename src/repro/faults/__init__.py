"""Pluggable fault models -- *what* gets corrupted, *where*, and *when*.

The subsystem owns everything between "run an injection campaign" and
"a specific bit changed": injection-window sampling
(:mod:`repro.faults.windows`), target filtering and parity/ECC masking
(:mod:`repro.faults.targets`), sampling prototypes
(:mod:`repro.faults.inventory`), the serializable
:class:`~repro.faults.event.FaultEvent` record, and the concrete
:class:`~repro.faults.models.FaultModel` implementations.

Campaigns select a model through a compact spec string::

    from repro.api import ExperimentSpec, Session

    spec = ExperimentSpec(benchmark="fft", component="l2c",
                          fault="mbu:k=2", n=50)
    result = Session().run(spec)

Leaving ``fault`` unset (or ``"seu"``) keeps the paper's single-bit
TARGET-flip-flop model, bit-identical to the pre-subsystem behaviour.
"""

from repro.faults.event import FaultEvent
from repro.faults.inventory import SRAM_COMPONENTS, build_module, prototype_module
from repro.faults.models import (
    DEFAULT_FAULT,
    FAULT_MODELS,
    FaultModel,
    IntermittentFlip,
    LiveFault,
    MultiBitUpset,
    SingleBitFlip,
    SramFault,
    StuckAt,
    fault_table,
    parse_fault,
)
from repro.faults.targets import Protection, TargetFilter, candidate_bits, candidate_rows
from repro.faults.windows import InjectionWindow, injection_window, sample_point

__all__ = [
    "DEFAULT_FAULT",
    "FAULT_MODELS",
    "FaultEvent",
    "FaultModel",
    "InjectionWindow",
    "IntermittentFlip",
    "LiveFault",
    "MultiBitUpset",
    "Protection",
    "SRAM_COMPONENTS",
    "SingleBitFlip",
    "SramFault",
    "StuckAt",
    "TargetFilter",
    "build_module",
    "candidate_bits",
    "candidate_rows",
    "fault_table",
    "injection_window",
    "parse_fault",
    "prototype_module",
    "sample_point",
]
