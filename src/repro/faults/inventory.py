"""Prototype RTL modules for fault sampling.

Fault models choose *where* to corrupt before the RTL target exists
(the co-simulation adapter builds it at attach time), so they consult a
**prototype**: a throwaway RTL instance with the same storage inventory
as the module the adapter will build.  Flip-flop inventories are
geometry-independent (padded to the Table 3/4 totals), but SRAM row
counts scale with the cache geometry, so per-platform prototypes are
built from the platform's own address map and way count, and cached on
the platform.
"""

from __future__ import annotations

from repro.faults.targets import TargetFilter, candidate_bits, candidate_rows
from repro.mem.dram import Dram
from repro.soc.address import AddressMap
from repro.uncore.ccx import CcxRtl
from repro.uncore.l2c import L2cRtl
from repro.uncore.mcu import McuRtl
from repro.uncore.pcie import PcieRtl

#: Components whose RTL models declare SRAM arrays (SramFault targets).
SRAM_COMPONENTS: tuple[str, ...] = ("l2c", "pcie")

#: Default-geometry prototypes for spec-time validation (flip-flop
#: inventories and storage names are geometry-independent, so these are
#: safe to share process-wide).
_DEFAULT_MODULES: dict = {}


def build_module(
    component: str, amap: "AddressMap | None" = None, ways: int = 8
):
    """Instantiate one standalone RTL uncore model (inventory probing)."""
    amap = amap if amap is not None else AddressMap()
    if component == "l2c":
        return L2cRtl(0, amap, ways=ways, send_mcu=lambda req: None)
    if component == "mcu":
        return McuRtl(0, Dram())
    if component == "ccx":
        return CcxRtl(amap)
    if component == "pcie":
        return PcieRtl(None)
    raise ValueError(f"unknown uncore component {component!r}")


def default_module(component: str):
    """A (cached) default-geometry module for spec-time validation."""
    module = _DEFAULT_MODULES.get(component)
    if module is None:
        module = _DEFAULT_MODULES[component] = build_module(component)
    return module


def prototype_module(platform, component: str):
    """The (cached) sampling prototype for a platform's component.

    Matches the inventory of the module
    :func:`repro.mixedmode.adapters.make_adapter` will build on this
    platform, including geometry-dependent SRAM sizes.
    """
    cache = getattr(platform, "_fault_prototypes", None)
    if cache is None:
        cache = {}
        platform._fault_prototypes = cache
    module = cache.get(component)
    if module is None:
        module = build_module(
            component,
            amap=platform.machine.amap,
            ways=platform.machine_config.l2_ways,
        )
        cache[component] = module
    return module


def _candidate_cache(platform) -> dict:
    cache = getattr(platform, "_fault_candidates", None)
    if cache is None:
        cache = {}
        platform._fault_candidates = cache
    return cache


def cached_bits(platform, component: str, filt: TargetFilter) -> list:
    """Per-platform memoized :func:`candidate_bits` of the prototype.

    The filter and inventory are fixed for a whole campaign, so the
    enumeration (thousands of tuples) happens once, not per sample.
    """
    cache = _candidate_cache(platform)
    key = ("ff", component, filt)
    bits = cache.get(key)
    if bits is None:
        bits = cache[key] = candidate_bits(
            prototype_module(platform, component), filt
        )
    return bits


def cached_rows(platform, component: str, filt: TargetFilter) -> list:
    """Per-platform memoized :func:`candidate_rows` of the prototype."""
    cache = _candidate_cache(platform)
    key = ("sram", component, filt)
    rows = cache.get(key)
    if rows is None:
        rows = cache[key] = candidate_rows(
            prototype_module(platform, component), filt
        )
    return rows
