"""Injection-window sampling: *when* and *into which instance*.

This module owns the component-aware timing rules that used to live
inline in ``MixedModePlatform.sample_injection_point``: PCIe injections
must land inside the DMA transfer window (the paper models PCIe
transferring the input file), L2C/MCU injections pick a random instance,
and everything else samples uniformly over the whole execution.

Determinism contract: :func:`sample_point` consumes the campaign RNG in
exactly the sequence the platform's inline sampler did (one ``randrange``
for the cycle, one more for the instance only on multi-instance
components), so the default fault model stays bit-identical to the
pre-subsystem behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class InjectionWindow:
    """The cycle/instance space one component's injections sample from.

    ``draw_instance`` records whether the instance is randomly drawn
    (L2C banks, MCUs) or fixed (single-instance components) -- kept
    explicit so the RNG call sequence is part of the contract, not a
    side effect of ``instances == 1``.
    """

    lo: int
    hi: int
    instances: int = 1
    draw_instance: bool = False


def injection_window(platform, component: str) -> InjectionWindow:
    """The injection window of ``component`` on ``platform``.

    PCIe windows span the golden run's DMA transfer; other components
    span the whole error-free execution.
    """
    if component == "pcie":
        if platform.golden.pcie_window is None:
            raise ValueError(
                f"benchmark {platform.benchmark!r} has no PCIe input transfer"
            )
        lo, hi = platform.golden.pcie_window
        return InjectionWindow(max(lo, 1), max(hi, lo + 2))
    config = platform.machine_config
    lo, hi = 1, max(2, platform.golden.cycles - 1)
    if component == "l2c":
        return InjectionWindow(lo, hi, config.l2_banks, draw_instance=True)
    if component == "mcu":
        return InjectionWindow(lo, hi, config.mcus, draw_instance=True)
    return InjectionWindow(lo, hi)


def sample_point(
    window: InjectionWindow, rng: random.Random
) -> tuple[int, int]:
    """Random ``(injection_cycle, instance)`` inside a window."""
    cycle = rng.randrange(window.lo, window.hi)
    instance = rng.randrange(window.instances) if window.draw_instance else 0
    return cycle, instance
