"""The canonical result schema shared by every campaign path.

All three experiment modes (injection, QRR, golden) reduce to one
:class:`ExperimentResult`: the spec that produced it, one
:class:`RunRecord` per run, and the golden-run length.  Aggregates
(outcome counts, persistent tally, recovery stats, latency samples) are
derived from the records, so the schema is lossless: ``save()`` followed
by ``load()`` reproduces an equal object, and merging or re-aggregating
sweep output never needs the original process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.spec import ExperimentSpec
from repro.faults.models import DEFAULT_FAULT
from repro.injection.campaign import OutcomeTable
from repro.system.outcome import OUTCOME_ORDER, Outcome
from repro.utils.stats import BinomialEstimate

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class RunRecord:
    """One run of any experiment mode, in the common schema.

    Unused fields stay ``None``/empty: injection runs fill the outcome
    and latency fields, QRR runs fill detection/recovery, golden runs
    fill the error-free execution summary.
    """

    index: int
    outcome: "str | None" = None
    persistent: bool = False
    instance: "int | None" = None
    injection_cycle: "int | None" = None
    flip_location: "tuple[str, int, int] | None" = None
    #: error-propagation latency to the cores (Fig. 8), if observed
    propagation_latency: "int | None" = None
    #: required rollback distance (Fig. 9), if memory was corrupted
    rollback_distance: "int | None" = None
    #: the sampled fault event (repro.faults.FaultEvent dict form)
    fault: "dict | None" = None
    #: QRR: parity detection fired / application recovered correctly
    detected: "bool | None" = None
    recovered: "bool | None" = None
    recovery_cycles: list[int] = field(default_factory=list)
    #: golden: error-free execution summary
    cycles: "int | None" = None
    retired: "int | None" = None
    output_words: "int | None" = None
    output_crc: "int | None" = None

    @property
    def is_erroneous(self) -> bool:
        return self.outcome is not None and self.outcome != Outcome.VANISHED.value

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "outcome": self.outcome,
            "persistent": self.persistent,
            "instance": self.instance,
            "injection_cycle": self.injection_cycle,
            "flip_location": (
                list(self.flip_location) if self.flip_location else None
            ),
            "propagation_latency": self.propagation_latency,
            "rollback_distance": self.rollback_distance,
            "fault": self.fault,
            "detected": self.detected,
            "recovered": self.recovered,
            "recovery_cycles": list(self.recovery_cycles),
            "cycles": self.cycles,
            "retired": self.retired,
            "output_words": self.output_words,
            "output_crc": self.output_crc,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        loc = data.get("flip_location")
        return cls(
            index=data["index"],
            outcome=data.get("outcome"),
            persistent=data.get("persistent", False),
            instance=data.get("instance"),
            injection_cycle=data.get("injection_cycle"),
            flip_location=(loc[0], loc[1], loc[2]) if loc else None,
            propagation_latency=data.get("propagation_latency"),
            rollback_distance=data.get("rollback_distance"),
            fault=data.get("fault"),
            detected=data.get("detected"),
            recovered=data.get("recovered"),
            recovery_cycles=list(data.get("recovery_cycles", ())),
            cycles=data.get("cycles"),
            retired=data.get("retired"),
            output_words=data.get("output_words"),
            output_crc=data.get("output_crc"),
        )


@dataclass
class ExperimentResult:
    """Spec + per-run records + derived aggregates for one cell."""

    spec: ExperimentSpec
    records: list[RunRecord] = field(default_factory=list)
    golden_cycles: int = 0

    # ------------------------------------------------------------------
    # aggregates (all derived, never stored separately)
    # ------------------------------------------------------------------
    @property
    def injections(self) -> int:
        return len(self.records) if self.spec.mode != "golden" else 0

    @property
    def persistent(self) -> int:
        """Runs abandoned at the co-simulation cap (excluded from rates)."""
        return sum(1 for r in self.records if r.persistent)

    def outcome_counts(self) -> dict[str, int]:
        """Counts per outcome category, in Fig. 3 legend order."""
        counts = {o.value: 0 for o in OUTCOME_ORDER}
        for r in self.records:
            if r.outcome is not None and not r.persistent:
                counts[r.outcome] += 1
        return counts

    def outcome_table(self) -> OutcomeTable:
        """The Fig. 3 outcome table rebuilt from the records."""
        table = OutcomeTable(self.spec.component or "-", self.spec.benchmark)
        for r in self.records:
            table.total += 1
            if r.persistent:
                table.persistent += 1
            elif r.outcome is not None:
                o = Outcome(r.outcome)
                table.counts[o] = table.counts.get(o, 0) + 1
        return table

    @property
    def erroneous(self) -> BinomialEstimate:
        """Probability of a non-Vanished outcome (the paper's headline)."""
        return self.outcome_table().erroneous

    def masked_count(self) -> int:
        """Events the Protection filter masked (parity/ECC corrected)."""
        return sum(
            1 for r in self.records if r.fault and r.fault.get("masked")
        )

    @property
    def detected(self) -> int:
        return sum(1 for r in self.records if r.detected)

    @property
    def recovered(self) -> int:
        return sum(1 for r in self.records if r.recovered)

    @property
    def failures(self) -> list[tuple[int, int]]:
        """QRR runs that did not recover: (instance, injection_cycle)."""
        return [
            (r.instance, r.injection_cycle)
            for r in self.records
            if r.recovered is False
        ]

    def propagation_latencies(self) -> list[int]:
        """Samples for the Fig. 8 CDF."""
        return [
            r.propagation_latency
            for r in self.records
            if r.propagation_latency is not None
        ]

    def rollback_distances(self) -> list[int]:
        """Samples for the Fig. 9 CDF."""
        return [
            r.rollback_distance
            for r in self.records
            if r.rollback_distance is not None
        ]

    def recovery_cycles(self) -> list[int]:
        """All QRR replay durations observed across the campaign."""
        out: list[int] = []
        for r in self.records:
            out.extend(r.recovery_cycles)
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "golden_cycles": self.golden_cycles,
            "records": [r.to_dict() for r in self.records],
            # derived aggregates, written for scripting convenience;
            # from_dict ignores them (the records are authoritative)
            "summary": self.summary(),
        }

    def summary(self) -> dict:
        """The aggregate block scripts usually want, JSON-ready."""
        base = {
            "mode": self.spec.mode,
            "component": self.spec.component,
            "benchmark": self.spec.benchmark,
            "seed": self.spec.seed,
            "runs": len(self.records),
        }
        if self.spec.mode == "injection":
            base["fault"] = self.spec.fault or DEFAULT_FAULT
            base["outcome_counts"] = self.outcome_counts()
            base["persistent"] = self.persistent
            base["masked"] = self.masked_count()
            table = self.outcome_table()
            if table.total:
                est = table.erroneous
                base["erroneous"] = {
                    "successes": est.successes,
                    "samples": est.samples,
                }
        elif self.spec.mode == "qrr":
            base["detected"] = self.detected
            base["recovered"] = self.recovered
            base["failures"] = [list(f) for f in self.failures]
        else:
            base["golden_cycles"] = self.golden_cycles
        return base

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema version {version!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            records=[RunRecord.from_dict(r) for r in data.get("records", ())],
            golden_cycles=data.get("golden_cycles", 0),
        )

    def save(self, path: "str | Path") -> Path:
        """Write the canonical JSON form (stable key order) to ``path``."""
        path = Path(path)
        path.write_text(dumps_canonical(self.to_dict()) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ExperimentResult":
        return cls.from_dict(json.loads(Path(path).read_text()))


def dumps_canonical(data) -> str:
    """JSON with sorted keys and fixed separators: byte-stable output.

    Serial and parallel sweeps must produce byte-identical files, so
    every JSON artefact goes through this one encoder.
    """
    return json.dumps(data, indent=2, sort_keys=True)
