"""Pluggable executors: how a list of experiment specs gets run.

The :class:`Executor` protocol is the seam every future scaling backend
plugs into (sharding, async pools, remote workers).  Two implementations
ship today:

* :class:`SerialExecutor` -- one session, one process, spec order.
* :class:`ParallelExecutor` -- a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Specs cross the process boundary as
  plain dicts and results come back the same way, so nothing
  unpicklable (machines, snapshots) ever leaves a worker.

Both return results in spec order, and -- because a spec fully
determines its campaign (stable-digest seeding, per-run snapshot
restore) -- both produce *identical* results for identical spec lists.
The sweep CLI asserts exactly that when comparing serial and parallel
output files.

Progress streaming
------------------

``run`` accepts an optional keyword-only ``on_event`` callback fed
plain dicts as cells progress:

* ``{"type": "cell_start", "index", "total", "digest", "label",
  "worker", "t"}`` -- a cell began executing (``worker`` = pid,
  ``t`` = wall-clock epoch seconds).
* ``{"type": "cell_done", ..., "seconds", "cpu_seconds", "rss_kb",
  "records"}`` -- the cell finished; measurements were taken in the
  process that ran it.
* ``{"type": "cache_hit" | "cache_miss" | "cache_stale", "index",
  "digest", "label"}`` -- from :class:`CachingExecutor` (``stale`` =
  an on-disk entry existed but was corrupt or mismatched).
* ``{"type": "cell_retry", "index", "digest", "label", "attempt",
  "delay", "error"}`` -- an attempt failed and the cell re-queues
  after ``delay`` seconds (:class:`repro.resilience.RetryPolicy`).
* ``{"type": "cell_timeout", "index", "digest", "label", "worker",
  "attempt", "timeout"}`` -- a cell outlived the per-cell deadline;
  its hosting worker process is killed and the cell re-queues.
* ``{"type": "cell_exhausted", "index", "digest", "label", "attempt",
  "error"}`` -- a cell spent its whole attempt budget; the sweep
  finishes the remaining cells, then raises :class:`CellFailure`
  naming the culprit.

Serial executors call back inline; :class:`ParallelExecutor` routes
worker events through a manager queue drained by a coordinator thread,
so ``on_event`` always runs in the calling process.  Events are pure
telemetry: emitting them never changes results (the serial/parallel
byte-identity contract holds with or without a callback), and callback
exceptions are swallowed so observers cannot break a sweep -- the first
failure per run is logged once so a broken consumer stays diagnosable.

Resilience
----------

``run`` additionally accepts two keyword-only resilience hooks (the
in-process half of the crash-safety story; the durable half is
:mod:`repro.resilience`):

* ``stop`` -- a ``threading.Event``; once set, the executor stops
  *between* cells, drains whatever is in flight, and raises
  :class:`repro.resilience.SweepInterrupted` with a consistent,
  resumable state (:class:`repro.resilience.GracefulShutdown` sets it
  from SIGINT/SIGTERM).
* ``on_result`` -- ``(index, result)`` called the moment a cell's
  result materialises, *before* the batch completes.
  :class:`CachingExecutor` threads this through its inner executor to
  land each fresh result on disk as it finishes, so a sweep killed
  mid-flight keeps every completed cell.

Retry/timeout state is operational, never semantic: it cannot enter
spec digests, cache keys, or canonical result bytes, so a retried
sweep stays byte-identical to an untroubled one.
"""

from __future__ import annotations

import inspect
import itertools
import logging
import os
import queue as queue_mod
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.api.result import ExperimentResult
from repro.api.spec import ExperimentSpec
from repro.api.session import Session
from repro.resilience.retry import RetryPolicy
from repro.resilience.shutdown import SweepInterrupted

logger = logging.getLogger(__name__)

#: Progress callback: receives plain-dict events, return value ignored.
OnEvent = Callable[[dict], None]

#: Incremental result hook: ``(index, result)`` as each cell lands.
OnResult = Callable[[int, ExperimentResult], None]


class CellFailure(Exception):
    """One cell ran out of attempts (worker crash, deadline, or raise)
    while the rest of the sweep completed.  Naming the culprit -- index,
    label, digest, and why -- is the point: a ten-thousand-cell sweep
    must never die anonymously, and every *other* cell's result is
    already durable by the time this propagates."""

    def __init__(
        self, index: int, digest: str, label: str, reason: str, attempts: int
    ) -> None:
        self.index = index
        self.digest = digest
        self.label = label
        self.reason = reason
        self.attempts = attempts
        super().__init__(
            f"cell {index} ({label}, digest {digest}) failed after "
            f"{attempts} attempt(s): {reason}"
        )


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of specs and keep their order."""

    def run(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ExperimentResult]: ...


def _accepts_kw(executor, name: str) -> bool:
    """Whether an executor's ``run`` takes keyword ``name`` (third-party
    executors predating progress streaming or resilience may not)."""
    try:
        return name in inspect.signature(executor.run).parameters
    except (TypeError, ValueError):
        return False


def _accepts_on_event(executor) -> bool:
    return _accepts_kw(executor, "on_event")


class _SafeEmitter:
    """Per-run ``on_event`` wrapper: callback errors never break the
    sweep, but the *first* failure of a run is logged (warn once, then
    stay silent) so a broken progress consumer is diagnosable."""

    __slots__ = ("_callback", "warned")

    def __init__(self, callback: OnEvent) -> None:
        self._callback = callback
        self.warned = False

    def __call__(self, event: dict) -> None:
        try:
            self._callback(event)
        except Exception:
            if not self.warned:
                self.warned = True
                logger.warning(
                    "on_event callback raised; suppressing further "
                    "callback errors for this run",
                    exc_info=True,
                )


def _emitter(on_event: "OnEvent | None") -> "_SafeEmitter | None":
    """Wrap a raw callback once per run (idempotent on re-wrap)."""
    if on_event is None or isinstance(on_event, _SafeEmitter):
        return on_event
    return _SafeEmitter(on_event)


def _safe_emit(on_event: "OnEvent | None", event: dict) -> None:
    if on_event is None:
        return
    if isinstance(on_event, _SafeEmitter):
        on_event(event)
        return
    try:
        on_event(event)
    except Exception:
        pass  # observers must never break the sweep


def _cell_events(spec: ExperimentSpec, index: int, total: int) -> dict:
    """The ``cell_start`` event for one cell (also the template the
    matching ``cell_done`` is built from)."""
    digest = spec.digest()
    start = {
        "type": "cell_start",
        "index": index,
        "total": total,
        "digest": digest,
        "label": spec.label(),
        "worker": os.getpid(),
        "t": round(time.time(), 6),
    }
    return start


def _done_event(start: dict, seconds: float, cpu: float, records: int) -> dict:
    from repro.obs import rss_kb

    return {
        **start,
        "type": "cell_done",
        "t": round(time.time(), 6),
        "seconds": round(seconds, 6),
        "cpu_seconds": round(cpu, 6),
        "rss_kb": rss_kb(),
        "records": records,
    }


class SerialExecutor:
    """Runs specs one after another in a single session.

    ``retry`` (a :class:`repro.resilience.RetryPolicy`) turns per-cell
    exceptions into backoff-delayed re-attempts; without one a raising
    cell propagates immediately (the historical contract).
    """

    def __init__(
        self,
        session: "Session | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        self.session = session
        self.retry = retry

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
        stop: "threading.Event | None" = None,
        on_result: "OnResult | None" = None,
    ) -> list[ExperimentResult]:
        session = self.session if self.session is not None else Session()
        specs = list(specs)
        if (
            on_event is None
            and stop is None
            and on_result is None
            and self.retry is None
        ):
            return [session.run(spec) for spec in specs]
        on_event = _emitter(on_event)
        results = []
        total = len(specs)
        for i, spec in enumerate(specs):
            if stop is not None and stop.is_set():
                raise SweepInterrupted(done=len(results), total=total)
            result = self._run_cell(session, spec, i, total, on_event)
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results

    def _run_cell(
        self, session: Session, spec: ExperimentSpec, i: int, total: int,
        on_event: "OnEvent | None",
    ) -> ExperimentResult:
        attempt = 0
        while True:
            start = _cell_events(spec, i, total)
            _safe_emit(on_event, start)
            t0, cpu0 = time.perf_counter(), time.process_time()
            try:
                result = session.run(spec)
            except Exception as exc:
                if self.retry is None:
                    raise
                attempt += 1
                reason = f"{type(exc).__name__}: {exc}"
                if self.retry.exhausted(attempt):
                    _safe_emit(
                        on_event,
                        {
                            "type": "cell_exhausted",
                            "index": i,
                            "digest": start["digest"],
                            "label": start["label"],
                            "attempt": attempt,
                            "error": reason,
                        },
                    )
                    raise CellFailure(
                        i, start["digest"], start["label"],
                        f"raised {reason}", attempt,
                    ) from exc
                delay = self.retry.backoff(start["digest"], attempt)
                _safe_emit(
                    on_event,
                    {
                        "type": "cell_retry",
                        "index": i,
                        "digest": start["digest"],
                        "label": start["label"],
                        "attempt": attempt,
                        "delay": round(delay, 6),
                        "error": reason,
                    },
                )
                time.sleep(delay)
                continue
            _safe_emit(
                on_event,
                _done_event(
                    start,
                    time.perf_counter() - t0,
                    time.process_time() - cpu0,
                    len(result.records),
                ),
            )
            return result


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: per-worker session, so specs landing in the same worker share
#: platforms (and their golden runs) across tasks
_WORKER_SESSION: "Session | None" = None

#: per-worker event queue (a manager proxy installed by the pool
#: initializer when the coordinator asked for progress events)
_WORKER_EVENT_QUEUE = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _init_worker_events(event_queue) -> None:
    global _WORKER_EVENT_QUEUE
    _WORKER_EVENT_QUEUE = event_queue


def _run_spec_dict(spec_dict: dict) -> dict:
    """Worker entry point: dict in, dict out (always picklable)."""
    spec = ExperimentSpec.from_dict(spec_dict)
    return _worker_session().run(spec).to_dict()


def _run_spec_dict_ev(task: tuple) -> dict:
    """Worker entry point with progress events (index, total, spec dict
    in; result dict out, events to the shared queue on the side)."""
    index, total, spec_dict = task
    spec = ExperimentSpec.from_dict(spec_dict)
    q = _WORKER_EVENT_QUEUE
    if q is None:
        return _worker_session().run(spec).to_dict()
    start = _cell_events(spec, index, total)
    try:
        q.put(start)
    except Exception:
        pass
    t0, cpu0 = time.perf_counter(), time.process_time()
    result = _worker_session().run(spec)
    done = _done_event(
        start,
        time.perf_counter() - t0,
        time.process_time() - cpu0,
        len(result.records),
    )
    try:
        q.put(done)
    except Exception:
        pass
    return result.to_dict()


class ParallelExecutor:
    """Fans independent specs out over a process pool.

    Args:
        workers: pool size; defaults to ``os.cpu_count()``.
        chunksize: specs handed to a worker per dispatch on the fast
            (no-callback, no-retry) ``pool.map`` path.  Values > 1 help
            when consecutive specs share a platform key.  The supervised
            path dispatches one cell per task so failures attribute to a
            single cell.
        retry: a :class:`repro.resilience.RetryPolicy`.  With one, a
            crashed pool worker costs a bounded re-attempt of only the
            cells it was running, a hung cell is killed at the per-cell
            deadline and re-queued, and a raising cell re-runs with
            backoff.  Without one, a crashed worker fails *the cells it
            took down* (naming them via :class:`CellFailure`) while the
            remaining cells still complete -- never the historical
            anonymous ``BrokenProcessPool`` for the whole sweep.
    """

    def __init__(
        self,
        workers: "int | None" = None,
        chunksize: int = 1,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.chunksize = max(1, chunksize)
        self.retry = retry

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
        stop: "threading.Event | None" = None,
        on_result: "OnResult | None" = None,
    ) -> list[ExperimentResult]:
        specs = list(specs)
        if not specs:
            return []
        if (
            on_event is None
            and stop is None
            and on_result is None
            and self.retry is None
        ):
            # pool.map preserves input order, so results line up with specs
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                dicts = list(
                    pool.map(
                        _run_spec_dict,
                        [spec.to_dict() for spec in specs],
                        chunksize=self.chunksize,
                    )
                )
            return [ExperimentResult.from_dict(d) for d in dicts]
        return self._run_supervised(specs, _emitter(on_event), stop, on_result)

    # ------------------------------------------------------------------
    # supervised path: per-cell futures, live-cell tracking, recovery
    # ------------------------------------------------------------------
    def _run_supervised(
        self,
        specs: list,
        on_event: "OnEvent | None",
        stop: "threading.Event | None",
        on_result: "OnResult | None",
    ) -> list[ExperimentResult]:
        import multiprocessing as mp

        total = len(specs)
        state = {
            "tasks": [(i, total, spec.to_dict()) for i, spec in enumerate(specs)],
            "digests": [spec.digest() for spec in specs],
            "labels": [spec.label() for spec in specs],
            "results": {},   # index -> ExperimentResult
            "failures": {},  # index -> CellFailure
            "attempts": {i: 0 for i in range(total)},
            # live cells, maintained by the drain thread from worker
            # events (cell_start tells us which pid is running which
            # index -- the handle the deadline enforcer kills by)
            "lock": threading.Lock(),
            "started_at": {},  # index -> monotonic start
            "cell_pid": {},    # index -> worker pid
        }
        with mp.Manager() as manager:
            # a manager-proxy queue is picklable under every start
            # method, so it can ride in as a pool initializer argument
            event_queue = manager.Queue()
            drain_stop = threading.Event()

            def drain() -> None:
                while True:
                    try:
                        event = event_queue.get(timeout=0.2)
                    except queue_mod.Empty:
                        if drain_stop.is_set():
                            return
                        continue
                    except (EOFError, OSError):
                        return  # manager went away (shutdown race)
                    etype = event.get("type") if isinstance(event, dict) else None
                    if etype == "cell_start":
                        with state["lock"]:
                            state["started_at"][event["index"]] = time.monotonic()
                            state["cell_pid"][event["index"]] = event.get("worker")
                    elif etype == "cell_done":
                        with state["lock"]:
                            state["started_at"].pop(event["index"], None)
                            state["cell_pid"].pop(event["index"], None)
                    _safe_emit(on_event, event)

            drainer = threading.Thread(
                target=drain, name="repro-obs-drain", daemon=True
            )
            drainer.start()
            try:
                while True:
                    pending = [
                        i for i in range(total)
                        if i not in state["results"] and i not in state["failures"]
                    ]
                    if not pending:
                        break
                    if stop is not None and stop.is_set():
                        raise SweepInterrupted(
                            done=len(state["results"]), total=total
                        )
                    # one pool lifetime; a kill or crash inside ends it
                    # and the loop starts a fresh pool for the survivors
                    self._one_pool(
                        pending, state, event_queue, on_event, stop, on_result
                    )
            finally:
                drain_stop.set()
                drainer.join(timeout=5.0)
        if state["failures"]:
            failures = state["failures"]
            raise failures[min(failures)]
        return [state["results"][i] for i in range(total)]

    def _one_pool(
        self, pending, state, event_queue, on_event, stop, on_result
    ) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        retry = self.retry
        results = state["results"]
        failures = state["failures"]
        attempts = state["attempts"]
        digests, labels = state["digests"], state["labels"]
        with state["lock"]:
            state["started_at"].clear()
            state["cell_pid"].clear()
        landed_before = len(results)
        charged: set = set()   # cells already billed an attempt this pool
        deferred: list = []    # (ready_at, index) waiting out a backoff
        broken = False
        draining = False

        def exhaust(index: int, reason: str) -> None:
            failures[index] = CellFailure(
                index, digests[index], labels[index], reason, attempts[index]
            )
            _safe_emit(
                on_event,
                {
                    "type": "cell_exhausted",
                    "index": index,
                    "digest": digests[index],
                    "label": labels[index],
                    "attempt": attempts[index],
                    "error": reason,
                },
            )

        def emit_retry(index: int, delay: float, reason: str) -> None:
            _safe_emit(
                on_event,
                {
                    "type": "cell_retry",
                    "index": index,
                    "digest": digests[index],
                    "label": labels[index],
                    "attempt": attempts[index],
                    "delay": round(delay, 6),
                    "error": reason,
                },
            )

        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker_events,
            initargs=(event_queue,),
        )
        futures: dict = {}
        try:
            for i in pending:
                futures[pool.submit(_run_spec_dict_ev, state["tasks"][i])] = i
            outstanding = set(futures)
            while outstanding or deferred:
                if outstanding:
                    done, outstanding = wait(
                        outstanding, timeout=0.1, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        index = futures[fut]
                        if fut.cancelled():
                            continue
                        exc = fut.exception()
                        if exc is None:
                            result = ExperimentResult.from_dict(fut.result())
                            results[index] = result
                            # a deadline race can bill a cell whose
                            # result still made it out -- the result wins
                            failures.pop(index, None)
                            if on_result is not None:
                                on_result(index, result)
                        elif isinstance(exc, BrokenProcessPool):
                            broken = True
                        elif index in charged:
                            pass  # already billed by the deadline enforcer
                        else:
                            attempts[index] += 1
                            if retry is None:
                                raise exc
                            reason = f"raised {type(exc).__name__}: {exc}"
                            if retry.exhausted(attempts[index]):
                                exhaust(index, reason)
                            else:
                                delay = retry.backoff(
                                    digests[index], attempts[index]
                                )
                                emit_retry(index, delay, reason)
                                deferred.append(
                                    (time.monotonic() + delay, index)
                                )
                    if broken:
                        break
                elif draining:
                    break
                else:
                    time.sleep(0.05)  # everything live is in backoff
                if stop is not None and stop.is_set() and not draining:
                    # drain: queued cells cancel, running cells finish
                    draining = True
                    deferred.clear()
                    for fut in list(outstanding):
                        fut.cancel()
                    outstanding = {
                        f for f in outstanding if not f.cancelled()
                    }
                if deferred and not draining:
                    now = time.monotonic()
                    ready = [i for (t, i) in deferred if t <= now]
                    if ready:
                        deferred[:] = [
                            (t, i) for (t, i) in deferred if t > now
                        ]
                        for i in ready:
                            fut = pool.submit(
                                _run_spec_dict_ev, state["tasks"][i]
                            )
                            futures[fut] = i
                            outstanding.add(fut)
                if (
                    retry is not None
                    and retry.cell_timeout is not None
                    and not broken
                ):
                    broken = self._enforce_deadlines(
                        state, charged, exhaust, on_event
                    ) or broken
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        if not broken:
            return
        # the pool died: bill exactly the cells caught mid-flight (seen
        # to start, never finished).  Give the event queue a beat first
        # so in-flight cell_start/cell_done records are folded in.
        time.sleep(0.3)
        with state["lock"]:
            suspects = sorted(
                i for i in state["started_at"]
                if i not in results and i not in failures and i not in charged
            )
            state["started_at"].clear()
            state["cell_pid"].clear()
        if not suspects and not charged and len(results) == landed_before:
            # nothing was ever attributed (a worker died during startup
            # or before its first event escaped): without a suspect the
            # outer loop would retry this pool forever, so every cell
            # still pending shares the blame
            suspects = [
                i for i in pending if i not in results and i not in failures
            ]
        for index in suspects:
            attempts[index] += 1
            reason = "its pool worker died (crash or kill)"
            if retry is None or retry.exhausted(attempts[index]):
                exhaust(index, reason)
            else:
                emit_retry(index, 0.0, reason)

    def _enforce_deadlines(
        self, state, charged: set, exhaust, on_event
    ) -> bool:
        """Kill the worker hosting any cell past its deadline (the only
        reliable way to stop a wedged simulation is the process
        boundary).  Returns whether a kill broke the pool."""
        retry = self.retry
        now = time.monotonic()
        with state["lock"]:
            over = [
                (i, state["cell_pid"].get(i))
                for i, t0 in state["started_at"].items()
                if i not in charged
                and i not in state["results"]
                and retry.over_deadline(t0, now)
            ]
        killed = False
        for index, pid in over:
            charged.add(index)
            state["attempts"][index] += 1
            _safe_emit(
                on_event,
                {
                    "type": "cell_timeout",
                    "index": index,
                    "digest": state["digests"][index],
                    "label": state["labels"][index],
                    "worker": pid,
                    "attempt": state["attempts"][index],
                    "timeout": retry.cell_timeout,
                },
            )
            if retry.exhausted(state["attempts"][index]):
                exhaust(
                    index,
                    f"exceeded cell_timeout={retry.cell_timeout}s",
                )
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                    killed = True
                except OSError:
                    pass
            with state["lock"]:
                state["started_at"].pop(index, None)
                state["cell_pid"].pop(index, None)
        return killed


# ----------------------------------------------------------------------
# on-disk result cache: shared content-addressed store helpers
# ----------------------------------------------------------------------
# The (spec digest -> canonical result JSON) store is shared machinery:
# CachingExecutor uses it as a sweep cache, and the cluster subsystem
# (repro.cluster) uses the same directory as its result bus -- workers
# land results here and the coordinator merges from it, so retried or
# straggler-re-dispatched cells are free cache hits.

#: Process-local suffix counter for unique temp names (see
#: :func:`store_cached_result`).
_TMP_IDS = itertools.count()


def result_cache_path(cache_dir: "str | Path", spec: ExperimentSpec) -> Path:
    """Where a spec's canonical result JSON lives under ``cache_dir``."""
    return Path(cache_dir) / f"{spec.digest()}.json"


def load_cached_result(
    path: Path, spec: ExperimentSpec
) -> "tuple[ExperimentResult | None, bool]":
    """Load one cache entry: ``(result, stale)``.

    ``(None, False)`` -- no entry.  ``(None, True)`` -- an entry existed
    but was corrupt (interrupted write) or embedded a different spec
    (digest collision or tampering); callers recompute and rewrite.
    """
    if not path.is_file():
        return None, False
    try:
        cached = ExperimentResult.load(path)
    except (ValueError, KeyError, OSError):
        return None, True
    if cached.spec != spec:
        return None, True
    return cached, False


def store_cached_result(path: Path, result: ExperimentResult) -> None:
    """Atomically publish one result under its final cache name.

    Write-then-rename so an interrupted save never leaves a half-written
    entry under the final name.  The temp name is unique *per writer*
    (pid + counter): with many processes landing the same digest
    concurrently -- exactly what the cluster result bus does on retries
    and stragglers -- a shared temp path would let one writer truncate
    or rename another's in-flight bytes.  Unique names make every
    rename atomic and last-writer-wins, and identical specs produce
    byte-identical files so the winner never matters.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_IDS)}.tmp")
    result.save(tmp)
    tmp.replace(path)


def shard_by_digest(
    specs: Sequence[ExperimentSpec], shards: int
) -> "list[list[tuple[int, ExperimentSpec]]]":
    """Deterministically partition cells across ``shards`` workers.

    Each cell goes to ``int(digest, 16) % shards`` -- a pure function of
    the spec content, so every coordinator (and every retry of the same
    sweep) computes the same placement without coordination.  Returns
    ``shards`` lists of ``(original_index, spec)`` pairs; the original
    index rides along so worker telemetry and result merging speak the
    grid's reporting order.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    out: "list[list[tuple[int, ExperimentSpec]]]" = [[] for _ in range(shards)]
    for index, spec in enumerate(specs):
        out[int(spec.digest(), 16) % shards].append((index, spec))
    return out


class CachingExecutor:
    """Skips specs whose canonical result JSON already exists on disk.

    Cache layout: one ``<spec.digest()>.json`` per cell under
    ``cache_dir``, written with :meth:`ExperimentResult.save` (the
    canonical byte-stable encoding).  Hits are loaded and returned in
    spec order alongside freshly-computed misses, so a cached sweep is
    byte-identical to an uncached one.  A cached file whose embedded
    spec does not round-trip to the requested spec (digest collision or
    manual tampering) is treated as a miss and rewritten.
    """

    def __init__(self, cache_dir: "str | Path", inner: "Executor | None" = None):
        self.cache_dir = Path(cache_dir)
        self.inner = inner if inner is not None else SerialExecutor()
        #: hit/miss/stale tally of the most recent :meth:`run` (for
        #: logs, the sweep cache summary, and tests).  ``stale`` counts
        #: on-disk entries that existed but were corrupt or mismatched.
        self.last_hits = 0
        self.last_misses = 0
        self.last_stale = 0

    def _path_for(self, spec: ExperimentSpec) -> Path:
        return result_cache_path(self.cache_dir, spec)

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
        stop: "threading.Event | None" = None,
        on_result: "OnResult | None" = None,
    ) -> list[ExperimentResult]:
        from repro import obs

        on_event = _emitter(on_event)
        specs = list(specs)
        results: "list[ExperimentResult | None]" = [None] * len(specs)
        miss_indices: list[int] = []
        self.last_stale = 0
        for i, spec in enumerate(specs):
            cached, stale = load_cached_result(self._path_for(spec), spec)
            if cached is not None:
                results[i] = cached
                obs.counter("cache.hits").inc()
                _safe_emit(
                    on_event,
                    {
                        "type": "cache_hit",
                        "index": i,
                        "total": len(specs),
                        "digest": spec.digest(),
                        "label": spec.label(),
                    },
                )
                continue
            if stale:
                self.last_stale += 1
                obs.counter("cache.stale").inc()
                _safe_emit(
                    on_event,
                    {
                        "type": "cache_stale",
                        "index": i,
                        "digest": spec.digest(),
                        "label": spec.label(),
                    },
                )
            obs.counter("cache.misses").inc()
            _safe_emit(
                on_event,
                {
                    "type": "cache_miss",
                    "index": i,
                    "digest": spec.digest(),
                    "label": spec.label(),
                },
            )
            miss_indices.append(i)
        self.last_hits = len(specs) - len(miss_indices)
        self.last_misses = len(miss_indices)
        if miss_indices:
            miss_specs = [specs[i] for i in miss_indices]
            try:
                fresh, stored = self._run_inner(
                    miss_specs, miss_indices, len(specs),
                    on_event, stop, on_result,
                )
            except CellFailure as exc:
                # inner executors index into the miss list; re-raise in
                # original-spec coordinates so callers name the right cell
                if 0 <= exc.index < len(miss_indices):
                    raise CellFailure(
                        miss_indices[exc.index], exc.digest, exc.label,
                        exc.reason, exc.attempts,
                    ) from exc
                raise
            except SweepInterrupted as exc:
                raise SweepInterrupted(
                    done=exc.done + self.last_hits, total=len(specs)
                ) from exc
            for pos, (i, result) in enumerate(zip(miss_indices, fresh)):
                if pos not in stored:
                    store_cached_result(self._path_for(specs[i]), result)
                    if on_result is not None:
                        on_result(i, result)
                results[i] = result
        return results  # type: ignore[return-value]

    def _run_inner(
        self,
        miss_specs: list,
        miss_indices: list[int],
        total: int,
        on_event: "OnEvent | None",
        stop: "threading.Event | None",
        on_result: "OnResult | None",
    ) -> "tuple[list[ExperimentResult], set[int]]":
        """Run the misses through the inner executor, landing each fresh
        result on disk *as it completes* when the inner executor speaks
        ``on_result`` -- a sweep killed mid-batch keeps every finished
        cell.  Returns ``(results, positions already stored)``."""
        kwargs: dict = {}
        if on_event is not None and _accepts_kw(self.inner, "on_event"):

            def remapped(event: dict) -> None:
                # inner executors index into the miss list; progress
                # wants positions in the original spec list
                if "index" in event:
                    event = {**event, "index": miss_indices[event["index"]]}
                if "total" in event:
                    event = {**event, "total": total}
                on_event(event)

            kwargs["on_event"] = remapped
        if stop is not None and _accepts_kw(self.inner, "stop"):
            kwargs["stop"] = stop
        stored: set[int] = set()
        if _accepts_kw(self.inner, "on_result"):

            def store_now(pos: int, result: ExperimentResult) -> None:
                store_cached_result(self._path_for(miss_specs[pos]), result)
                stored.add(pos)
                if on_result is not None:
                    on_result(miss_indices[pos], result)

            kwargs["on_result"] = store_now
        return self.inner.run(miss_specs, **kwargs), stored


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
#: name -> factory(**options) for every known executor backend.  New
#: backends (e.g. the cluster coordinator) register themselves here so
#: ``make_executor`` and third-party callers can reach them by name
#: without import-time coupling.
EXECUTOR_BACKENDS: "dict[str, Callable[..., Executor]]" = {}


def register_backend(name: str, factory: "Callable[..., Executor]") -> None:
    """Register (or replace) an executor backend factory under ``name``."""
    EXECUTOR_BACKENDS[name] = factory


def executor_backend(name: str) -> "Callable[..., Executor]":
    """Resolve a backend factory by name.

    The cluster backend lives in :mod:`repro.cluster` and registers
    itself on import; resolving ``"cluster"`` triggers that import so
    callers never need to know the package layout.
    """
    if name not in EXECUTOR_BACKENDS and name == "cluster":
        import repro.cluster  # noqa: F401  (registration side effect)
    try:
        return EXECUTOR_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"known: {sorted(EXECUTOR_BACKENDS)}"
        ) from None


register_backend(
    "serial",
    lambda session=None, retry=None: SerialExecutor(session, retry=retry),
)
register_backend(
    "parallel",
    lambda workers=None, chunksize=1, retry=None: ParallelExecutor(
        workers=workers, chunksize=chunksize, retry=retry
    ),
)
register_backend(
    "caching",
    lambda cache_dir=".sweep-cache", inner=None: CachingExecutor(
        cache_dir, inner
    ),
)


def make_executor(
    workers: int = 1,
    chunksize: int = 1,
    cache_dir: "str | Path | None" = None,
    cluster: int = 0,
    launcher=None,
    engine: "str | None" = None,
    *,
    retry: "RetryPolicy | None" = None,
    max_retries: "int | None" = None,
    heartbeat_timeout: "float | None" = None,
    cell_timeout: "float | None" = None,
    worker_procs: "int | None" = None,
    session: "Session | None" = None,
) -> Executor:
    """``workers <= 1`` selects the serial path, anything else the pool;
    ``cache_dir`` wraps the chosen executor in a :class:`CachingExecutor`.
    ``cluster > 0`` instead builds a ``repro.cluster.ClusterExecutor``
    fanning out over that many worker agents (``launcher`` picks the
    transport, ``cache_dir`` names the shared result bus, ``engine`` the
    digest-neutral cycle engine the workers run).

    Resilience knobs: pass a full :class:`repro.resilience.RetryPolicy`
    as ``retry``, or the CLI-shaped scalars -- ``max_retries`` (extra
    attempts after the first; ``max_attempts = max_retries + 1``) and
    ``cell_timeout`` (per-cell wall-clock deadline, seconds) -- and one
    is built.  ``heartbeat_timeout`` only applies to the cluster backend
    (seconds of silence before a worker is declared dead), as does
    ``worker_procs`` (each worker agent runs its shard through a
    process pool of that size instead of serially).

    ``session`` threads a caller-owned :class:`Session` into the serial
    path -- the serve daemon passes its warm platform pool here so
    repeat jobs skip cold starts.  Pool and cluster backends ignore it
    (their workers own per-process sessions)."""
    if retry is None and (max_retries is not None or cell_timeout is not None):
        retry = RetryPolicy(
            max_attempts=(max_retries if max_retries is not None else 2) + 1,
            cell_timeout=cell_timeout,
        )
    if cluster:
        options: dict = {}
        if retry is not None:
            options["retry"] = retry
        if heartbeat_timeout is not None:
            options["heartbeat_timeout"] = heartbeat_timeout
        if worker_procs is not None and worker_procs > 1:
            options["worker_procs"] = worker_procs
        return executor_backend("cluster")(
            workers=cluster,
            launcher=launcher,
            cache_dir=cache_dir,
            engine=engine,
            **options,
        )
    if workers <= 1:
        executor: Executor = SerialExecutor(session, retry=retry)
    else:
        executor = ParallelExecutor(
            workers=workers, chunksize=chunksize, retry=retry
        )
    if cache_dir is not None:
        return CachingExecutor(cache_dir, executor)
    return executor
