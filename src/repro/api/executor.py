"""Pluggable executors: how a list of experiment specs gets run.

The :class:`Executor` protocol is the seam every future scaling backend
plugs into (sharding, async pools, remote workers).  Two implementations
ship today:

* :class:`SerialExecutor` -- one session, one process, spec order.
* :class:`ParallelExecutor` -- a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Specs cross the process boundary as
  plain dicts and results come back the same way, so nothing
  unpicklable (machines, snapshots) ever leaves a worker.

Both return results in spec order, and -- because a spec fully
determines its campaign (stable-digest seeding, per-run snapshot
restore) -- both produce *identical* results for identical spec lists.
The sweep CLI asserts exactly that when comparing serial and parallel
output files.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Protocol, Sequence, runtime_checkable

from repro.api.result import ExperimentResult
from repro.api.spec import ExperimentSpec
from repro.api.session import Session


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of specs and keep their order."""

    def run(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ExperimentResult]: ...


class SerialExecutor:
    """Runs specs one after another in a single session."""

    def __init__(self, session: "Session | None" = None) -> None:
        self.session = session

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        session = self.session if self.session is not None else Session()
        return [session.run(spec) for spec in specs]


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: per-worker session, so specs landing in the same worker share
#: platforms (and their golden runs) across tasks
_WORKER_SESSION: "Session | None" = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _run_spec_dict(spec_dict: dict) -> dict:
    """Worker entry point: dict in, dict out (always picklable)."""
    spec = ExperimentSpec.from_dict(spec_dict)
    return _worker_session().run(spec).to_dict()


class ParallelExecutor:
    """Fans independent specs out over a process pool.

    Args:
        workers: pool size; defaults to ``os.cpu_count()``.
        chunksize: specs handed to a worker per dispatch.  Values > 1
            help when consecutive specs share a platform key (the grid
            groups cells per component, so per-benchmark batches reuse
            golden runs inside one worker).
    """

    def __init__(self, workers: "int | None" = None, chunksize: int = 1) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.chunksize = max(1, chunksize)

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        specs = list(specs)
        if not specs:
            return []
        # pool.map preserves input order, so results line up with specs
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            dicts = list(
                pool.map(
                    _run_spec_dict,
                    [spec.to_dict() for spec in specs],
                    chunksize=self.chunksize,
                )
            )
        return [ExperimentResult.from_dict(d) for d in dicts]


def make_executor(workers: int = 1, chunksize: int = 1) -> Executor:
    """``workers <= 1`` selects the serial path, anything else the pool."""
    if workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers=workers, chunksize=chunksize)
