"""Pluggable executors: how a list of experiment specs gets run.

The :class:`Executor` protocol is the seam every future scaling backend
plugs into (sharding, async pools, remote workers).  Two implementations
ship today:

* :class:`SerialExecutor` -- one session, one process, spec order.
* :class:`ParallelExecutor` -- a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Specs cross the process boundary as
  plain dicts and results come back the same way, so nothing
  unpicklable (machines, snapshots) ever leaves a worker.

Both return results in spec order, and -- because a spec fully
determines its campaign (stable-digest seeding, per-run snapshot
restore) -- both produce *identical* results for identical spec lists.
The sweep CLI asserts exactly that when comparing serial and parallel
output files.

Progress streaming
------------------

``run`` accepts an optional keyword-only ``on_event`` callback fed
plain dicts as cells progress:

* ``{"type": "cell_start", "index", "total", "digest", "label",
  "worker", "t"}`` -- a cell began executing (``worker`` = pid,
  ``t`` = wall-clock epoch seconds).
* ``{"type": "cell_done", ..., "seconds", "cpu_seconds", "rss_kb",
  "records"}`` -- the cell finished; measurements were taken in the
  process that ran it.
* ``{"type": "cache_hit" | "cache_miss" | "cache_stale", "index",
  "digest", "label"}`` -- from :class:`CachingExecutor` (``stale`` =
  an on-disk entry existed but was corrupt or mismatched).

Serial executors call back inline; :class:`ParallelExecutor` routes
worker events through a manager queue drained by a coordinator thread,
so ``on_event`` always runs in the calling process.  Events are pure
telemetry: emitting them never changes results (the serial/parallel
byte-identity contract holds with or without a callback), and callback
exceptions are swallowed so observers cannot break a sweep -- the first
failure per run is logged once so a broken consumer stays diagnosable.
"""

from __future__ import annotations

import inspect
import itertools
import logging
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.api.result import ExperimentResult
from repro.api.spec import ExperimentSpec
from repro.api.session import Session

logger = logging.getLogger(__name__)

#: Progress callback: receives plain-dict events, return value ignored.
OnEvent = Callable[[dict], None]


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of specs and keep their order."""

    def run(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ExperimentResult]: ...


def _accepts_on_event(executor) -> bool:
    """Whether an executor's ``run`` takes the ``on_event`` keyword
    (third-party executors predating progress streaming may not)."""
    try:
        return "on_event" in inspect.signature(executor.run).parameters
    except (TypeError, ValueError):
        return False


class _SafeEmitter:
    """Per-run ``on_event`` wrapper: callback errors never break the
    sweep, but the *first* failure of a run is logged (warn once, then
    stay silent) so a broken progress consumer is diagnosable."""

    __slots__ = ("_callback", "warned")

    def __init__(self, callback: OnEvent) -> None:
        self._callback = callback
        self.warned = False

    def __call__(self, event: dict) -> None:
        try:
            self._callback(event)
        except Exception:
            if not self.warned:
                self.warned = True
                logger.warning(
                    "on_event callback raised; suppressing further "
                    "callback errors for this run",
                    exc_info=True,
                )


def _emitter(on_event: "OnEvent | None") -> "_SafeEmitter | None":
    """Wrap a raw callback once per run (idempotent on re-wrap)."""
    if on_event is None or isinstance(on_event, _SafeEmitter):
        return on_event
    return _SafeEmitter(on_event)


def _safe_emit(on_event: "OnEvent | None", event: dict) -> None:
    if on_event is None:
        return
    if isinstance(on_event, _SafeEmitter):
        on_event(event)
        return
    try:
        on_event(event)
    except Exception:
        pass  # observers must never break the sweep


def _cell_events(spec: ExperimentSpec, index: int, total: int) -> dict:
    """The ``cell_start`` event for one cell (also the template the
    matching ``cell_done`` is built from)."""
    digest = spec.digest()
    start = {
        "type": "cell_start",
        "index": index,
        "total": total,
        "digest": digest,
        "label": spec.label(),
        "worker": os.getpid(),
        "t": round(time.time(), 6),
    }
    return start


def _done_event(start: dict, seconds: float, cpu: float, records: int) -> dict:
    from repro.obs import rss_kb

    return {
        **start,
        "type": "cell_done",
        "t": round(time.time(), 6),
        "seconds": round(seconds, 6),
        "cpu_seconds": round(cpu, 6),
        "rss_kb": rss_kb(),
        "records": records,
    }


class SerialExecutor:
    """Runs specs one after another in a single session."""

    def __init__(self, session: "Session | None" = None) -> None:
        self.session = session

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
    ) -> list[ExperimentResult]:
        session = self.session if self.session is not None else Session()
        specs = list(specs)
        if on_event is None:
            return [session.run(spec) for spec in specs]
        on_event = _emitter(on_event)
        results = []
        total = len(specs)
        for i, spec in enumerate(specs):
            start = _cell_events(spec, i, total)
            _safe_emit(on_event, start)
            t0, cpu0 = time.perf_counter(), time.process_time()
            result = session.run(spec)
            _safe_emit(
                on_event,
                _done_event(
                    start,
                    time.perf_counter() - t0,
                    time.process_time() - cpu0,
                    len(result.records),
                ),
            )
            results.append(result)
        return results


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: per-worker session, so specs landing in the same worker share
#: platforms (and their golden runs) across tasks
_WORKER_SESSION: "Session | None" = None

#: per-worker event queue (a manager proxy installed by the pool
#: initializer when the coordinator asked for progress events)
_WORKER_EVENT_QUEUE = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _init_worker_events(event_queue) -> None:
    global _WORKER_EVENT_QUEUE
    _WORKER_EVENT_QUEUE = event_queue


def _run_spec_dict(spec_dict: dict) -> dict:
    """Worker entry point: dict in, dict out (always picklable)."""
    spec = ExperimentSpec.from_dict(spec_dict)
    return _worker_session().run(spec).to_dict()


def _run_spec_dict_ev(task: tuple) -> dict:
    """Worker entry point with progress events (index, total, spec dict
    in; result dict out, events to the shared queue on the side)."""
    index, total, spec_dict = task
    spec = ExperimentSpec.from_dict(spec_dict)
    q = _WORKER_EVENT_QUEUE
    if q is None:
        return _worker_session().run(spec).to_dict()
    start = _cell_events(spec, index, total)
    try:
        q.put(start)
    except Exception:
        pass
    t0, cpu0 = time.perf_counter(), time.process_time()
    result = _worker_session().run(spec)
    done = _done_event(
        start,
        time.perf_counter() - t0,
        time.process_time() - cpu0,
        len(result.records),
    )
    try:
        q.put(done)
    except Exception:
        pass
    return result.to_dict()


class ParallelExecutor:
    """Fans independent specs out over a process pool.

    Args:
        workers: pool size; defaults to ``os.cpu_count()``.
        chunksize: specs handed to a worker per dispatch.  Values > 1
            help when consecutive specs share a platform key (the grid
            groups cells per component, so per-benchmark batches reuse
            golden runs inside one worker).
    """

    def __init__(self, workers: "int | None" = None, chunksize: int = 1) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.chunksize = max(1, chunksize)

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
    ) -> list[ExperimentResult]:
        specs = list(specs)
        if not specs:
            return []
        if on_event is None:
            # pool.map preserves input order, so results line up with specs
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                dicts = list(
                    pool.map(
                        _run_spec_dict,
                        [spec.to_dict() for spec in specs],
                        chunksize=self.chunksize,
                    )
                )
            return [ExperimentResult.from_dict(d) for d in dicts]
        return self._run_with_events(specs, on_event)

    def _run_with_events(
        self, specs: list, on_event: OnEvent
    ) -> list[ExperimentResult]:
        import multiprocessing as mp

        on_event = _emitter(on_event)
        total = len(specs)
        tasks = [(i, total, spec.to_dict()) for i, spec in enumerate(specs)]
        with mp.Manager() as manager:
            # a manager-proxy queue is picklable under every start
            # method, so it can ride in as a pool initializer argument
            event_queue = manager.Queue()
            stop = threading.Event()

            def drain() -> None:
                while True:
                    try:
                        event = event_queue.get(timeout=0.2)
                    except queue_mod.Empty:
                        if stop.is_set():
                            return
                        continue
                    except (EOFError, OSError):
                        return  # manager went away (shutdown race)
                    _safe_emit(on_event, event)

            drainer = threading.Thread(
                target=drain, name="repro-obs-drain", daemon=True
            )
            drainer.start()
            try:
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker_events,
                    initargs=(event_queue,),
                ) as pool:
                    dicts = list(
                        pool.map(
                            _run_spec_dict_ev, tasks, chunksize=self.chunksize
                        )
                    )
            finally:
                stop.set()
                drainer.join(timeout=5.0)
        return [ExperimentResult.from_dict(d) for d in dicts]


# ----------------------------------------------------------------------
# on-disk result cache: shared content-addressed store helpers
# ----------------------------------------------------------------------
# The (spec digest -> canonical result JSON) store is shared machinery:
# CachingExecutor uses it as a sweep cache, and the cluster subsystem
# (repro.cluster) uses the same directory as its result bus -- workers
# land results here and the coordinator merges from it, so retried or
# straggler-re-dispatched cells are free cache hits.

#: Process-local suffix counter for unique temp names (see
#: :func:`store_cached_result`).
_TMP_IDS = itertools.count()


def result_cache_path(cache_dir: "str | Path", spec: ExperimentSpec) -> Path:
    """Where a spec's canonical result JSON lives under ``cache_dir``."""
    return Path(cache_dir) / f"{spec.digest()}.json"


def load_cached_result(
    path: Path, spec: ExperimentSpec
) -> "tuple[ExperimentResult | None, bool]":
    """Load one cache entry: ``(result, stale)``.

    ``(None, False)`` -- no entry.  ``(None, True)`` -- an entry existed
    but was corrupt (interrupted write) or embedded a different spec
    (digest collision or tampering); callers recompute and rewrite.
    """
    if not path.is_file():
        return None, False
    try:
        cached = ExperimentResult.load(path)
    except (ValueError, KeyError, OSError):
        return None, True
    if cached.spec != spec:
        return None, True
    return cached, False


def store_cached_result(path: Path, result: ExperimentResult) -> None:
    """Atomically publish one result under its final cache name.

    Write-then-rename so an interrupted save never leaves a half-written
    entry under the final name.  The temp name is unique *per writer*
    (pid + counter): with many processes landing the same digest
    concurrently -- exactly what the cluster result bus does on retries
    and stragglers -- a shared temp path would let one writer truncate
    or rename another's in-flight bytes.  Unique names make every
    rename atomic and last-writer-wins, and identical specs produce
    byte-identical files so the winner never matters.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_IDS)}.tmp")
    result.save(tmp)
    tmp.replace(path)


def shard_by_digest(
    specs: Sequence[ExperimentSpec], shards: int
) -> "list[list[tuple[int, ExperimentSpec]]]":
    """Deterministically partition cells across ``shards`` workers.

    Each cell goes to ``int(digest, 16) % shards`` -- a pure function of
    the spec content, so every coordinator (and every retry of the same
    sweep) computes the same placement without coordination.  Returns
    ``shards`` lists of ``(original_index, spec)`` pairs; the original
    index rides along so worker telemetry and result merging speak the
    grid's reporting order.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    out: "list[list[tuple[int, ExperimentSpec]]]" = [[] for _ in range(shards)]
    for index, spec in enumerate(specs):
        out[int(spec.digest(), 16) % shards].append((index, spec))
    return out


class CachingExecutor:
    """Skips specs whose canonical result JSON already exists on disk.

    Cache layout: one ``<spec.digest()>.json`` per cell under
    ``cache_dir``, written with :meth:`ExperimentResult.save` (the
    canonical byte-stable encoding).  Hits are loaded and returned in
    spec order alongside freshly-computed misses, so a cached sweep is
    byte-identical to an uncached one.  A cached file whose embedded
    spec does not round-trip to the requested spec (digest collision or
    manual tampering) is treated as a miss and rewritten.
    """

    def __init__(self, cache_dir: "str | Path", inner: "Executor | None" = None):
        self.cache_dir = Path(cache_dir)
        self.inner = inner if inner is not None else SerialExecutor()
        #: hit/miss/stale tally of the most recent :meth:`run` (for
        #: logs, the sweep cache summary, and tests).  ``stale`` counts
        #: on-disk entries that existed but were corrupt or mismatched.
        self.last_hits = 0
        self.last_misses = 0
        self.last_stale = 0

    def _path_for(self, spec: ExperimentSpec) -> Path:
        return result_cache_path(self.cache_dir, spec)

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        on_event: "OnEvent | None" = None,
    ) -> list[ExperimentResult]:
        from repro import obs

        on_event = _emitter(on_event)
        specs = list(specs)
        results: "list[ExperimentResult | None]" = [None] * len(specs)
        miss_indices: list[int] = []
        self.last_stale = 0
        for i, spec in enumerate(specs):
            cached, stale = load_cached_result(self._path_for(spec), spec)
            if cached is not None:
                results[i] = cached
                obs.counter("cache.hits").inc()
                _safe_emit(
                    on_event,
                    {
                        "type": "cache_hit",
                        "index": i,
                        "total": len(specs),
                        "digest": spec.digest(),
                        "label": spec.label(),
                    },
                )
                continue
            if stale:
                self.last_stale += 1
                obs.counter("cache.stale").inc()
                _safe_emit(
                    on_event,
                    {
                        "type": "cache_stale",
                        "index": i,
                        "digest": spec.digest(),
                        "label": spec.label(),
                    },
                )
            obs.counter("cache.misses").inc()
            _safe_emit(
                on_event,
                {
                    "type": "cache_miss",
                    "index": i,
                    "digest": spec.digest(),
                    "label": spec.label(),
                },
            )
            miss_indices.append(i)
        self.last_hits = len(specs) - len(miss_indices)
        self.last_misses = len(miss_indices)
        if miss_indices:
            fresh = self._run_inner(
                [specs[i] for i in miss_indices],
                miss_indices,
                len(specs),
                on_event,
            )
            for i, result in zip(miss_indices, fresh):
                store_cached_result(self._path_for(specs[i]), result)
                results[i] = result
        return results  # type: ignore[return-value]

    def _run_inner(
        self,
        miss_specs: list,
        miss_indices: list[int],
        total: int,
        on_event: "OnEvent | None",
    ) -> list[ExperimentResult]:
        if on_event is None or not _accepts_on_event(self.inner):
            return self.inner.run(miss_specs)

        def remapped(event: dict) -> None:
            # inner executors index into the miss list; progress wants
            # positions in the original spec list
            if "index" in event:
                event = {**event, "index": miss_indices[event["index"]]}
            if "total" in event:
                event = {**event, "total": total}
            on_event(event)

        return self.inner.run(miss_specs, on_event=remapped)


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
#: name -> factory(**options) for every known executor backend.  New
#: backends (e.g. the cluster coordinator) register themselves here so
#: ``make_executor`` and third-party callers can reach them by name
#: without import-time coupling.
EXECUTOR_BACKENDS: "dict[str, Callable[..., Executor]]" = {}


def register_backend(name: str, factory: "Callable[..., Executor]") -> None:
    """Register (or replace) an executor backend factory under ``name``."""
    EXECUTOR_BACKENDS[name] = factory


def executor_backend(name: str) -> "Callable[..., Executor]":
    """Resolve a backend factory by name.

    The cluster backend lives in :mod:`repro.cluster` and registers
    itself on import; resolving ``"cluster"`` triggers that import so
    callers never need to know the package layout.
    """
    if name not in EXECUTOR_BACKENDS and name == "cluster":
        import repro.cluster  # noqa: F401  (registration side effect)
    try:
        return EXECUTOR_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"known: {sorted(EXECUTOR_BACKENDS)}"
        ) from None


register_backend("serial", lambda session=None: SerialExecutor(session))
register_backend(
    "parallel",
    lambda workers=None, chunksize=1: ParallelExecutor(
        workers=workers, chunksize=chunksize
    ),
)
register_backend(
    "caching",
    lambda cache_dir=".sweep-cache", inner=None: CachingExecutor(
        cache_dir, inner
    ),
)


def make_executor(
    workers: int = 1,
    chunksize: int = 1,
    cache_dir: "str | Path | None" = None,
    cluster: int = 0,
    launcher=None,
    engine: "str | None" = None,
) -> Executor:
    """``workers <= 1`` selects the serial path, anything else the pool;
    ``cache_dir`` wraps the chosen executor in a :class:`CachingExecutor`.
    ``cluster > 0`` instead builds a ``repro.cluster.ClusterExecutor``
    fanning out over that many worker agents (``launcher`` picks the
    transport, ``cache_dir`` names the shared result bus, ``engine`` the
    digest-neutral cycle engine the workers run)."""
    if cluster:
        return executor_backend("cluster")(
            workers=cluster,
            launcher=launcher,
            cache_dir=cache_dir,
            engine=engine,
        )
    if workers <= 1:
        executor: Executor = SerialExecutor()
    else:
        executor = ParallelExecutor(workers=workers, chunksize=chunksize)
    if cache_dir is not None:
        return CachingExecutor(cache_dir, executor)
    return executor
