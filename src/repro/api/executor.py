"""Pluggable executors: how a list of experiment specs gets run.

The :class:`Executor` protocol is the seam every future scaling backend
plugs into (sharding, async pools, remote workers).  Two implementations
ship today:

* :class:`SerialExecutor` -- one session, one process, spec order.
* :class:`ParallelExecutor` -- a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Specs cross the process boundary as
  plain dicts and results come back the same way, so nothing
  unpicklable (machines, snapshots) ever leaves a worker.

Both return results in spec order, and -- because a spec fully
determines its campaign (stable-digest seeding, per-run snapshot
restore) -- both produce *identical* results for identical spec lists.
The sweep CLI asserts exactly that when comparing serial and parallel
output files.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Protocol, Sequence, runtime_checkable

from repro.api.result import ExperimentResult
from repro.api.spec import ExperimentSpec
from repro.api.session import Session


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of specs and keep their order."""

    def run(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ExperimentResult]: ...


class SerialExecutor:
    """Runs specs one after another in a single session."""

    def __init__(self, session: "Session | None" = None) -> None:
        self.session = session

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        session = self.session if self.session is not None else Session()
        return [session.run(spec) for spec in specs]


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
#: per-worker session, so specs landing in the same worker share
#: platforms (and their golden runs) across tasks
_WORKER_SESSION: "Session | None" = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _run_spec_dict(spec_dict: dict) -> dict:
    """Worker entry point: dict in, dict out (always picklable)."""
    spec = ExperimentSpec.from_dict(spec_dict)
    return _worker_session().run(spec).to_dict()


class ParallelExecutor:
    """Fans independent specs out over a process pool.

    Args:
        workers: pool size; defaults to ``os.cpu_count()``.
        chunksize: specs handed to a worker per dispatch.  Values > 1
            help when consecutive specs share a platform key (the grid
            groups cells per component, so per-benchmark batches reuse
            golden runs inside one worker).
    """

    def __init__(self, workers: "int | None" = None, chunksize: int = 1) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.chunksize = max(1, chunksize)

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        specs = list(specs)
        if not specs:
            return []
        # pool.map preserves input order, so results line up with specs
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            dicts = list(
                pool.map(
                    _run_spec_dict,
                    [spec.to_dict() for spec in specs],
                    chunksize=self.chunksize,
                )
            )
        return [ExperimentResult.from_dict(d) for d in dicts]


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------
class CachingExecutor:
    """Skips specs whose canonical result JSON already exists on disk.

    Cache layout: one ``<spec.digest()>.json`` per cell under
    ``cache_dir``, written with :meth:`ExperimentResult.save` (the
    canonical byte-stable encoding).  Hits are loaded and returned in
    spec order alongside freshly-computed misses, so a cached sweep is
    byte-identical to an uncached one.  A cached file whose embedded
    spec does not round-trip to the requested spec (digest collision or
    manual tampering) is treated as a miss and rewritten.
    """

    def __init__(self, cache_dir: "str | Path", inner: "Executor | None" = None):
        self.cache_dir = Path(cache_dir)
        self.inner = inner if inner is not None else SerialExecutor()
        #: hit/miss tally of the most recent :meth:`run` (for logs/tests)
        self.last_hits = 0
        self.last_misses = 0

    def _path_for(self, spec: ExperimentSpec) -> Path:
        return self.cache_dir / f"{spec.digest()}.json"

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        specs = list(specs)
        results: "list[ExperimentResult | None]" = [None] * len(specs)
        miss_indices: list[int] = []
        for i, spec in enumerate(specs):
            path = self._path_for(spec)
            if path.is_file():
                try:
                    cached = ExperimentResult.load(path)
                except (ValueError, KeyError, OSError):
                    # truncated/corrupt file (e.g. an interrupted write):
                    # a miss, recomputed and rewritten below
                    cached = None
                if cached is not None and cached.spec == spec:
                    results[i] = cached
                    continue
            miss_indices.append(i)
        self.last_hits = len(specs) - len(miss_indices)
        self.last_misses = len(miss_indices)
        if miss_indices:
            fresh = self.inner.run([specs[i] for i in miss_indices])
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            for i, result in zip(miss_indices, fresh):
                path = self._path_for(specs[i])
                # write-then-rename so an interrupted save never leaves
                # a half-written cache entry under the final name
                tmp = path.with_suffix(".json.tmp")
                result.save(tmp)
                tmp.replace(path)
                results[i] = result
        return results  # type: ignore[return-value]


def make_executor(
    workers: int = 1,
    chunksize: int = 1,
    cache_dir: "str | Path | None" = None,
) -> Executor:
    """``workers <= 1`` selects the serial path, anything else the pool;
    ``cache_dir`` wraps the chosen executor in a :class:`CachingExecutor`."""
    if workers <= 1:
        executor: Executor = SerialExecutor()
    else:
        executor = ParallelExecutor(workers=workers, chunksize=chunksize)
    if cache_dir is not None:
        return CachingExecutor(cache_dir, executor)
    return executor
