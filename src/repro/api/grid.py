"""Sweep grids: component x benchmark x seed expansion.

The paper's Fig. 3 is a grid of (component, benchmark) campaign cells;
:class:`Grid` expands such sweeps into concrete
:class:`~repro.api.spec.ExperimentSpec` lists that any executor can
consume.  Invalid combinations (PCIe injections into benchmarks without
an input file, non-memory components in QRR mode) are dropped during
expansion, mirroring the paper's own cell selection (Table 5's PCIe
column, Sec. 6's L2C/MCU protection scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.spec import (
    DEFAULT_MACHINE,
    DEFAULT_SCALE,
    INJECTION_COMPONENTS,
    QRR_COMPONENTS,
    ExperimentSpec,
)
from repro.system.machine import MachineConfig
from repro.workloads import ALL_BENCHMARKS, PCIE_BENCHMARKS


@dataclass(frozen=True)
class Grid:
    """A component x benchmark x seed sweep.

    Expansion order is deterministic: components outermost (one Fig. 3
    panel per component), then benchmarks, then seeds -- the order the
    sweep output is reported in regardless of which executor ran it.
    """

    components: tuple = INJECTION_COMPONENTS
    benchmarks: tuple = ALL_BENCHMARKS
    seeds: tuple = (2015,)
    mode: str = "injection"
    n: int = 100
    machine: MachineConfig = field(default_factory=lambda: DEFAULT_MACHINE)
    scale: float = DEFAULT_SCALE
    #: fault-model spec string, applied to injection cells (see repro.faults)
    fault: "str | None" = None
    #: machine cycle engine for every cell (None: session default).
    #: Bit-identical engines mean results do not depend on it; process
    #: workers fall back to the default engine because the canonical
    #: spec JSON deliberately omits it.
    engine: "str | None" = None

    def to_dict(self) -> dict:
        """The grid description embedded in sweep JSON, journals, and
        serve job requests (key order is canonicalized by the JSON
        encoder, so identical grids serialize identically)."""
        return {
            "components": list(self.components),
            "benchmarks": list(self.benchmarks),
            "seeds": list(self.seeds),
            "mode": self.mode,
            "n": self.n,
            "machine": self.machine.to_dict(),
            "scale": self.scale,
            "fault": self.fault,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Grid":
        """Rebuild a grid from :meth:`to_dict` output (journals, sweep
        JSON, serve requests).  Missing optional keys take the dataclass
        defaults; a malformed machine dict raises ``KeyError`` /
        ``ValueError`` for the caller to surface."""
        return cls(
            components=tuple(
                data.get("components", INJECTION_COMPONENTS)
            ),
            benchmarks=tuple(data.get("benchmarks", ALL_BENCHMARKS)),
            seeds=tuple(data.get("seeds", (2015,))),
            mode=data.get("mode", "injection"),
            n=data.get("n", 100),
            machine=(
                MachineConfig.from_dict(data["machine"])
                if "machine" in data
                else DEFAULT_MACHINE
            ),
            scale=data.get("scale", DEFAULT_SCALE),
            fault=data.get("fault"),
            engine=data.get("engine"),
        )

    def specs(self) -> list[ExperimentSpec]:
        """All valid cells of the grid, in reporting order."""
        # parse the fault spec once, up front: a malformed spec is a
        # user error that must propagate, not silently empty the grid
        fault_model = None
        if self.fault is not None and self.mode == "injection":
            from repro.faults.models import parse_fault

            fault_model = parse_fault(self.fault)
        out: list[ExperimentSpec] = []
        # golden cells have no injection target: one spec per benchmark
        components = (None,) if self.mode == "golden" else self.components
        for component in components:
            if not self._component_valid(component, fault_model):
                continue
            for benchmark in self.benchmarks:
                if not self._cell_valid(component, benchmark):
                    continue
                for seed in self.seeds:
                    out.append(
                        ExperimentSpec(
                            benchmark=benchmark,
                            component=component,
                            mode=self.mode,
                            machine=self.machine,
                            scale=self.scale,
                            seed=seed,
                            n=self.n,
                            fault=(
                                self.fault
                                if self.mode == "injection"
                                else None
                            ),
                            engine=self.engine,
                        )
                    )
        return out

    def _component_valid(self, component: "str | None", fault_model) -> bool:
        if self.mode == "qrr":
            return component in QRR_COMPONENTS
        if self.mode == "injection":
            if component not in INJECTION_COMPONENTS:
                return False
            if fault_model is not None:
                # drop components the fault model cannot target (e.g.
                # SRAM faults on SRAM-less components), mirroring the
                # PCIe input-file cell selection
                try:
                    fault_model.validate_component(component)
                except ValueError:
                    return False
            return True
        return True  # golden mode ignores the component

    def _cell_valid(self, component: str, benchmark: str) -> bool:
        if self.mode == "injection" and component == "pcie":
            return benchmark in PCIE_BENCHMARKS
        return True

    def __len__(self) -> int:
        return len(self.specs())

    def __iter__(self):
        return iter(self.specs())
