"""Unified experiment API -- the single front door to the reproduction.

Compose a spec, hand it to a session (or a grid of specs to an
executor), get canonical results back::

    from repro.api import ExperimentSpec, Grid, Session, make_executor

    # one cell
    result = Session().run(ExperimentSpec(benchmark="fft", component="l2c", n=50))
    print(result.outcome_counts())

    # the full Fig. 3 grid, fanned out over processes
    grid = Grid(n=50)
    results = make_executor(workers=4).run(grid.specs())
    results[0].save("cell0.json")
"""

from repro.api.executor import (
    EXECUTOR_BACKENDS,
    CachingExecutor,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_backend,
    load_cached_result,
    make_executor,
    register_backend,
    result_cache_path,
    shard_by_digest,
    store_cached_result,
)
from repro.api.grid import Grid
from repro.api.result import (
    SCHEMA_VERSION,
    ExperimentResult,
    RunRecord,
    dumps_canonical,
)
from repro.api.session import Session
from repro.api.spec import (
    DEFAULT_MACHINE,
    DEFAULT_SCALE,
    INJECTION_COMPONENTS,
    MODES,
    QRR_COMPONENTS,
    ExperimentSpec,
)

__all__ = [
    "CachingExecutor",
    "DEFAULT_MACHINE",
    "DEFAULT_SCALE",
    "EXECUTOR_BACKENDS",
    "Executor",
    "ExperimentResult",
    "ExperimentSpec",
    "Grid",
    "INJECTION_COMPONENTS",
    "MODES",
    "ParallelExecutor",
    "QRR_COMPONENTS",
    "RunRecord",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "Session",
    "dumps_canonical",
    "executor_backend",
    "load_cached_result",
    "make_executor",
    "register_backend",
    "result_cache_path",
    "shard_by_digest",
    "store_cached_result",
]
