"""Experiment specifications -- the unit of work of the unified API.

An :class:`ExperimentSpec` names everything needed to reproduce one
campaign cell: the benchmark, the target component, the machine
geometry, the workload scale, the seed, and the number of injections.
Specs are frozen, hashable, and round-trip losslessly through plain
dicts/JSON, which is what lets the executors ship them to worker
processes and lets results embed the spec that produced them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.faults.models import DEFAULT_FAULT, FaultModel, parse_fault
from repro.system.machine import ENGINES, MachineConfig
from repro.workloads import ALL_BENCHMARKS, PCIE_BENCHMARKS

#: Experiment modes understood by the session layer.
MODES = ("injection", "qrr", "golden")

#: Components accepted for plain injection campaigns (paper Fig. 3).
INJECTION_COMPONENTS = ("l2c", "mcu", "ccx", "pcie")

#: Components protected by QRR (paper Sec. 6: the memory subsystem).
QRR_COMPONENTS = ("l2c", "mcu")

#: Campaign-facing machine geometry (the T2 configuration the CLI and
#: the benches use; tests pass smaller geometries explicitly).
DEFAULT_MACHINE = MachineConfig(
    cores=8, threads_per_core=4, l2_banks=8, l2_sets=8, l2_ways=4
)

#: Default workload scale for campaigns (cycle budget ~1/40,000 of the
#: paper's Table 5 lengths).
DEFAULT_SCALE = 1.0 / 40_000.0


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-determined experiment cell.

    Attributes:
        benchmark: Table 5 abbreviation (``fft``, ``p-wc``, ...).
        component: injection target (``l2c``/``mcu``/``ccx``/``pcie``);
            ``None`` for golden runs.
        mode: ``injection`` (Fig. 3 outcome campaign), ``qrr``
            (Sec. 6.4 recovery campaign) or ``golden`` (error-free run).
        machine: machine geometry and timing.
        scale: workload cycle-budget scale relative to Table 5.
        seed: campaign seed; drives workload data generation and
            injection-point sampling.
        n: number of injection runs (ignored for ``golden``).
        fault: fault-model spec string (``"mbu:k=2"``, ``"stuck"``, ...;
            see :mod:`repro.faults`).  ``None`` -- and the canonical
            default ``"seu"`` with default parameters, which normalizes
            to ``None`` -- is the paper's single-bit flip.  Stored in
            canonical form so two specs share a digest iff they run the
            same fault.
        engine: machine cycle engine (``event``/``reference``/
            ``compiled``); ``None`` defers to the session default.  All
            engines are bit-identical (the differential suite enforces
            it), so the engine is a performance knob only: it is
            excluded from equality, digests and the canonical JSON so
            results and cache entries are engine-independent.
    """

    benchmark: str = "fft"
    component: "str | None" = "l2c"
    mode: str = "injection"
    machine: MachineConfig = field(default_factory=lambda: DEFAULT_MACHINE)
    scale: float = DEFAULT_SCALE
    seed: int = 2015
    n: int = 100
    fault: "str | None" = None
    engine: "str | None" = field(default=None, compare=False)

    @staticmethod
    def _err(field_name: str, message: str) -> None:
        """Validation failure naming the offending spec field."""
        raise ValueError(f"ExperimentSpec.{field_name}: {message}")

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            self._err("mode", f"unknown mode {self.mode!r}; known: {MODES}")
        if self.benchmark not in ALL_BENCHMARKS:
            self._err(
                "benchmark",
                f"unknown benchmark {self.benchmark!r}; "
                f"known: {sorted(ALL_BENCHMARKS)}",
            )
        if self.mode == "golden":
            # golden runs have no injection target; component == "pcie"
            # survives as "DMA the input file over PCIe"
            if self.component == "pcie":
                if self.benchmark not in PCIE_BENCHMARKS:
                    self._err(
                        "component",
                        f"benchmark {self.benchmark!r} has no input file to "
                        f"DMA over PCIe",
                    )
            elif self.component is not None:
                object.__setattr__(self, "component", None)
        elif self.mode == "injection":
            if self.component not in INJECTION_COMPONENTS:
                self._err(
                    "component",
                    f"injection component must be one of "
                    f"{INJECTION_COMPONENTS}, got {self.component!r}",
                )
            if (
                self.component == "pcie"
                and self.benchmark not in PCIE_BENCHMARKS
            ):
                self._err(
                    "component",
                    f"benchmark {self.benchmark!r} has no input file; PCIe "
                    f"injections need one of {sorted(PCIE_BENCHMARKS)}",
                )
        elif self.mode == "qrr":
            if self.component not in QRR_COMPONENTS:
                self._err(
                    "component",
                    f"QRR protects {QRR_COMPONENTS}, got {self.component!r}",
                )
        self._normalize_fault()
        if self.engine is not None and self.engine not in ENGINES:
            self._err(
                "engine",
                f"unknown engine {self.engine!r}; known: {ENGINES}",
            )
        if self.mode != "golden" and self.n < 1:
            self._err("n", f"must be at least 1, got {self.n}")
        if self.scale <= 0.0:
            self._err("scale", f"must be positive, got {self.scale}")

    def _normalize_fault(self) -> None:
        """Parse, validate and canonicalize the fault spec string.

        The explicit default (``"seu"`` with default parameters)
        normalizes to ``None`` so it serializes, digests and caches
        identically to an unset fault.
        """
        if self.fault is None:
            return
        try:
            model = parse_fault(self.fault)
        except ValueError as exc:
            self._err("fault", str(exc))
        if self.mode == "golden":
            # golden runs inject nothing, like component normalization
            object.__setattr__(self, "fault", None)
            return
        if self.mode == "qrr":
            self._err(
                "fault",
                "QRR campaigns inject parity-covered single-bit flips; "
                "fault models apply to injection mode only",
            )
        try:
            model.validate_component(self.component)
        except ValueError as exc:
            self._err("fault", str(exc))
        canonical = model.spec_string()
        object.__setattr__(
            self, "fault", None if canonical == DEFAULT_FAULT else canonical
        )

    # ------------------------------------------------------------------
    @property
    def pcie_input(self) -> bool:
        """Whether the platform must DMA the input file over PCIe."""
        return self.component == "pcie"

    def platform_key(self) -> tuple:
        """Cache key: specs sharing it can share one platform/golden run.

        The engine is part of the key: engines are bit-identical, so
        sharing across engines would be *correct*, but it would silently
        run a spec's campaign on another spec's engine -- confusing for
        performance comparisons.
        """
        return (
            self.benchmark,
            self.machine,
            self.scale,
            self.seed,
            self.pcie_input,
            self.engine,
        )

    def fault_model(self) -> FaultModel:
        """The fault model this spec selects (default: single-bit flip)."""
        return parse_fault(self.fault)

    def label(self) -> str:
        """Short human-readable cell name for logs and progress output."""
        comp = self.component or "-"
        label = f"{self.mode}:{comp}:{self.benchmark}:seed={self.seed}"
        if self.fault is not None:
            label += f":fault={self.fault}"
        return label

    def digest(self) -> str:
        """Stable content hash of the spec (the result-cache key).

        Derived from the canonical JSON form with a fixed-size blake2b
        digest -- never ``hash()``, which varies per process under
        PYTHONHASHSEED randomization.  Two specs share a digest iff they
        produce byte-identical campaign results (the determinism
        contract: a spec fully determines its campaign).
        """
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "benchmark": self.benchmark,
            "component": self.component,
            "mode": self.mode,
            "machine": self.machine.to_dict(),
            "scale": self.scale,
            "seed": self.seed,
            "n": self.n,
        }
        # omitted when default so pre-fault spec digests (and cached
        # sweep results keyed by them) stay valid; the engine is never
        # serialized (bit-identical engines must share digests, cache
        # entries and canonical result bytes)
        if self.fault is not None:
            out["fault"] = self.fault
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(
            benchmark=data["benchmark"],
            component=data.get("component"),
            mode=data.get("mode", "injection"),
            machine=MachineConfig.from_dict(data.get("machine", {})),
            scale=data.get("scale", DEFAULT_SCALE),
            seed=data.get("seed", 2015),
            n=data.get("n", 100),
            fault=data.get("fault"),
        )
