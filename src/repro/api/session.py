"""The session facade: specs in, canonical results out.

A :class:`Session` owns the expensive state -- mixed-mode platforms and
their golden runs -- and resolves :class:`~repro.api.spec.ExperimentSpec`
instances into campaigns.  Platforms are cached by
``spec.platform_key()``, so a sweep over four components of one
benchmark pays for one golden run, not four.

Determinism contract: ``Session().run(spec)`` depends only on the spec.
Every injection run restores a golden snapshot before executing and the
campaign RNG is derived from stable digests of (seed, component), so the
same spec produces the same result in any process -- the property the
parallel executor relies on.
"""

from __future__ import annotations

import zlib

from repro.api.result import ExperimentResult, RunRecord
from repro.api.spec import ExperimentSpec
from repro.injection.campaign import CampaignResult, InjectionCampaign
from repro.mixedmode.platform import (
    CosimConfig,
    GoldenRun,
    InjectionRun,
    MixedModePlatform,
    compute_golden,
)
from repro.qrr.campaign import QrrCampaign, QrrCampaignResult
from repro.system.machine import DEFAULT_ENGINE, Machine
from repro.workloads import build_workload


class Session:
    """Resolves experiment specs into platforms, campaigns and results.

    ``engine`` selects the machine cycle engine for specs that do not
    name one themselves (``ExperimentSpec.engine`` wins when set).  All
    engines -- event, reference, compiled -- produce bit-identical
    results, so the choice is a performance knob only and never reaches
    spec digests, cache keys or canonical result bytes.
    """

    def __init__(
        self, cache_platforms: bool = True, engine: str = DEFAULT_ENGINE
    ) -> None:
        self._cache_platforms = cache_platforms
        self.engine = engine
        self._platforms: dict[tuple, MixedModePlatform] = {}

    # ------------------------------------------------------------------
    # platform resolution
    # ------------------------------------------------------------------
    def platform(self, spec: ExperimentSpec) -> MixedModePlatform:
        """The (cached) mixed-mode platform for a spec's workload cell."""
        key = spec.platform_key()
        platform = self._platforms.get(key)
        if platform is None:
            platform = MixedModePlatform(
                spec.benchmark,
                machine_config=spec.machine,
                scale=spec.scale,
                seed=spec.seed,
                pcie_input=spec.pcie_input,
                engine=spec.engine or self.engine,
            )
            if self._cache_platforms:
                self._platforms[key] = platform
        return platform

    def platforms(self) -> list[MixedModePlatform]:
        """The currently cached platforms (e.g. for perf accounting)."""
        return list(self._platforms.values())

    def clear(self) -> None:
        """Drop all cached platforms (frees snapshots and machines)."""
        self._platforms.clear()

    # ------------------------------------------------------------------
    # the single front door
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Run one experiment cell and return the canonical result."""
        from repro import obs

        with obs.timer("session.cell_seconds", labels={"mode": spec.mode}).time():
            if spec.mode == "injection":
                result = self._run_injection(spec)
            elif spec.mode == "qrr":
                result = self._run_qrr(spec)
            else:
                result = self._run_golden(spec)
        obs.counter("session.cells", labels={"mode": spec.mode}).inc()
        if obs.enabled():
            # cell end is the coarse boundary where machine-cycle deltas
            # get published into the registry
            for platform in self._platforms.values():
                platform.machine.obs_flush()
        return result

    def run_many(self, specs) -> list[ExperimentResult]:
        """Run specs sequentially in this session (see also executors)."""
        return [self.run(spec) for spec in specs]

    # ------------------------------------------------------------------
    # full-fidelity access (in-process callers: figures, benches)
    # ------------------------------------------------------------------
    def campaign(self, spec: ExperimentSpec) -> CampaignResult:
        """The raw injection-campaign result with live ``InjectionRun``s.

        The canonical schema keeps everything the analyses need, but
        in-process callers (e.g. the figure drivers) can use this to
        reach the full co-simulation records.
        """
        if spec.mode != "injection":
            raise ValueError(f"campaign() needs an injection spec, got {spec.mode!r}")
        platform = self.platform(spec)
        return InjectionCampaign(
            platform, spec.component, seed=spec.seed, fault=spec.fault_model()
        ).run(spec.n)

    # ------------------------------------------------------------------
    # mode drivers
    # ------------------------------------------------------------------
    def _run_injection(self, spec: ExperimentSpec) -> ExperimentResult:
        platform = self.platform(spec)
        raw = InjectionCampaign(
            platform, spec.component, seed=spec.seed, fault=spec.fault_model()
        ).run(spec.n)
        records = [
            _record_from_injection(i, run) for i, run in enumerate(raw.runs)
        ]
        return ExperimentResult(
            spec=spec, records=records, golden_cycles=platform.golden.cycles
        )

    def _run_qrr(self, spec: ExperimentSpec) -> ExperimentResult:
        platform = self.platform(spec)
        raw: QrrCampaignResult = QrrCampaign(platform, spec.component).run(
            spec.n, seed=spec.seed
        )
        records = [
            RunRecord(
                index=i,
                instance=run.instance,
                injection_cycle=run.injection_cycle,
                detected=run.detected,
                recovered=run.recovered,
                recovery_cycles=list(run.recovery_cycles),
            )
            for i, run in enumerate(raw.runs)
        ]
        return ExperimentResult(
            spec=spec, records=records, golden_cycles=platform.golden.cycles
        )

    def _run_golden(self, spec: ExperimentSpec) -> ExperimentResult:
        golden = self._golden(spec)
        record = RunRecord(
            index=0,
            cycles=golden.cycles,
            retired=golden.retired,
            output_words=len(golden.output),
            output_crc=_output_crc(golden.output),
        )
        return ExperimentResult(
            spec=spec, records=[record], golden_cycles=golden.cycles
        )

    def _golden(self, spec: ExperimentSpec) -> GoldenRun:
        """The error-free reference for a golden-mode spec.

        Reuses a cached platform's golden run when one exists; otherwise
        runs the machine directly without keeping periodic snapshots --
        nothing will ever restore into a golden-only run, and the
        snapshots dominate its cost.
        """
        platform = self._platforms.get(spec.platform_key())
        if platform is not None:
            return platform.golden
        image = build_workload(
            spec.benchmark,
            threads=spec.machine.total_threads,
            scale=spec.scale,
            seed=spec.seed,
        )
        machine = Machine(spec.machine, engine=spec.engine or self.engine)
        machine.load_workload(image, pcie_input=spec.pcie_input)
        return compute_golden(
            machine,
            CosimConfig(),
            want_pcie_window=(
                image.input_file_words is not None and spec.pcie_input
            ),
            keep_snapshots=False,
        )


# ----------------------------------------------------------------------
# record converters
# ----------------------------------------------------------------------
def _record_from_injection(index: int, run: InjectionRun) -> RunRecord:
    return RunRecord(
        index=index,
        outcome=run.outcome.value if run.outcome is not None else None,
        persistent=run.persistent,
        instance=run.instance,
        injection_cycle=run.injection_cycle,
        flip_location=tuple(run.flip_location),
        propagation_latency=run.propagation_latency,
        rollback_distance=run.rollback_distance,
        fault=run.fault_event.to_dict() if run.fault_event else None,
    )


def _output_crc(output: dict[int, int]) -> int:
    """Stable checksum of the application output channel."""
    blob = ";".join(
        f"{slot}:{value}" for slot, value in sorted(output.items())
    ).encode()
    return zlib.crc32(blob)
