"""Command-line interface for the reproduction.

All commands are thin wrappers over the unified experiment API
(:mod:`repro.api`): they compose an :class:`~repro.api.ExperimentSpec`
(or a :class:`~repro.api.Grid` of them), hand it to a
:class:`~repro.api.Session` or executor, and format the canonical
result.

Usage::

    python -m repro.cli campaign --component l2c --benchmark fft --n 200
    python -m repro.cli campaign --fault mbu:k=2 --n 100
    python -m repro.cli qrr --component mcu --n 50 --json -
    python -m repro.cli sweep --n 20 --workers 4 --json out.json
    python -m repro.cli sweep --n 20 --cache-dir .sweep-cache
    python -m repro.cli sweep --n 20 --workers 4 --progress --trace-out t.jsonl
    python -m repro.cli sweep --n 20 --cluster 4 --cache-dir .cluster-bus
    python -m repro.cli sweep --n 20 --cluster 8 --launcher ssh:host1,host2
    python -m repro.cli sweep --n 20 --journal .sweeps/run1
    python -m repro.cli sweep --resume .sweeps/run1
    python -m repro.cli sweep --n 20 --cluster 4 --cell-timeout 60 --max-retries 3
    python -m repro.cli sweep --n 20 --cluster 4 --worker-procs 4
    python -m repro.cli serve --state-dir .serve --port 8750
    python -m repro.cli serve --state-dir .serve --port 0 --queue-limit 16
    python -m repro.cli top http://127.0.0.1:8750/metrics --follow
    python -m repro.cli cache fsck .sweep-cache --repair
    python -m repro.cli faults list
    python -m repro.cli bench --tiny --json BENCH_step.json
    python -m repro.cli bench --fault-guard
    python -m repro.cli bench --obs-guard
    python -m repro.cli top --format prom
    python -m repro.cli tables
    python -m repro.cli run --benchmark p-wc
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.analysis.tables import (
    table1_highlevel_state,
    table3_inventory,
    table4_targets,
    table5_benchmarks,
)
from repro.api import (
    DEFAULT_SCALE,
    CachingExecutor,
    ExperimentResult,
    ExperimentSpec,
    Grid,
    Session,
    dumps_canonical,
    make_executor,
)
from repro.faults.models import DEFAULT_FAULT
from repro.system.machine import ENGINES, MachineConfig
from repro.system.outcome import OUTCOME_ORDER
from repro.utils.render import render_table
from repro.workloads import ALL_BENCHMARKS


def _machine_config(args) -> MachineConfig:
    return MachineConfig(
        cores=args.cores,
        threads_per_core=args.threads_per_core,
        l2_banks=8,
        l2_sets=args.l2_sets,
        l2_ways=args.l2_ways,
    )


class _UserError(Exception):
    """An invalid spec combination the user asked for (exit code 2)."""


def _spec(args, mode: str, component: "str | None" = None) -> ExperimentSpec:
    try:
        return ExperimentSpec(
            benchmark=args.benchmark,
            component=component,
            mode=mode,
            machine=_machine_config(args),
            scale=args.scale,
            seed=args.seed,
            n=getattr(args, "n", 1),
            fault=getattr(args, "fault", None),
            engine=getattr(args, "engine", None),
        )
    except ValueError as exc:
        raise _UserError(str(exc)) from exc


def _emit_text(text: str, dest: str) -> None:
    """Write JSON text to a file or stdout (``-``)."""
    if dest == "-":
        print(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text + "\n")


def _emit_json(result: ExperimentResult, dest: str) -> None:
    """Write the canonical result JSON to a file or stdout (``-``)."""
    _emit_text(dumps_canonical(result.to_dict()), dest)


def cmd_run(args) -> int:
    try:
        result = Session().run(
            _spec(args, "golden", component="pcie" if args.pcie else None)
        )
    except RuntimeError as exc:
        print(f"{args.benchmark}: completed=False ({exc})")
        return 1
    record = result.records[0]
    print(
        f"{args.benchmark}: completed=True cycles={record.cycles} "
        f"retired={record.retired} outputs={record.output_words}"
    )
    return 0


def cmd_campaign(args) -> int:
    spec = _spec(args, "injection", component=args.component)
    result = Session().run(spec)
    if args.json:
        _emit_json(result, args.json)
        return 0
    table = result.outcome_table()
    headers = ["benchmark"] + [o.value for o in OUTCOME_ORDER] + ["erroneous"]
    row = table.row() + [str(table.erroneous)]
    title = f"{args.component.upper()} campaign (fault: {spec.fault or DEFAULT_FAULT})"
    print(render_table(headers, [row], title=title))
    print(f"persistent runs (excluded from rates): {table.persistent}")
    masked = result.masked_count()
    if masked:
        print(f"events masked by parity/ECC protection: {masked}")
    return 0


def cmd_faults(args) -> int:
    from repro.faults import fault_table

    headers, rows = fault_table()
    print(render_table(headers, rows, title="Fault models"))
    print(
        "spec syntax: NAME[:key=value,...] -- e.g. "
        "repro campaign --fault mbu:k=2"
    )
    return 0


def cmd_qrr(args) -> int:
    result = Session().run(_spec(args, "qrr", component=args.component))
    ok = result.recovered == result.injections
    if args.json:
        _emit_json(result, args.json)
    else:
        print(
            f"QRR {args.component.upper()}: {result.recovered}/"
            f"{result.injections} recovered ({result.detected} detected); "
            f"failures: {result.failures or 'none'}"
        )
    return 0 if ok else 1


def _grid_dict(grid: Grid) -> dict:
    """The grid description embedded in sweep JSON and journals."""
    return grid.to_dict()


def cmd_sweep(args) -> int:
    from repro.api.executor import CellFailure
    from repro.resilience import (
        GracefulShutdown,
        SweepInterrupted,
        SweepJournal,
    )

    if args.fault and args.mode != "injection":
        raise _UserError("--fault applies to injection sweeps only")
    if args.journal and args.resume:
        raise _UserError(
            "--journal starts a new journal, --resume continues one; "
            "pass one or the other"
        )
    journal = None
    cache_dir = args.cache_dir
    if args.resume:
        if args.cache_dir:
            raise _UserError(
                "--resume reads the result bus recorded in the journal; "
                "--cache-dir does not apply"
            )
        try:
            journal = SweepJournal.load(args.resume)
        except (FileNotFoundError, ValueError) as exc:
            raise _UserError(str(exc)) from exc
        try:
            grid = journal.to_grid()
            specs = grid.specs()
        except (KeyError, TypeError, ValueError) as exc:
            raise _UserError(
                f"cannot rebuild the sweep grid from {args.resume}: {exc}"
            ) from exc
        if not journal.matches(specs):
            raise _UserError(
                f"journal {args.resume} cells do not match its recorded "
                f"grid (manifest damaged?)"
            )
        cache_dir = str(journal.bus_path())
        # the bus is authoritative: results that landed after the last
        # journal flush (coordinator killed mid-write) still count
        reconciled = journal.reconcile(specs)
        counts = journal.counts()
        line = (
            f"resuming journal {args.resume}: {counts['landed']}/"
            f"{len(specs)} cells already landed"
        )
        if reconciled:
            line += f" ({reconciled} reconciled from the bus)"
        print(line)
    else:
        grid = Grid(
            components=tuple(args.components),
            benchmarks=tuple(args.benchmarks),
            seeds=tuple(args.seeds),
            mode=args.mode,
            n=args.n,
            machine=_machine_config(args),
            scale=args.scale,
            fault=args.fault,
            engine=args.engine,
        )
        try:
            specs = grid.specs()
        except ValueError as exc:
            raise _UserError(str(exc)) from exc
    if not specs:
        print("sweep grid is empty (no valid component x benchmark cells)")
        return 1
    if args.journal:
        journal = SweepJournal.create(
            args.journal, _grid_dict(grid), specs, bus=args.cache_dir
        )
        cache_dir = str(journal.bus_path())
        print(
            f"journal {args.journal}: {len(specs)} cells, "
            f"bus {journal.bus_path()}"
        )
    try:
        executor = make_executor(
            workers=args.workers,
            chunksize=args.chunksize,
            cache_dir=cache_dir,
            cluster=args.cluster,
            launcher=args.launcher,
            engine=args.engine,
            max_retries=args.max_retries,
            heartbeat_timeout=args.heartbeat_timeout,
            cell_timeout=args.cell_timeout,
            worker_procs=args.worker_procs,
        )
    except ValueError as exc:
        raise _UserError(str(exc)) from exc
    workers = args.cluster if args.cluster else args.workers
    print(
        f"sweep: {len(specs)} cells x {grid.n} runs "
        f"({executor.__class__.__name__}, workers={workers})"
    )
    observer = _sweep_observer(args, total=len(specs))
    if journal is None:
        on_event = observer
    elif observer is None:
        on_event = journal.handle_event
    else:
        def on_event(event, _observer=observer, _journal=journal):
            _journal.handle_event(event)
            _observer(event)

    with GracefulShutdown() as guard:
        try:
            results = executor.run(specs, on_event=on_event, stop=guard.stop)
        except SweepInterrupted as exc:
            if observer is not None:
                observer.finish()
            print(f"sweep interrupted: {exc.done}/{exc.total} cells landed")
            if journal is not None:
                journal.reconcile(specs)
                print(
                    f"resume with: repro sweep --resume {journal.directory}"
                )
            elif cache_dir is not None:
                print(
                    f"landed cells are durable in {cache_dir}; re-running "
                    f"the same sweep with --cache-dir replays them as hits"
                )
            return 130
        except CellFailure as exc:
            if observer is not None:
                observer.finish()
            if journal is not None:
                journal.reconcile(specs)
            print(f"sweep failed: {exc}", file=sys.stderr)
            if journal is not None:
                print(
                    f"completed cells are journaled; retry with: "
                    f"repro sweep --resume {journal.directory}",
                    file=sys.stderr,
                )
            return 1
    if observer is not None:
        observer.finish()
    if journal is not None:
        journal.reconcile(specs)
        counts = journal.counts()
        print(
            f"journal {journal.directory}: {counts['landed']}/{len(specs)} "
            f"cells landed"
        )
    if isinstance(executor, CachingExecutor):
        summary = (
            f"result cache {cache_dir}: {executor.last_hits} hits, "
            f"{executor.last_misses} misses"
        )
        if executor.last_stale:
            summary += f" ({executor.last_stale} stale entries recomputed)"
        print(summary)
    if args.cluster:
        summary = f"cluster: {args.cluster} workers ({executor.launcher!r})"
        if executor.last_worker_deaths:
            summary += (
                f"; {executor.last_worker_deaths} worker deaths, "
                f"{executor.last_requeued} cells re-queued"
            )
        if executor.last_timeouts:
            summary += f"; {executor.last_timeouts} cell timeouts"
        if executor.last_fallback:
            summary += (
                f"; {executor.last_fallback} cells computed locally"
            )
        print(summary)

    _print_sweep_tables(results)
    if args.json:
        payload = {
            "schema_version": results[0].to_dict()["schema_version"],
            "grid": _grid_dict(grid),
            "results": [r.to_dict() for r in results],
        }
        _emit_text(dumps_canonical(payload), args.json)
        if args.json != "-":
            print(f"wrote {len(results)} cell results to {args.json}")
    return 0


class _SweepObserver:
    """Sweep-side consumer of the executor ``on_event`` stream.

    One callable object wires the three obs sinks together: the live
    progress line (``--progress``), the JSON-lines trace (``--trace-out``,
    one cell span per ``cell_done`` plus cache instants, with the
    in-process golden-chunk/materialize spans interleaved by the
    installed tracer) and periodic registry snapshots (``--obs-out``,
    what a concurrent ``repro top --follow`` reads).
    """

    SNAPSHOT_PERIOD = 2.0

    def __init__(self, args, total: int) -> None:
        from repro import obs

        self._obs = obs
        self.state = obs.ProgressState(total=total)
        self.renderer = (
            obs.ProgressRenderer(self.state) if args.progress else None
        )
        self.trace = (
            obs.TraceWriter(args.trace_out) if args.trace_out else None
        )
        self.obs_out = args.obs_out
        self._epoch0 = time.time()
        self._last_snapshot = 0.0
        if self.trace is not None:
            # in-process spans (golden chunks, snapshot materializations)
            # interleave with the executor cell records
            obs.set_tracer(self.trace)

    def __call__(self, event: dict) -> None:
        self.state.handle(event)
        if self.trace is not None:
            self._trace_event(event)
        if self.renderer is not None:
            self.renderer.maybe_render()
        if self._obs.enabled():
            self.state.update_registry()
        if self.obs_out and (
            time.monotonic() - self._last_snapshot > self.SNAPSHOT_PERIOD
        ):
            self._last_snapshot = time.monotonic()
            self._obs.write_snapshot(self.obs_out)

    def _trace_event(self, event: dict) -> None:
        etype = event.get("type")
        if etype == "cell_done":
            self.trace.cell(
                event.get("label", "?"),
                t0=max(0.0, event.get("t", 0.0) - self._epoch0),
                seconds=event.get("seconds", 0.0),
                cpu_seconds=event.get("cpu_seconds", 0.0),
                rss_kb=event.get("rss_kb", 0),
                pid=event.get("worker"),
                digest=event.get("digest"),
                index=event.get("index"),
            )
        elif etype in ("cache_hit", "cache_stale"):
            self.trace.instant(
                etype, "cache", digest=event.get("digest"),
                index=event.get("index"),
            )
        elif etype == "worker_dead":
            self.trace.instant(
                etype, "cluster", worker=event.get("worker"),
                requeued=event.get("requeued"),
            )
        elif etype in ("cell_retry", "cell_timeout", "cell_exhausted"):
            self.trace.instant(
                etype, "resilience", digest=event.get("digest"),
                index=event.get("index"), attempt=event.get("attempt"),
            )

    def finish(self) -> None:
        if self.renderer is not None:
            self.renderer.finish()
        report = self.state.report()
        if self.renderer is not None or report["incomplete"]:
            line = (
                f"sweep done: {report['done']}/{report['total']} cells in "
                f"{report['elapsed_seconds']:.1f}s "
                f"({report['cells_per_sec']:.2f} cells/s)"
            )
            if report["incomplete"]:
                line += (
                    f"; WARNING: {len(report['incomplete'])} cells started "
                    f"but never finished (indices "
                    f"{report['incomplete']}) -- a worker may have died"
                )
            print(line)
        if self.trace is not None:
            self._obs.set_tracer(None)
            self.trace.close()
        if self.obs_out:
            self._obs.write_snapshot(self.obs_out)


def _sweep_observer(args, total: int) -> "_SweepObserver | None":
    if not (args.progress or args.trace_out or args.obs_out):
        return None
    return _SweepObserver(args, total)


def _print_sweep_tables(results: list[ExperimentResult]) -> None:
    """One panel per (component, seed), rows in benchmark order."""
    panels: dict[tuple, list[ExperimentResult]] = {}
    for result in results:
        panels.setdefault((result.spec.component, result.spec.seed), []).append(
            result
        )
    for (component, seed), cell_results in panels.items():
        mode = cell_results[0].spec.mode
        if mode == "injection":
            headers = (
                ["benchmark"]
                + [o.value for o in OUTCOME_ORDER]
                + ["erroneous"]
            )
            rows = []
            for r in cell_results:
                table = r.outcome_table()
                rows.append(table.row() + [str(table.erroneous)])
            title = f"{(component or '-').upper()} sweep (seed {seed})"
        elif mode == "qrr":
            headers = ["benchmark", "recovered", "detected", "failures"]
            rows = [
                [
                    r.spec.benchmark,
                    f"{r.recovered}/{r.injections}",
                    str(r.detected),
                    str(len(r.failures)),
                ]
                for r in cell_results
            ]
            title = f"QRR {(component or '-').upper()} sweep (seed {seed})"
        else:
            headers = ["benchmark", "cycles", "outputs"]
            rows = [
                [
                    r.spec.benchmark,
                    str(r.golden_cycles),
                    str(r.records[0].output_words),
                ]
                for r in cell_results
            ]
            title = f"golden sweep (seed {seed})"
        print(render_table(headers, rows, title=title))
        print()


def cmd_bench(args) -> int:
    from repro.bench import BenchSettings, check_against_baseline, run_benches
    from repro.bench.harness import (
        fault_overhead_guard,
        obs_overhead_guard,
        save_bench,
    )

    settings = BenchSettings.tiny() if args.tiny else BenchSettings()
    if args.obs_guard:
        guard = obs_overhead_guard(
            settings, log=print, engine=args.obs_guard_engine
        )
        if guard["overhead"] > args.obs_tolerance:
            print(
                f"obs overhead guard[{args.obs_guard_engine}]: campaign "
                f"with REPRO_OBS=1 is {guard['overhead']:+.1%} vs obs off "
                f"(limit {args.obs_tolerance:.0%})",
                file=sys.stderr,
            )
            return 1
        print(
            f"obs overhead guard[{args.obs_guard_engine}]: "
            f"{guard['overhead']:+.1%} (limit {args.obs_tolerance:.0%}): ok"
        )
        return 0
    if args.fault_guard:
        guard = fault_overhead_guard(
            settings, log=print, engine=args.fault_guard_engine
        )
        if guard["overhead"] > args.fault_tolerance:
            print(
                f"fault-subsystem overhead guard"
                f"[{args.fault_guard_engine}]: default SingleBitFlip "
                f"path is {guard['overhead']:+.1%} vs the inline path "
                f"(limit {args.fault_tolerance:.0%})",
                file=sys.stderr,
            )
            return 1
        print(
            f"fault-subsystem overhead guard[{args.fault_guard_engine}]: "
            f"{guard['overhead']:+.1%} "
            f"(limit {args.fault_tolerance:.0%}): ok"
        )
        return 0
    if args.scenarios:
        settings = dataclasses.replace(
            settings, scenarios=tuple(args.scenarios)
        )
    doc = run_benches(settings, log=print)
    if args.json == "-":
        print(dumps_canonical(doc))
    else:
        save_bench(doc, args.json)
        print(f"wrote {args.json}")
    if args.check_against:
        failures = check_against_baseline(
            doc,
            args.check_against,
            tolerance=args.tolerance,
            warn=lambda line: print(f"bench warning: {line}", file=sys.stderr),
        )
        if failures:
            for line in failures:
                print(f"bench regression: {line}", file=sys.stderr)
            return 1
        print(f"bench check vs {args.check_against}: ok")
    return 0


def cmd_worker(args) -> int:
    """The cluster worker agent: newline-delimited JSON on stdin/stdout
    (launched by a ClusterExecutor coordinator, rarely by hand)."""
    from repro.cluster import run_worker

    return run_worker(
        args.cache_dir,
        engine=args.engine,
        worker_id=args.worker_id,
        heartbeat=args.heartbeat,
        workers=args.workers,
    )


def cmd_serve(args) -> int:
    """``repro serve``: the always-on campaign daemon (see
    :mod:`repro.serve`).  Runs until SIGTERM/SIGINT, then drains:
    admission stops, running jobs are interrupted between cells and
    re-queued durably, and a restart resumes with only unlanded cells
    recomputing."""
    import threading

    from repro.resilience import GracefulShutdown, RetryPolicy
    from repro.serve import CampaignService, make_server, write_endpoint_file

    retry = RetryPolicy(
        max_attempts=args.max_retries + 1,
        backoff_base=0.05,
        cell_timeout=args.cell_timeout,
    )
    service = CampaignService(
        args.state_dir,
        cache_dir=args.cache_dir,
        queue_limit=args.queue_limit,
        per_client_limit=args.per_client,
        runners=args.runners,
        workers=args.workers,
        warm_platforms=args.warm_platforms,
        engine=args.engine,
        retry=retry,
        job_timeout=args.job_timeout,
    )
    service.start()
    recovered = service.recovered
    fsck = recovered.get("fsck")
    if fsck:
        quarantined = len(fsck.get("quarantined", []))
        line = f"startup fsck: {fsck.get('ok', 0)} bus entries ok"
        if quarantined:
            line += f", {quarantined} damaged entries quarantined"
        print(line)
    if recovered["jobs"]:
        print(
            f"recovered {recovered['jobs']} interrupted job(s) from "
            f"{service.state_dir} (landed cells will replay as cache hits)"
        )
    for name in recovered.get("damaged", ()):
        print(f"warning: skipped damaged job manifest {name}", file=sys.stderr)
    try:
        server = make_server(service, host=args.host, port=args.port)
    except OSError as exc:
        raise _UserError(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from exc
    host, port = server.server_address[:2]
    write_endpoint_file(args.state_dir, host, port)
    print(
        f"repro serve: http://{host}:{port} "
        f"(bus {service.bus}, queue limit {args.queue_limit}, "
        f"{args.runners} runner(s) x {args.workers} worker(s))"
    )
    threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    ).start()
    with GracefulShutdown() as guard:
        try:
            guard.stop.wait()
        except KeyboardInterrupt:
            return 130  # second signal: hard stop, journals stay consistent
    print("repro serve: draining (admission stopped)")
    server.shutdown()
    service.close(timeout=args.drain_timeout)
    stats = service.stats()
    queued = stats["jobs"].get("queued", 0)
    line = "repro serve: drained"
    if queued:
        line += (
            f"; {queued} job(s) re-queued durably (restart with the same "
            f"--state-dir to resume)"
        )
    print(line)
    return 0


def cmd_cache(args) -> int:
    """``repro cache fsck``: audit (and with ``--repair`` quarantine
    damage in) a content-addressed result cache / cluster bus."""
    from repro.resilience import fsck_cache

    kwargs = {}
    if args.tmp_age is not None:
        kwargs["tmp_age"] = args.tmp_age
    try:
        report = fsck_cache(args.cache_dir, repair=args.repair, **kwargs)
    except FileNotFoundError as exc:
        raise _UserError(str(exc)) from exc
    if args.json:
        _emit_text(dumps_canonical(report.to_dict()), args.json)
        if args.json == "-":
            return 0 if report.issues == 0 else 1
    line = (
        f"cache fsck {args.cache_dir}: {report.ok} ok, "
        f"{len(report.corrupt)} corrupt, {len(report.mismatched)} "
        f"mismatched, {len(report.orphan_tmp)} orphaned tmp"
    )
    if report.skipped_tmp:
        line += f" ({report.skipped_tmp} young tmp skipped)"
    print(line)
    for kind in ("corrupt", "mismatched", "orphan_tmp"):
        for name in getattr(report, kind):
            print(f"  {kind}: {name}")
    if report.quarantined:
        print(
            f"quarantined {len(report.quarantined)} entries into "
            f"{report.cache_dir / 'quarantine'}"
        )
    elif report.issues:
        print("re-run with --repair to quarantine the damaged entries")
    return 0 if report.issues == 0 else 1


def cmd_top(args) -> int:
    """Render obs state: a snapshot file a sweep wrote (``--obs-out``),
    or this process's own registry when no file is given."""
    from repro import obs
    from repro.obs.report import read_snapshot

    def render(doc) -> str:
        if args.format == "prom":
            return obs.render_prometheus(doc)
        return obs.render_table(doc)

    if args.snapshot is None:
        print(render(obs.snapshot()))
        if not obs.enabled():
            print(
                "(hint: the metrics layer is off in this process; pass a "
                "snapshot file written by 'repro sweep --obs-out FILE', or "
                "run commands with --obs / REPRO_OBS=1)",
                file=sys.stderr,
            )
        return 0
    while True:
        try:
            doc = read_snapshot(args.snapshot)
        except OSError:
            # a missing file, or an unreachable /metrics URL (URLError
            # is an OSError); --follow keeps polling either way
            if not args.follow:
                print(f"no snapshot at {args.snapshot}", file=sys.stderr)
                return 1
            doc = None
        if doc is not None:
            print(render(doc))
        if not args.follow:
            return 0
        time.sleep(args.interval)


def cmd_tables(_args) -> int:
    for title, fn in (
        ("Table 1", table1_highlevel_state),
        ("Table 3", table3_inventory),
        ("Table 4", table4_targets),
        ("Table 5", table5_benchmarks),
    ):
        headers, rows = fn()
        print(render_table(headers, rows, title=title))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, benchmark=True):
        if benchmark:
            p.add_argument("--benchmark", default="fft", choices=ALL_BENCHMARKS)
        p.add_argument("--cores", type=int, default=8)
        p.add_argument("--threads-per-core", type=int, default=4)
        p.add_argument("--l2-sets", type=int, default=8)
        p.add_argument("--l2-ways", type=int, default=4)
        p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
        p.add_argument("--seed", type=int, default=2015)
        p.add_argument(
            "--engine", default=None, choices=list(ENGINES),
            help="machine cycle engine (bit-identical results; "
                 "performance knob only -- default: event)",
        )
        p.add_argument(
            "--obs", action="store_true",
            help="enable the metrics layer (same as REPRO_OBS=1); "
                 "digest-neutral -- results are bit-identical either way",
        )

    def json_flag(p):
        p.add_argument(
            "--json", nargs="?", const="-", default=None, metavar="FILE",
            help="emit the canonical ExperimentResult JSON "
                 "(to FILE, or stdout when no FILE is given)",
        )

    p = sub.add_parser("run", help="run one benchmark error-free")
    common(p)
    p.add_argument("--pcie", action="store_true", help="DMA the input file")
    p.set_defaults(func=cmd_run)

    def fault_flag(p):
        p.add_argument(
            "--fault", default=None, metavar="SPEC",
            help="fault-model spec string, e.g. 'mbu:k=2' or "
                 "'stuck:value=0' (see 'repro faults list'; "
                 "default: the paper's single-bit flip)",
        )

    p = sub.add_parser("campaign", help="run an injection campaign cell")
    common(p)
    p.add_argument("--component", default="l2c",
                   choices=["l2c", "mcu", "ccx", "pcie"])
    p.add_argument("--n", type=int, default=100)
    fault_flag(p)
    json_flag(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("faults", help="describe the available fault models")
    p.add_argument("action", nargs="?", default="list", choices=["list"])
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("qrr", help="run a QRR effectiveness campaign")
    common(p)
    p.add_argument("--component", default="l2c", choices=["l2c", "mcu"])
    p.add_argument("--n", type=int, default=25)
    json_flag(p)
    p.set_defaults(func=cmd_qrr)

    p = sub.add_parser(
        "sweep", help="run a component x benchmark x seed campaign grid"
    )
    common(p, benchmark=False)
    p.add_argument(
        "--components", nargs="+", default=["l2c", "mcu", "ccx", "pcie"],
        choices=["l2c", "mcu", "ccx", "pcie"],
    )
    p.add_argument(
        "--benchmarks", nargs="+", default=list(ALL_BENCHMARKS),
        choices=ALL_BENCHMARKS,
    )
    p.add_argument("--seeds", nargs="+", type=int, default=None,
                   help="campaign seeds (default: --seed)")
    p.add_argument("--mode", default="injection",
                   choices=["injection", "qrr", "golden"])
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size; 1 runs serially")
    p.add_argument("--chunksize", type=int, default=1)
    p.add_argument("--cluster", type=int, default=0, metavar="N",
                   help="shard the grid across N 'repro worker' agents "
                        "(overrides --workers; results stay byte-identical "
                        "to a serial sweep)")
    p.add_argument("--launcher", default=None, metavar="SPEC",
                   help="cluster worker transport: 'local' (default) or "
                        "'ssh:host1,host2' (requires a shared --cache-dir)")
    p.add_argument("--worker-procs", type=int, default=1, metavar="N",
                   help="(--cluster) process-pool size inside each worker "
                        "agent: total fan-out becomes cluster x N "
                        "(results stay byte-identical)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="persist all cell results ('-' for stdout)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="skip cells whose (spec-digest -> result) JSON "
                        "already exists under DIR; misses are written back")
    p.add_argument("--progress", action="store_true",
                   help="render a live progress line (cells/sec, ETA, "
                        "cache hit rate, per-worker rss)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write per-cell trace spans (canonical JSON-lines; "
                        "convert with repro.obs.to_chrome)")
    p.add_argument("--obs-out", default=None, metavar="FILE",
                   help="periodically write a metrics-registry snapshot "
                        "for 'repro top FILE --follow'")
    p.add_argument("--journal", default=None, metavar="DIR",
                   help="write a crash-safe sweep journal under DIR (grid "
                        "manifest + per-cell state; the result bus defaults "
                        "to DIR/bus unless --cache-dir names one); a killed "
                        "sweep continues with --resume DIR")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="resume the journaled sweep under DIR: the grid "
                        "comes from the journal, landed cells replay as "
                        "byte-identical cache hits, only unlanded cells "
                        "recompute")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="per-cell re-attempt budget after a crash, timeout "
                        "or error (default: fail fast locally, 2 for "
                        "--cluster)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-cell wall-clock deadline: a cell running "
                        "longer gets its worker process killed and is "
                        "re-queued against the retry budget")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="(--cluster) silence beyond this declares a worker "
                        "dead and re-queues its cells")
    fault_flag(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "bench", help="measure cycle-engine throughput (BENCH_step.json)"
    )
    p.add_argument("--tiny", action="store_true",
                   help="CI smoke sizing (fewer runs/repeats)")
    p.add_argument("--json", default="BENCH_step.json", metavar="FILE",
                   help="where to write the canonical bench document "
                        "('-' for stdout only)")
    p.add_argument("--scenarios", nargs="+", default=None,
                   choices=["golden", "injection", "qrr", "sweep",
                            "cluster", "serve"])
    p.add_argument("--check-against", default=None, metavar="BASELINE",
                   help="fail (exit 1) if event-engine cycles/sec regresses "
                        "more than --tolerance below this baseline JSON")
    p.add_argument("--tolerance", type=float, default=0.30)
    p.add_argument("--fault-guard", action="store_true",
                   help="only run the fault-subsystem overhead guard: "
                        "time the default SingleBitFlip campaign path "
                        "against the inline run_injection path and fail "
                        "(exit 1) beyond --fault-tolerance")
    p.add_argument("--fault-tolerance", type=float, default=0.05)
    p.add_argument("--fault-guard-engine", default="event",
                   choices=list(ENGINES),
                   help="cycle engine the fault-overhead guard runs on "
                        "(CI gates event and compiled)")
    p.add_argument("--obs-guard", action="store_true",
                   help="only run the observability overhead guard: time a "
                        "campaign cell with the obs layer enabled against "
                        "the disabled path and fail (exit 1) beyond "
                        "--obs-tolerance")
    p.add_argument("--obs-tolerance", type=float, default=0.10)
    p.add_argument("--obs-guard-engine", default="event",
                   choices=list(ENGINES),
                   help="cycle engine the obs-overhead guard runs on")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "worker",
        help="run a cluster worker agent (JSON lines on stdin/stdout)",
    )
    p.add_argument("--cache-dir", required=True, metavar="DIR",
                   help="the shared content-addressed result bus directory")
    p.add_argument("--engine", default=None, choices=list(ENGINES),
                   help="cycle engine for this worker's session "
                        "(digest-neutral)")
    p.add_argument("--worker-id", type=int, default=0)
    p.add_argument("--heartbeat", type=float, default=2.0, metavar="SECONDS",
                   help="liveness beacon period (<= 0 disables)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="run each shard through a supervised process "
                        "pool of N workers instead of serially")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the always-on campaign service (HTTP/JSON job API)",
    )
    p.add_argument("--state-dir", default=".repro-serve", metavar="DIR",
                   help="durable daemon state: job manifests + journals "
                        "under DIR/jobs, the result bus under DIR/bus "
                        "(unless --cache-dir), the bound endpoint in "
                        "DIR/http.json")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="the content-addressed result bus (default: "
                        "STATE_DIR/bus); fsck'd with --repair on startup "
                        "and after executor crashes")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750,
                   help="TCP port (0 picks an ephemeral port; the bound "
                        "endpoint is advertised in STATE_DIR/http.json)")
    p.add_argument("--queue-limit", type=int, default=8, metavar="N",
                   help="bounded job queue: submissions past N are "
                        "refused with 503 + Retry-After")
    p.add_argument("--per-client", type=int, default=2, metavar="N",
                   help="per-client in-flight job cap: past N the client "
                        "gets 429 + Retry-After")
    p.add_argument("--runners", type=int, default=1, metavar="N",
                   help="concurrent job runner threads (each executes "
                        "one job at a time)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="process-pool size per job (1 runs cells "
                        "serially in-daemon against the warm platform "
                        "pool)")
    p.add_argument("--warm-platforms", type=int, default=8, metavar="N",
                   help="LRU capacity of the warm platform/snapshot "
                        "pool shared across jobs")
    p.add_argument("--engine", default=None, choices=list(ENGINES),
                   help="cycle engine for daemon sessions "
                        "(digest-neutral)")
    p.add_argument("--max-retries", type=int, default=1, metavar="N",
                   help="per-cell re-attempt budget inside a job")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-cell wall-clock deadline (pool workers past "
                        "it are killed and the cell re-queued)")
    p.add_argument("--job-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job deadline: a job running longer is "
                        "interrupted between cells and marked failed "
                        "(landed cells stay durable)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="how long SIGTERM waits for running jobs to "
                        "stop between cells before exiting anyway")
    p.add_argument(
        "--obs", action="store_true",
        help="enable the metrics layer (the /metrics endpoint serves "
             "the registry snapshot; digest-neutral)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cache", help="inspect and repair a result cache / cluster bus"
    )
    cache_sub = p.add_subparsers(dest="action", required=True)
    pf = cache_sub.add_parser(
        "fsck",
        help="audit every cache entry (parse + digest check) and "
             "orphaned temp files; exit 1 when damage is found",
    )
    pf.add_argument("cache_dir", metavar="CACHE_DIR",
                    help="the cache / bus directory to scan")
    pf.add_argument("--repair", action="store_true",
                    help="move damaged entries and orphaned temp files "
                         "into CACHE_DIR/quarantine/ (never deletes)")
    pf.add_argument("--tmp-age", type=float, default=None, metavar="SECONDS",
                    help="treat *.tmp files older than this as orphaned "
                         "(default: 60)")
    json_flag(pf)
    pf.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "top", help="render obs metrics (table or Prometheus format)"
    )
    p.add_argument("snapshot", nargs="?", default=None, metavar="SNAPSHOT",
                   help="a snapshot file written by 'repro sweep --obs-out' "
                        "(default: this process's registry)")
    p.add_argument("--format", default="table", choices=["table", "prom"],
                   help="'prom' emits Prometheus text-exposition format")
    p.add_argument("--follow", action="store_true",
                   help="re-render the snapshot file every --interval "
                        "seconds until interrupted")
    p.add_argument("--interval", type=float, default=2.0)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("tables", help="print the inventory tables")
    p.set_defaults(func=cmd_tables)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "obs", False):
        # enable before any platform/machine is built so hot-loop
        # counter handles freeze in the enabled state (also exports
        # REPRO_OBS=1 for pool workers)
        from repro import obs

        obs.enable()
    if args.command == "sweep" and args.seeds is None:
        args.seeds = [args.seed]
    try:
        return args.func(args)
    except BrokenPipeError:
        # output was piped into a pager/head that exited early
        return 0
    except _UserError as exc:
        # invalid spec combinations (e.g. PCIe into a benchmark without
        # an input file) are user errors, not crashes; genuine internal
        # errors still raise with a full traceback
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
