"""Command-line interface for the reproduction.

Usage::

    python -m repro.cli campaign --component l2c --benchmark fft --n 200
    python -m repro.cli qrr --component mcu --n 50
    python -m repro.cli tables
    python -m repro.cli run --benchmark p-wc
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import (
    table1_highlevel_state,
    table3_inventory,
    table4_targets,
    table5_benchmarks,
)
from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import MixedModePlatform
from repro.qrr.campaign import QrrCampaign
from repro.system.machine import Machine, MachineConfig
from repro.system.outcome import OUTCOME_ORDER
from repro.utils.render import render_table
from repro.workloads import ALL_BENCHMARKS, build_workload


def _machine_config(args) -> MachineConfig:
    return MachineConfig(
        cores=args.cores,
        threads_per_core=args.threads_per_core,
        l2_banks=8,
        l2_sets=args.l2_sets,
        l2_ways=args.l2_ways,
    )


def cmd_run(args) -> int:
    machine = Machine(_machine_config(args))
    machine.load_workload(
        build_workload(
            args.benchmark,
            threads=_machine_config(args).total_threads,
            scale=args.scale,
            seed=args.seed,
        ),
        pcie_input=args.pcie,
    )
    result = machine.run()
    print(
        f"{args.benchmark}: completed={result.completed} cycles={result.cycles} "
        f"retired={result.retired} outputs={len(result.output)}"
    )
    return 0 if result.completed else 1


def cmd_campaign(args) -> int:
    platform = MixedModePlatform(
        args.benchmark,
        machine_config=_machine_config(args),
        scale=args.scale,
        seed=args.seed,
        pcie_input=(args.component == "pcie"),
    )
    campaign = InjectionCampaign(platform, args.component, seed=args.seed)
    result = campaign.run(args.n)
    headers = ["benchmark"] + [o.value for o in OUTCOME_ORDER] + ["erroneous"]
    row = result.table.row() + [str(result.table.erroneous)]
    print(render_table(headers, [row], title=f"{args.component.upper()} campaign"))
    print(f"persistent runs (excluded from rates): {result.table.persistent}")
    return 0


def cmd_qrr(args) -> int:
    platform = MixedModePlatform(
        args.benchmark,
        machine_config=_machine_config(args),
        scale=args.scale,
        seed=args.seed,
    )
    campaign = QrrCampaign(platform, args.component)
    result = campaign.run(args.n, seed=args.seed)
    print(
        f"QRR {args.component.upper()}: {result.recovered}/{result.injections} "
        f"recovered ({result.detected} detected); failures: "
        f"{result.failures or 'none'}"
    )
    return 0 if result.recovered == result.injections else 1


def cmd_tables(_args) -> int:
    for title, fn in (
        ("Table 1", table1_highlevel_state),
        ("Table 3", table3_inventory),
        ("Table 4", table4_targets),
        ("Table 5", table5_benchmarks),
    ):
        headers, rows = fn()
        print(render_table(headers, rows, title=title))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, benchmark=True):
        if benchmark:
            p.add_argument("--benchmark", default="fft", choices=ALL_BENCHMARKS)
        p.add_argument("--cores", type=int, default=8)
        p.add_argument("--threads-per-core", type=int, default=4)
        p.add_argument("--l2-sets", type=int, default=8)
        p.add_argument("--l2-ways", type=int, default=4)
        p.add_argument("--scale", type=float, default=1 / 40_000)
        p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("run", help="run one benchmark error-free")
    common(p)
    p.add_argument("--pcie", action="store_true", help="DMA the input file")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("campaign", help="run an injection campaign cell")
    common(p)
    p.add_argument("--component", default="l2c",
                   choices=["l2c", "mcu", "ccx", "pcie"])
    p.add_argument("--n", type=int, default=100)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("qrr", help="run a QRR effectiveness campaign")
    common(p)
    p.add_argument("--component", default="l2c", choices=["l2c", "mcu"])
    p.add_argument("--n", type=int, default=25)
    p.set_defaults(func=cmd_qrr)

    p = sub.add_parser("tables", help="print the inventory tables")
    p.set_defaults(func=cmd_tables)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
