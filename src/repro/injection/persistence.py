"""Per-flip-flop error-persistence measurement (paper Fig. 6).

For a sample of target flip-flops, inject once into each and measure how
long a *residual* mismatch (one that neither is benign nor maps to
high-level state) survives in the target component.  Fig. 6 plots, per
component, the fraction of flip-flops whose errors persist beyond a
given co-simulation length; Sec. 4.2 uses it to justify the 100K-cycle
cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mixedmode.adapters import make_adapter
from repro.mixedmode.platform import MixedModePlatform
from repro.utils.cdf import Cdf


@dataclass
class PersistenceResult:
    """Persistence samples for one component."""

    component: str
    #: cycles until the residual mismatch cleared, per probed flip-flop;
    #: capped probes record the cap value (right-censored)
    samples: list[int] = field(default_factory=list)
    cap: int = 0

    def fraction_persisting_beyond(self, cycles: float) -> float:
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s > cycles) / len(self.samples)

    def decade_series(self, max_exponent: int = 6) -> list[tuple[float, float]]:
        """The Fig. 6 series: x -> fraction of FFs persisting beyond x."""
        return [
            (float(10**e), self.fraction_persisting_beyond(float(10**e)))
            for e in range(1, max_exponent + 1)
        ]

    def cdf(self) -> Cdf:
        return Cdf(self.samples)


class PersistenceProbe:
    """Measures per-flip-flop persistence on a mixed-mode platform."""

    def __init__(self, platform: MixedModePlatform, component: str) -> None:
        self.platform = platform
        self.component = component

    def probe_one(
        self, injection_cycle: int, target_bit: int, instance: int, cap: int
    ) -> int:
        """Cycles until no residual mismatch remains (or ``cap``)."""
        plat = self.platform
        machine = plat.machine
        _c, snap = plat.golden.snapshot_at_or_before(injection_cycle)
        machine.restore(snap)
        machine.run_until_cycle(injection_cycle)
        adapter = plat._attach_quiesced(self.component, instance)
        for _ in range(plat.cosim.warmup_min):
            machine.step()
        adapter.flip(target_bit)
        elapsed = 0
        check = plat.cosim.check_interval
        persisted = cap
        while elapsed < cap:
            steps = min(check, cap - elapsed)
            for _ in range(steps):
                machine.step()
            elapsed += steps
            if machine.any_trap() is not None:
                break
            status = adapter.compare()
            if status.residual == 0:
                persisted = elapsed
                break
        adapter.release()
        return persisted

    def run(
        self, n_flip_flops: int, cap: int = 20_000, seed: int = 0
    ) -> PersistenceResult:
        rng = random.Random(seed ^ 0x5151)
        result = PersistenceResult(self.component, cap=cap)
        for _ in range(n_flip_flops):
            cycle, instance, bit = self.platform.sample_injection_point(
                self.component, rng
            )
            result.samples.append(self.probe_one(cycle, bit, instance, cap))
        return result
