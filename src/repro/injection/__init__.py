"""Soft-error injection campaigns and result aggregation (paper Sec. 3)."""

from repro.injection.campaign import (
    CampaignResult,
    InjectionCampaign,
    OutcomeTable,
)
from repro.injection.persistence import PersistenceProbe

__all__ = [
    "CampaignResult",
    "InjectionCampaign",
    "OutcomeTable",
    "PersistenceProbe",
]
