"""Injection campaigns over (component x benchmark) cells (Fig. 3).

A campaign runs N independent injections through the mixed-mode platform
and aggregates the five outcome categories.  Runs whose errors persist in
microarchitectural state past the co-simulation cap are *not* reported as
erroneous (paper Sec. 4.2) -- they are tallied separately and fold into
the Vanished bucket for the Fig. 3 rates, exactly as the paper does.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.faults.models import FaultModel, SingleBitFlip
from repro.mixedmode.platform import InjectionRun, MixedModePlatform
from repro.system.outcome import OUTCOME_ORDER, Outcome
from repro.utils.stats import BinomialEstimate


@dataclass
class OutcomeTable:
    """Outcome counts for one (component, benchmark) campaign cell."""

    component: str
    benchmark: str
    counts: dict[Outcome, int] = field(default_factory=dict)
    persistent: int = 0
    total: int = 0

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "benchmark": self.benchmark,
            "counts": {o.value: n for o, n in self.counts.items()},
            "persistent": self.persistent,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OutcomeTable":
        return cls(
            component=data["component"],
            benchmark=data["benchmark"],
            counts={
                Outcome(name): n
                for name, n in data.get("counts", {}).items()
            },
            persistent=data.get("persistent", 0),
            total=data.get("total", 0),
        )

    def add(self, run: InjectionRun) -> None:
        self.total += 1
        if run.persistent:
            self.persistent += 1
            return
        self.counts[run.outcome] = self.counts.get(run.outcome, 0) + 1

    def rate(self, outcome: Outcome) -> BinomialEstimate:
        """Rate of one outcome category over all runs.

        Persistent runs count toward the denominator and fold into
        Vanished (conservative, per the paper).
        """
        if self.total == 0:
            raise ValueError("empty campaign cell")
        n = self.counts.get(outcome, 0)
        if outcome is Outcome.VANISHED:
            n += self.persistent
        return BinomialEstimate(n, self.total)

    @property
    def erroneous(self) -> BinomialEstimate:
        """Probability of a non-Vanished outcome (the paper's headline)."""
        if self.total == 0:
            raise ValueError("empty campaign cell")
        bad = sum(
            c for o, c in self.counts.items() if o is not Outcome.VANISHED
        )
        return BinomialEstimate(bad, self.total)

    def row(self) -> list[str]:
        """One Fig. 3 row: benchmark + the five category rates."""
        cells = [self.benchmark]
        for outcome in OUTCOME_ORDER:
            cells.append(f"{self.rate(outcome).rate:.2%}")
        return cells


@dataclass
class CampaignResult:
    """All runs plus the aggregated table for one campaign cell."""

    table: OutcomeTable
    runs: list[InjectionRun] = field(default_factory=list)

    def propagation_latencies(self) -> list[int]:
        """Samples for the Fig. 8 CDF."""
        return [
            r.propagation_latency
            for r in self.runs
            if r.propagation_latency is not None
        ]

    def rollback_distances(self) -> list[int]:
        """Samples for the Fig. 9 CDF."""
        return [
            r.rollback_distance
            for r in self.runs
            if r.rollback_distance is not None
        ]

    def to_dict(self) -> dict:
        """Lossless plain-dict form: the table plus every run's record,
        fault-event metadata included (aggregation used to drop the
        flipped locations)."""
        return {
            "table": self.table.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            table=OutcomeTable.from_dict(data["table"]),
            runs=[InjectionRun.from_dict(r) for r in data.get("runs", ())],
        )


class InjectionCampaign:
    """Runs one (component, benchmark) campaign cell.

    ``fault`` selects the fault model (defaults to the paper's
    single-bit TARGET-flip-flop flip, bit-identical to the
    pre-subsystem behaviour).
    """

    def __init__(
        self,
        platform: MixedModePlatform,
        component: str,
        seed: int = 0,
        fault: "FaultModel | None" = None,
    ) -> None:
        self.platform = platform
        self.component = component
        self.seed = seed
        self.fault = fault if fault is not None else SingleBitFlip()

    def run(self, n_injections: int) -> CampaignResult:
        # stable digest, NOT hash(): str hashes vary across interpreter
        # runs under PYTHONHASHSEED randomization, which would make
        # campaigns unreproducible across processes
        rng = random.Random(
            (self.seed << 16) ^ (zlib.crc32(self.component.encode()) & 0xFFFF)
        )
        table = OutcomeTable(self.component, self.platform.benchmark)
        result = CampaignResult(table)
        for _ in range(n_injections):
            event = self.fault.sample_event(self.platform, self.component, rng)
            run = self.platform.run_injection(
                self.component,
                event.cycle,
                instance=event.instance,
                rng=rng,
                fault=self.fault,
                event=event,
            )
            table.add(run)
            result.runs.append(run)
        return result
