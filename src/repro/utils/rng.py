"""Deterministic, independent random streams.

Injection campaigns must be reproducible and parallel-safe: every
injection run derives its own stream from (campaign seed, run index), so
re-running any single run in isolation reproduces it exactly.  Streams
are derived with a stable digest (blake2b), never ``hash()``, so two
processes -- including process-pool workers spawned with different
``PYTHONHASHSEED`` values -- produce identical streams for identical
keys.
"""

from __future__ import annotations

import hashlib
import random


def _digest(material: tuple) -> int:
    """Stable 64-bit digest of a key tuple (PYTHONHASHSEED-independent)."""
    blob = "\x1f".join(str(part) for part in material).encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(blob, digest_size=8).digest(), "big"
    )


class RngFactory:
    """Spawns named, independent :class:`random.Random` streams.

    Two factories with the same root seed produce identical streams for
    identical keys, regardless of the order streams are requested in and
    regardless of the process requesting them.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, *key: object) -> random.Random:
        """Return a fresh RNG determined by ``(root_seed, *key)``."""
        material = (self._root_seed,) + tuple(str(k) for k in key)
        return random.Random(_digest(material))

    def child(self, *key: object) -> "RngFactory":
        """Derive a sub-factory (e.g. one per benchmark application)."""
        material = (self._root_seed,) + tuple(str(k) for k in key)
        return RngFactory(_digest(material))
