"""Deterministic, independent random streams.

Injection campaigns must be reproducible and parallel-safe: every
injection run derives its own stream from (campaign seed, run index), so
re-running any single run in isolation reproduces it exactly.
"""

from __future__ import annotations

import random


class RngFactory:
    """Spawns named, independent :class:`random.Random` streams.

    Two factories with the same root seed produce identical streams for
    identical keys, regardless of the order streams are requested in.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, *key: object) -> random.Random:
        """Return a fresh RNG determined by ``(root_seed, *key)``."""
        material = (self._root_seed,) + tuple(str(k) for k in key)
        return random.Random(hash(material) & 0xFFFF_FFFF_FFFF_FFFF)

    def child(self, *key: object) -> "RngFactory":
        """Derive a sub-factory (e.g. one per benchmark application)."""
        material = (self._root_seed,) + tuple(str(k) for k in key)
        return RngFactory(hash(material) & 0xFFFF_FFFF_FFFF_FFFF)
