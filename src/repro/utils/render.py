"""Plain-text rendering of tables and figure series.

The benchmark harness prints every reproduced table and figure as ASCII so
that results are inspectable without a plotting stack (none is available
offline).  Rows and series mirror the layout of the paper's artifacts.
"""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with column alignment.

    ``rows`` cells are converted with ``str``; numeric cells are
    right-aligned, text left-aligned.
    """
    cells = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.replace("%", "").replace(",", "").replace("x", "")
        try:
            float(stripped)
            return True
        except ValueError:
            return False

    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        parts = []
        for cell, width in zip(row, widths):
            parts.append(cell.rjust(width) if is_numeric(cell) else cell.ljust(width))
        lines.append(" | ".join(parts))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Sequence[tuple[float, float]],
    y_format: str = "{:.2%}",
    x_format: str = "{:g}",
) -> str:
    """Render one figure series as ``x -> y`` lines with a sparkline bar."""
    lines = [name]
    max_y = max((y for _, y in points), default=1.0) or 1.0
    for x, y in points:
        bar = "#" * int(round(40 * y / max_y))
        lines.append(
            f"  {x_format.format(x):>12} | {y_format.format(y):>9} | {bar}"
        )
    return "\n".join(lines)


def render_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
