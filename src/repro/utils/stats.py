"""Statistics for fault-injection campaigns.

The paper sizes its campaigns with the normal approximation of the
binomial distribution (footnote 2: observing a 1% outcome rate to within
+/-0.1% at 95% confidence requires more than 40,000 samples).  This module
implements that calculation plus the Wilson score interval, which we use
for reporting because it behaves sensibly at the very small outcome rates
typical of soft-error studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Two-sided z value for a 95% confidence level, the level used throughout
#: the paper.
Z_95 = 1.959963984540054


def normal_ci_halfwidth(rate: float, samples: int, z: float = Z_95) -> float:
    """Half-width of the normal-approximation confidence interval.

    ``rate`` is the observed outcome probability and ``samples`` the number
    of injection runs.  This is the quantity the paper's footnote 2 bounds
    at 0.1% for rate=1%, n>40,000.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    return z * math.sqrt(rate * (1.0 - rate) / samples)


def required_samples(rate: float, halfwidth: float, z: float = Z_95) -> int:
    """Samples needed so the normal CI half-width is at most ``halfwidth``.

    ``required_samples(0.01, 0.001)`` reproduces the paper's ">40,000"
    campaign-sizing rule.
    """
    if halfwidth <= 0.0:
        raise ValueError("halfwidth must be positive")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    n = (z / halfwidth) ** 2 * rate * (1.0 - rate)
    return int(math.ceil(n))


def wilson_interval(
    successes: int, samples: int, z: float = Z_95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the normal approximation it never escapes [0, 1] and remains
    informative when ``successes`` is zero -- the common case for rare
    outcome categories such as OMM.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if not 0 <= successes <= samples:
        raise ValueError("successes must be within [0, samples]")
    p = successes / samples
    z2 = z * z
    denom = 1.0 + z2 / samples
    centre = (p + z2 / (2.0 * samples)) / denom
    spread = (
        z
        * math.sqrt(p * (1.0 - p) / samples + z2 / (4.0 * samples * samples))
        / denom
    )
    low = 0.0 if successes == 0 else max(0.0, centre - spread)
    high = 1.0 if successes == samples else min(1.0, centre + spread)
    return (low, high)


@dataclass(frozen=True)
class BinomialEstimate:
    """An observed outcome rate with its uncertainty.

    Attributes:
        successes: number of runs that showed the outcome.
        samples: total number of injection runs.
    """

    successes: int
    samples: int

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("samples must be positive")
        if not 0 <= self.successes <= self.samples:
            raise ValueError("successes must be within [0, samples]")

    @property
    def rate(self) -> float:
        """Point estimate of the outcome probability."""
        return self.successes / self.samples

    @property
    def ci95(self) -> tuple[float, float]:
        """95% Wilson confidence interval."""
        return wilson_interval(self.successes, self.samples)

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95% interval."""
        return normal_ci_halfwidth(self.rate, self.samples)

    def __str__(self) -> str:
        low, high = self.ci95
        return f"{self.rate:.4%} [{low:.4%}, {high:.4%}] (n={self.samples})"
