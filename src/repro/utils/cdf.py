"""Empirical cumulative distributions.

Figures 6, 8 and 9 of the paper are CDFs over cycle counts plotted on a
log-decade x axis.  :class:`Cdf` collects samples and evaluates the CDF at
the decade boundaries those figures use.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence


class Cdf:
    """An empirical CDF over non-negative sample values.

    Samples may be added incrementally; evaluation sorts lazily.
    """

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: list[float] = []
        self._sorted = False
        self.extend(samples)

    def add(self, value: float) -> None:
        """Record one sample."""
        if value < 0:
            raise ValueError("Cdf samples must be non-negative")
        self._samples.append(value)
        self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def fraction_at_most(self, x: float) -> float:
        """P(sample <= x).  Returns 0.0 for an empty CDF."""
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        return bisect.bisect_right(self._samples, x) / len(self._samples)

    def fraction_greater(self, x: float) -> float:
        """P(sample > x) -- the survival function."""
        return 1.0 - self.fraction_at_most(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF.  ``q`` must be in [0, 1]; the CDF must be non-empty."""
        if not self._samples:
            raise ValueError("quantile of an empty Cdf")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        self._ensure_sorted()
        if q == 0.0:
            return self._samples[0]
        idx = max(0, min(len(self._samples) - 1, int(q * len(self._samples)) - 0))
        idx = min(len(self._samples) - 1, max(0, round(q * (len(self._samples) - 1))))
        return self._samples[idx]

    def at_decades(self, max_exponent: int = 9) -> list[tuple[float, float]]:
        """Evaluate the CDF at 1, 10, 100, ... 10**max_exponent.

        Returns ``[(x, P(sample <= x)), ...]`` -- the series plotted on the
        paper's log-decade axes (Figs. 6, 8, 9).
        """
        return [
            (float(10**e), self.fraction_at_most(float(10**e)))
            for e in range(max_exponent + 1)
        ]

    def series(self) -> Sequence[float]:
        """The sorted sample values."""
        self._ensure_sorted()
        return tuple(self._samples)
