"""Shared utilities: statistics, CDF helpers, RNG streams, rendering."""

from repro.utils.cdf import Cdf
from repro.utils.rng import RngFactory
from repro.utils.stats import (
    BinomialEstimate,
    normal_ci_halfwidth,
    required_samples,
    wilson_interval,
)

__all__ = [
    "BinomialEstimate",
    "Cdf",
    "RngFactory",
    "normal_ci_halfwidth",
    "required_samples",
    "wilson_interval",
]
